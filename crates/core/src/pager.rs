//! Fixed-size pages and a buffer pool over the [`crate::vfs`] seam —
//! ROADMAP #1's out-of-core backing store.
//!
//! A [`BufferPool`] caches fixed-size pages (default 4 KiB) of one
//! backing [`VfsFile`] under a configurable memory cap. Callers pin the
//! page range they are about to touch, copy bytes in or out, and unpin;
//! after every unpin the pool evicts back down to its cap with a clock
//! (second-chance) sweep. Clean victims are dropped; dirty victims are
//! written back first — but never ahead of the write-ahead log: a dirty
//! page stamped with log sequence number `L` is not written to disk
//! until the attached [`WalBarrier`] reports `durable() >= L`
//! (the WAL-before-data rule, DESIGN S45). Pages whose write-back is
//! barred behave like pinned pages: the pool over-commits transiently
//! and counts a [`PoolStats::barrier_stalls`].
//!
//! The pool is deliberately single-owner (`&mut self` everywhere);
//! concurrent access is serialized by the owning store (see
//! `core::store`). Pages are *spill state*, not a recovery root: the
//! file is rebuilt from snapshot + WAL on boot, so a torn page write
//! can never corrupt recovery — the barrier exists so a future
//! page-rooted checkpoint inherits an already-enforced invariant.

use std::collections::HashMap;
use std::io;

use crate::sync::untracked::{AtomicU64, Ordering};
use crate::sync::Arc;
use crate::vfs::VfsFile;

/// Shared WAL-progress watermark connecting a log writer to every
/// buffer pool holding data pages for the same store.
///
/// Two monotone counters: `appended` (the LSN most recently handed to
/// the log, used to stamp dirty pages) and `durable` (the LSN most
/// recently synced). The pool refuses to write back any page whose
/// stamp exceeds `durable`. Under the repo's log-then-apply discipline
/// (sync per acknowledged op *before* the in-memory apply) the two
/// counters advance together and write-back never stalls; the barrier
/// still enforces the ordering mechanically so the invariant holds for
/// any future wiring.
#[derive(Clone, Debug, Default)]
pub struct WalBarrier {
    inner: Arc<BarrierInner>,
}

#[derive(Debug, Default)]
struct BarrierInner {
    appended: AtomicU64,
    durable: AtomicU64,
}

impl WalBarrier {
    /// A fresh barrier with both watermarks at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the `appended` watermark to at least `lsn`.
    pub fn record_append(&self, lsn: u64) {
        self.inner.appended.fetch_max(lsn, Ordering::Release);
    }

    /// Raises the `durable` watermark to at least `lsn` (call only
    /// after the log record for `lsn` is synced).
    pub fn record_durable(&self, lsn: u64) {
        self.inner.durable.fetch_max(lsn, Ordering::Release);
    }

    /// Raises both watermarks (append + sync acknowledged together).
    pub fn advance(&self, lsn: u64) {
        self.record_append(lsn);
        self.record_durable(lsn);
    }

    /// The LSN most recently handed to the log.
    pub fn appended(&self) -> u64 {
        self.inner.appended.load(Ordering::Acquire)
    }

    /// The LSN most recently synced to the log.
    pub fn durable(&self) -> u64 {
        self.inner.durable.load(Ordering::Acquire)
    }
}

/// Counter snapshot of one [`BufferPool`]'s activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pin requests satisfied by an already-resident page.
    pub hits: u64,
    /// Pin requests that faulted the page in from the file.
    pub misses: u64,
    /// Frames dropped by the clock sweep.
    pub evictions: u64,
    /// Dirty frames written to the file before eviction.
    pub write_backs: u64,
    /// Times a dirty victim was skipped because its LSN was ahead of
    /// the WAL barrier's durable watermark.
    pub barrier_stalls: u64,
    /// Full clock rotations that found no evictable victim (the pool
    /// stayed over its cap for that round).
    pub stall_rounds: u64,
    /// Transient spill I/O failures absorbed by the bounded retry in
    /// fault-in / write-back (each unit is one retried attempt, not
    /// one surviving operation).
    pub io_retries: u64,
    /// Pages currently resident.
    pub resident_pages: usize,
    /// Resident pages currently pinned.
    pub pinned_pages: usize,
    /// Resident pages currently dirty.
    pub dirty_pages: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Pool budget in pages.
    pub cap_pages: usize,
}

impl PoolStats {
    /// Bytes currently held by page frames.
    pub fn resident_bytes(&self) -> usize {
        self.resident_pages * self.page_bytes
    }
}

#[derive(Debug)]
struct Frame {
    buf: Box<[u8]>,
    pins: u32,
    referenced: bool,
    dirty: bool,
    /// LSN stamped at the last dirtying write (0 = no log dependency).
    lsn: u64,
}

/// Transient spill I/O errors (e.g. injected EIO from a fault
/// harness) are retried this many times before the error propagates
/// and [`crate::store::PagedStore`]'s process-fatal policy applies.
const IO_ATTEMPTS: usize = 8;

/// A clock-eviction buffer pool over one page file.
pub struct BufferPool {
    file: Box<dyn VfsFile + Send>,
    page_bytes: usize,
    cap_pages: usize,
    frames: HashMap<u64, Frame>,
    /// Resident page ids in clock order (`hand` indexes the next
    /// candidate); membership mirrors `frames` exactly.
    clock: Vec<u64>,
    hand: usize,
    /// Pages materialized in the file so far (reads beyond are zeros).
    file_pages: u64,
    barrier: Option<WalBarrier>,
    hits: u64,
    misses: u64,
    evictions: u64,
    write_backs: u64,
    barrier_stalls: u64,
    stall_rounds: u64,
    io_retries: u64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("page_bytes", &self.page_bytes)
            .field("cap_pages", &self.cap_pages)
            .field("resident", &self.frames.len())
            .field("evictions", &self.evictions)
            .finish_non_exhaustive()
    }
}

impl BufferPool {
    /// A pool over `file` with `page_bytes`-sized pages and a budget of
    /// `mem_cap_bytes` (rounded down to whole pages, minimum one).
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes < 64` (degenerate pages are always a
    /// configuration bug).
    pub fn new(file: Box<dyn VfsFile + Send>, page_bytes: usize, mem_cap_bytes: usize) -> Self {
        assert!(page_bytes >= 64, "page size {page_bytes} too small");
        Self {
            file,
            page_bytes,
            cap_pages: (mem_cap_bytes / page_bytes).max(1),
            frames: HashMap::new(),
            clock: Vec::new(),
            hand: 0,
            file_pages: 0,
            barrier: None,
            hits: 0,
            misses: 0,
            evictions: 0,
            write_backs: 0,
            barrier_stalls: 0,
            stall_rounds: 0,
            io_retries: 0,
        }
    }

    /// Attaches the WAL barrier gating dirty write-back.
    pub fn set_barrier(&mut self, barrier: WalBarrier) {
        self.barrier = Some(barrier);
    }

    /// The attached barrier, if any.
    pub fn barrier(&self) -> Option<&WalBarrier> {
        self.barrier.as_ref()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            write_backs: self.write_backs,
            barrier_stalls: self.barrier_stalls,
            stall_rounds: self.stall_rounds,
            io_retries: self.io_retries,
            resident_pages: self.frames.len(),
            pinned_pages: self.frames.values().filter(|f| f.pins > 0).count(),
            dirty_pages: self.frames.values().filter(|f| f.dirty).count(),
            page_bytes: self.page_bytes,
            cap_pages: self.cap_pages,
        }
    }

    /// Pins `page`, faulting it in from the file if absent. Pinned
    /// pages are never evicted; every successful pin must be paired
    /// with an [`BufferPool::unpin`].
    pub fn pin(&mut self, page: u64) -> io::Result<()> {
        if let Some(frame) = self.frames.get_mut(&page) {
            frame.pins += 1;
            frame.referenced = true;
            self.hits += 1;
            return Ok(());
        }
        self.misses += 1;
        let mut buf = vec![0u8; self.page_bytes].into_boxed_slice();
        if page < self.file_pages {
            let off = page * self.page_bytes as u64;
            self.fill(off, &mut buf)?;
            // Double-read defense: a transient read fault can hand
            // back a corrupted copy while the stored bytes are fine.
            // Re-read until two consecutive images agree; persistent
            // disagreement means the medium itself is unstable, which
            // is a spill error like any other.
            let mut check = vec![0u8; self.page_bytes].into_boxed_slice();
            let mut agreed = false;
            for _ in 0..IO_ATTEMPTS {
                self.fill(off, &mut check)?;
                if check == buf {
                    agreed = true;
                    break;
                }
                self.io_retries += 1;
                std::mem::swap(&mut buf, &mut check);
            }
            if !agreed {
                return Err(io::Error::other(format!(
                    "page {page} image unstable after {IO_ATTEMPTS} re-reads"
                )));
            }
        }
        self.frames.insert(
            page,
            Frame {
                buf,
                pins: 1,
                referenced: true,
                dirty: false,
                lsn: 0,
            },
        );
        self.clock.push(page);
        Ok(())
    }

    /// Releases one pin of `page`, then evicts down to the cap.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not resident or not pinned — an unbalanced
    /// unpin is a bookkeeping bug, never valid (pin counts cannot go
    /// negative).
    pub fn unpin(&mut self, page: u64) -> io::Result<()> {
        let frame = self
            .frames
            .get_mut(&page)
            .unwrap_or_else(|| panic!("unpin of non-resident page {page}"));
        assert!(frame.pins > 0, "unpin of unpinned page {page}");
        frame.pins -= 1;
        self.evict_to_cap()
    }

    /// Copies the bytes of resident page `page` to `out`. The caller
    /// must hold a pin (enforced).
    pub fn read_page(&self, page: u64, out: &mut [u8]) {
        let frame = match self.frames.get(&page) {
            Some(f) => f,
            None => panic!("read of non-resident page {page}"),
        };
        assert!(frame.pins > 0, "read of unpinned page {page}");
        out.copy_from_slice(&frame.buf[..out.len()]);
    }

    /// Overwrites `data.len()` bytes at `offset` within resident page
    /// `page`, marking it dirty and stamping the barrier's current
    /// append watermark. The caller must hold a pin (enforced).
    pub fn write_page(&mut self, page: u64, offset: usize, data: &[u8]) {
        let lsn = self.barrier.as_ref().map_or(0, WalBarrier::appended);
        let frame = match self.frames.get_mut(&page) {
            Some(f) => f,
            None => panic!("write to non-resident page {page}"),
        };
        assert!(frame.pins > 0, "write to unpinned page {page}");
        frame.buf[offset..offset + data.len()].copy_from_slice(data);
        frame.dirty = true;
        frame.lsn = frame.lsn.max(lsn);
    }

    /// Reads `out.len()` bytes at byte `offset` of the file through the
    /// page cache (pins the touched pages for the duration).
    pub fn read_range(&mut self, offset: u64, out: &mut [u8]) -> io::Result<()> {
        self.for_each_segment(offset, out.len(), |pool, page, in_page, start, len| {
            let frame = match pool.frames.get(&page) {
                Some(f) => f,
                None => panic!("segment walk lost page {page}"),
            };
            out[start..start + len].copy_from_slice(&frame.buf[in_page..in_page + len]);
            Ok(())
        })
    }

    /// Writes `data` at byte `offset` of the file through the page
    /// cache: frames are updated in memory and marked dirty; the bytes
    /// reach the file only on eviction write-back or [`BufferPool::flush`].
    pub fn write_range(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let lsn = self.barrier.as_ref().map_or(0, WalBarrier::appended);
        self.for_each_segment(offset, data.len(), |pool, page, in_page, start, len| {
            let frame = match pool.frames.get_mut(&page) {
                Some(f) => f,
                None => panic!("segment walk lost page {page}"),
            };
            frame.buf[in_page..in_page + len].copy_from_slice(&data[start..start + len]);
            frame.dirty = true;
            frame.lsn = frame.lsn.max(lsn);
            Ok(())
        })
    }

    /// Pins every page overlapping `[offset, offset + len)`, invokes
    /// `f(pool, page, in_page_offset, buf_start, seg_len)` per page,
    /// unpins, and evicts to the cap. Pinning the whole range up front
    /// keeps earlier pages resident while later ones fault in.
    fn for_each_segment(
        &mut self,
        offset: u64,
        len: usize,
        mut f: impl FnMut(&mut Self, u64, usize, usize, usize) -> io::Result<()>,
    ) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        let pb = self.page_bytes as u64;
        let first = offset / pb;
        let last = (offset + len as u64 - 1) / pb;
        let mut pinned = first;
        let result = (|| -> io::Result<()> {
            for page in first..=last {
                self.pin(page)?;
                pinned = page + 1;
            }
            let mut start = 0usize;
            for page in first..=last {
                let page_lo = page * pb;
                let in_page = offset.max(page_lo) - page_lo;
                let seg = ((page_lo + pb).min(offset + len as u64) - (page_lo + in_page)) as usize;
                f(self, page, in_page as usize, start, seg)?;
                start += seg;
            }
            Ok(())
        })();
        for page in first..pinned {
            // Unpin exactly what was pinned, even on a faulted fast exit.
            self.unpin(page)?;
        }
        result
    }

    /// Writes back every dirty page the WAL barrier permits; returns
    /// the number of dirty pages still barred (their log records are
    /// not yet durable).
    pub fn flush(&mut self) -> io::Result<usize> {
        let durable = self.barrier.as_ref().map_or(u64::MAX, WalBarrier::durable);
        let mut barred = 0usize;
        let pages: Vec<u64> = self.clock.clone();
        for page in pages {
            let (dirty, lsn) = match self.frames.get(&page) {
                Some(f) => (f.dirty, f.lsn),
                None => continue,
            };
            if !dirty {
                continue;
            }
            if lsn > durable {
                barred += 1;
                self.barrier_stalls += 1;
                continue;
            }
            self.write_back(page)?;
        }
        if barred == 0 {
            self.file.sync()?;
        }
        Ok(barred)
    }

    /// Clock (second-chance) sweep down to the cap. Pinned pages and
    /// dirty pages barred by the WAL are skipped; if a full double
    /// rotation finds no victim the pool stays over-committed and
    /// counts a stall round.
    fn evict_to_cap(&mut self) -> io::Result<()> {
        let mut scanned = 0usize;
        while self.frames.len() > self.cap_pages && !self.clock.is_empty() {
            if scanned > 2 * self.clock.len() {
                self.stall_rounds += 1;
                return Ok(());
            }
            if self.hand >= self.clock.len() {
                self.hand = 0;
            }
            let page = self.clock[self.hand];
            let (pins, referenced, dirty, lsn) = match self.frames.get_mut(&page) {
                Some(f) => (f.pins, f.referenced, f.dirty, f.lsn),
                None => panic!("clock entry for non-resident page {page}"),
            };
            if pins > 0 {
                self.hand = (self.hand + 1) % self.clock.len();
                scanned += 1;
                continue;
            }
            if referenced {
                if let Some(f) = self.frames.get_mut(&page) {
                    f.referenced = false;
                }
                self.hand = (self.hand + 1) % self.clock.len();
                scanned += 1;
                continue;
            }
            if dirty {
                let durable = self.barrier.as_ref().map_or(u64::MAX, WalBarrier::durable);
                if lsn > durable {
                    // WAL-before-data: this page's log record is not
                    // durable yet, so it must not reach the file.
                    self.barrier_stalls += 1;
                    self.hand = (self.hand + 1) % self.clock.len();
                    scanned += 1;
                    continue;
                }
                self.write_back(page)?;
            }
            self.frames.remove(&page);
            self.clock.swap_remove(self.hand);
            self.evictions += 1;
            scanned = 0;
        }
        if self.hand >= self.clock.len() {
            self.hand = 0;
        }
        Ok(())
    }

    /// Fills `buf` from file offset `off`, zero-extending past the
    /// materialized extent and retrying transient read errors up to
    /// [`IO_ATTEMPTS`] times.
    fn fill(&mut self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0usize;
        let mut attempts = 0usize;
        while filled < buf.len() {
            match self.file.read_at(off + filled as u64, &mut buf[filled..]) {
                Ok(0) => {
                    // Rest of the page never materialized: zeros.
                    buf[filled..].fill(0);
                    break;
                }
                Ok(n) => filled += n,
                Err(e) => {
                    attempts += 1;
                    if attempts >= IO_ATTEMPTS {
                        return Err(e);
                    }
                    self.io_retries += 1;
                }
            }
        }
        Ok(())
    }

    /// Writes one resident page's bytes to the file and clears its
    /// dirty bit, retrying transient write errors up to
    /// [`IO_ATTEMPTS`] times.
    fn write_back(&mut self, page: u64) -> io::Result<()> {
        let off = page * self.page_bytes as u64;
        let frame = match self.frames.get_mut(&page) {
            Some(f) => f,
            None => panic!("write-back of non-resident page {page}"),
        };
        let mut attempts = 0usize;
        loop {
            match self.file.write_at(off, &frame.buf) {
                Ok(()) => break,
                Err(e) => {
                    attempts += 1;
                    if attempts >= IO_ATTEMPTS {
                        return Err(e);
                    }
                    self.io_retries += 1;
                }
            }
        }
        frame.dirty = false;
        self.write_backs += 1;
        self.file_pages = self.file_pages.max(page + 1);
        Ok(())
    }

    /// Heap bytes held by the pool (frames + bookkeeping).
    pub fn heap_bytes(&self) -> usize {
        self.frames.len() * self.page_bytes
            + self.frames.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<Frame>())
            + self.clock.capacity() * std::mem::size_of::<u64>()
    }

    /// Audits pool bookkeeping: the clock list mirrors the frame table
    /// exactly (no duplicates, no strays), the hand is in range, every
    /// pinned or barred page is resident, and the pool is within its
    /// cap unless pins or barrier stalls legitimately hold it over.
    ///
    /// # Panics
    ///
    /// Panics on any violation (test/diagnostic use).
    pub fn audit(&self) {
        assert_eq!(
            self.clock.len(),
            self.frames.len(),
            "clock list and frame table out of step"
        );
        let mut seen = std::collections::HashSet::new();
        for &page in &self.clock {
            assert!(seen.insert(page), "page {page} twice on the clock");
            assert!(
                self.frames.contains_key(&page),
                "clock entry {page} has no frame"
            );
        }
        assert!(
            self.clock.is_empty() || self.hand < self.clock.len(),
            "clock hand out of range"
        );
        let unevictable = self
            .frames
            .values()
            .filter(|f| {
                f.pins > 0
                    || (f.dirty
                        && f.lsn > self.barrier.as_ref().map_or(u64::MAX, WalBarrier::durable))
            })
            .count();
        assert!(
            self.frames.len() <= self.cap_pages.max(unevictable) + self.cap_pages,
            "pool resident {} far over cap {} with only {} unevictable pages",
            self.frames.len(),
            self.cap_pages,
            unevictable
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap_pages: usize) -> BufferPool {
        BufferPool::new(Box::new(Vec::new()), 64, cap_pages * 64)
    }

    #[test]
    fn roundtrip_through_eviction() {
        let mut p = pool(2);
        for i in 0u64..8 {
            p.write_range(i * 64, &[i as u8 + 1; 64]).unwrap();
        }
        assert!(p.stats().evictions >= 6, "{:?}", p.stats());
        for i in 0u64..8 {
            let mut buf = [0u8; 64];
            p.read_range(i * 64, &mut buf).unwrap();
            assert_eq!(buf, [i as u8 + 1; 64], "page {i}");
        }
        p.audit();
    }

    #[test]
    fn unaligned_ranges_span_pages() {
        let mut p = pool(3);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        p.write_range(40, &data).unwrap();
        let mut out = vec![0u8; 200];
        p.read_range(40, &mut out).unwrap();
        assert_eq!(out, data);
        // The prefix before the write is still zeros.
        let mut head = [9u8; 40];
        p.read_range(0, &mut head).unwrap();
        assert_eq!(head, [0u8; 40]);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let mut p = pool(2);
        p.pin(0).unwrap();
        p.write_page(0, 0, &[7u8; 64]);
        // Flood the pool: page 0 is pinned and must stay resident.
        for i in 1u64..10 {
            p.write_range(i * 64, &[i as u8; 64]).unwrap();
        }
        assert!(p.stats().pinned_pages >= 1);
        let mut buf = [0u8; 64];
        p.read_page(0, &mut buf);
        assert_eq!(buf, [7u8; 64]);
        p.unpin(0).unwrap();
        p.audit();
    }

    #[test]
    #[should_panic(expected = "unpin of non-resident page")]
    fn unbalanced_unpin_panics() {
        let mut p = pool(2);
        let _ = p.unpin(3);
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned page")]
    fn double_unpin_panics() {
        let mut p = pool(2);
        p.pin(0).unwrap();
        let _ = p.unpin(0);
        let _ = p.unpin(0);
    }

    #[test]
    fn barrier_blocks_write_back_until_durable() {
        let mut p = pool(1);
        let barrier = WalBarrier::new();
        p.set_barrier(barrier.clone());
        barrier.record_append(5);
        p.write_range(0, &[1u8; 64]).unwrap(); // dirty, lsn 5, durable 0
        assert_eq!(p.flush().unwrap(), 1, "page must stay barred");
        // Pressure cannot push the barred page out either.
        p.write_range(64, &[2u8; 64]).unwrap();
        assert!(p.stats().barrier_stalls > 0, "{:?}", p.stats());
        let mut probe = Vec::new();
        // The backing file must not contain page 0's bytes yet.
        assert_eq!(p.file_pages, 0, "page reached disk before the WAL");
        barrier.record_durable(5);
        assert_eq!(p.flush().unwrap(), 0);
        probe.resize(64, 0u8);
        p.read_range(0, &mut probe).unwrap();
        assert_eq!(probe, vec![1u8; 64]);
        p.audit();
    }

    #[test]
    fn second_chance_prefers_unreferenced() {
        let mut p = pool(2);
        p.write_range(0, &[1u8; 64]).unwrap();
        p.write_range(64, &[2u8; 64]).unwrap();
        // Force the distinguishing state: page 0 referenced, page 1 not.
        // Under pressure the clock must grant page 0 its second chance
        // and take page 1, regardless of hand position.
        p.frames.get_mut(&0).unwrap().referenced = true;
        p.frames.get_mut(&1).unwrap().referenced = false;
        p.write_range(128, &[3u8; 64]).unwrap();
        let s = p.stats();
        assert_eq!(s.resident_pages, 2);
        assert!(p.frames.contains_key(&0), "referenced page evicted early");
        assert!(
            !p.frames.contains_key(&1),
            "unreferenced page must be the victim"
        );
    }

    #[test]
    fn stats_and_audit_after_churn() {
        let mut p = pool(4);
        for round in 0..50u64 {
            for i in 0..10u64 {
                p.write_range((i * 64) + (round % 3), &[round as u8; 32])
                    .unwrap();
            }
        }
        let s = p.stats();
        assert!(s.evictions >= 100, "{s:?}");
        assert_eq!(s.pinned_pages, 0);
        p.audit();
    }
}
