//! # ddc-core
//!
//! The Dynamic Data Cube (Geffner, Agrawal, El Abbadi — EDBT 2000): a tree
//! of overlay boxes whose row-sum groups are stored recursively, giving
//! sublinear (`O(log^d n)`) range-sum queries *and* point updates, lazy
//! storage for sparse data, the §4.4 space optimization, and growth of the
//! cube in any direction (§5).
//!
//! Entry points:
//!
//! * [`DdcEngine`] — the cube as a [`ddc_array::RangeSumEngine`]
//!   (fixed logical shape; Basic §3 or Dynamic §4 per [`DdcConfig`]).
//! * [`GrowableCube`] — signed logical coordinates with on-demand growth.
//! * [`DdcTree`] — the underlying primary tree, exposed for experiments.
//! * [`obs`] — the zero-dependency observability layer (metrics
//!   registry, latency histograms, tracing) every hot path reports into.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod concurrent;
mod config;
mod engine;
mod flat_face;
mod growth;
#[cfg(feature = "ddc_model")]
pub mod models;
pub mod obs;
pub mod pager;
mod persist;
mod secondary;
mod shard;
pub mod store;
pub mod sync;
mod tree;
pub mod vfs;
pub mod wal;

pub use concurrent::SharedCube;
pub use config::{
    BaseStore, DdcConfig, LeafBackend, Mode, PagerConfig, WalConfig, DEFAULT_PAGE_BYTES,
};
pub use engine::DdcEngine;
pub use growth::GrowableCube;
pub use pager::{BufferPool, PoolStats, WalBarrier};
pub use persist::ValueCodec;
pub use shard::{MetricsSnapshot, ShardConfig, ShardedCube, TryUpdateError};
pub use store::{MemStore, NodeStore, PagedStore, RecordCodec};
pub use tree::{Contribution, DdcTree, LevelStats, TraceStep, TreeStats};
pub use vfs::{
    FaultKind, FaultPlan, FaultProbs, FaultVfs, MemVfs, OpenMode, PlannedFault, StdVfs, Vfs,
    VfsFile,
};
pub use wal::{
    DurableCube, IoError, RecoveryReport, RetryPolicy, SharedDurableCube, WalOp, WalReplay,
    WalWriter,
};
