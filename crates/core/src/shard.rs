//! A sharded concurrent cube: dimension-0 partitioning with write batching.
//!
//! [`SharedCube`](crate::SharedCube) serializes every operation behind one
//! `RwLock`, so aggregate read throughput stops scaling as soon as a
//! writer stalls the lock. [`ShardedCube`] removes that single choke
//! point:
//!
//! * The cube is split along **dimension 0** into `S` contiguous slabs,
//!   each backed by its own independently locked [`DdcEngine`].
//! * Point updates route to the owning shard's **write-batch queue**.
//!   Queued deltas are coalesced per cell (sound because
//!   [`AbelianGroup`] addition commutes) and applied under a *single*
//!   exclusive acquisition — group commit.
//! * Prefix/range queries decompose into the ≤ `2^d` Figure-4 prefix
//!   terms and fan out across the shards whose slab intersects the
//!   query, optionally on [`std::thread::scope`], combining the partial
//!   sums with the group operation.
//!
//! ## Consistency
//!
//! Each shard is linearizable: a query reads *through* the shard's queue
//! — engine value plus the contribution of the still-queued deltas — so
//! a thread always reads its own writes and a single-threaded caller
//! observes exactly the semantics of an unsharded engine (the
//! `sharded_cube` differential test replays a trace and demands
//! bit-identical answers). Readers never take the exclusive engine lock;
//! only group commits do. Across shards there is no global snapshot —
//! concurrent multi-shard queries may observe one shard before and
//! another after a concurrent update, the usual trade of sharded stores.
//!
//! ## Supervision & backpressure
//!
//! Shards are built to *survive*, not to assume success:
//!
//! * Write queues are **bounded** ([`ShardConfig::queue_capacity`]).
//!   When a queue is full and a commit cannot make room, [`try_update`]
//!   rejects with [`TryUpdateError::QueueFull`] instead of growing
//!   without bound — overload sheds load, it does not OOM.
//! * Every group commit runs under `catch_unwind`. A panicking commit
//!   (an engine bug, or the test-only fault hook) **quarantines** the
//!   shard: its deltas stay queued, reads still see them through the
//!   read-through path, and retries are paced by an exponential backoff
//!   of skipped flush triggers. A commit that succeeds ends the
//!   quarantine and counts a restart; [`ShardConfig::max_restarts`]
//!   consecutive panics fail the shard permanently
//!   ([`TryUpdateError::ShardFailed`]).
//! * Lock poisoning never panics a public entry point: the queue mutex
//!   cannot be poisoned by a supervised commit (the panic is caught
//!   inside the lock scope), and a poisoned engine lock is recovered —
//!   the shard is already quarantined at that point, and *exact* repair
//!   of a half-applied batch is the write-ahead log's job
//!   ([`crate::wal`]), not the lock's.
//!
//! [`try_update`]: ShardedCube::try_update

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

use ddc_array::{AbelianGroup, OpCounter, OpSnapshot, RangeSumEngine, Region, Shape};

use crate::config::DdcConfig;
use crate::engine::DdcEngine;
use crate::obs;

/// Cube-wide observability handles (queue-wait vs. commit latency — the
/// two halves of a sharded write's life), cached off the registry lock.
struct ShardObs {
    queue_wait_ns: Arc<obs::Histogram>,
    commit_ns: Arc<obs::Histogram>,
}

fn shard_obs() -> &'static ShardObs {
    static OBS: OnceLock<ShardObs> = OnceLock::new();
    OBS.get_or_init(|| ShardObs {
        queue_wait_ns: obs::histogram("shard.queue_wait"),
        commit_ns: obs::histogram("shard.commit"),
    })
}

/// Tuning knobs for a [`ShardedCube`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Requested shard count. Clamped to `1..=n_0` (a slab needs at
    /// least one row of dimension 0).
    pub shards: usize,
    /// Queue length that triggers a group commit. `1` degenerates to
    /// write-through locking.
    pub batch_capacity: usize,
    /// Fan queries out on `std::thread::scope` instead of visiting
    /// shards sequentially. Worth it for expensive per-shard work
    /// (large `d`, cold caches); for microsecond queries the spawn cost
    /// dominates, so this defaults to off.
    pub parallel_queries: bool,
    /// Hard bound on a shard's write queue. A healthy shard commits
    /// inline before ever hitting it; a quarantined or failed shard
    /// rejects once full ([`TryUpdateError::QueueFull`]) instead of
    /// growing without bound.
    pub queue_capacity: usize,
    /// Consecutive panicking commits a shard survives (quarantined,
    /// retried with backoff) before it is failed permanently.
    pub max_restarts: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            batch_capacity: 128,
            parallel_queries: false,
            queue_capacity: 4096,
            max_restarts: 5,
        }
    }
}

impl ShardConfig {
    /// `shards` shards with default batching.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// Why a bounded-queue update was not accepted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TryUpdateError {
    /// The owning shard's queue is at capacity and a commit could not
    /// make room (the shard is quarantined or mid-backoff).
    QueueFull {
        /// Index of the rejecting shard.
        shard: usize,
        /// The queue bound in effect.
        capacity: usize,
    },
    /// The owning shard exhausted its restart budget and no longer
    /// accepts writes.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
    },
    /// The durable store is in degraded read-only mode after a disk
    /// fault (ENOSPC or retry exhaustion — see
    /// [`IoError`](crate::wal::IoError)); queries keep serving, but
    /// mutations are rejected until an operator intervenes.
    ReadOnly,
}

impl std::fmt::Display for TryUpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryUpdateError::QueueFull { shard, capacity } => {
                write!(f, "shard {shard} write queue full ({capacity} deltas)")
            }
            TryUpdateError::ShardFailed { shard } => {
                write!(f, "shard {shard} failed (restart budget exhausted)")
            }
            TryUpdateError::ReadOnly => {
                write!(
                    f,
                    "durable store is read-only (degraded after a disk fault)"
                )
            }
        }
    }
}

impl std::error::Error for TryUpdateError {}

/// Point-in-time metrics for one shard (the S3 relaxed-atomic op
/// counters, extended per shard).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Shard index in `0..S`.
    pub shard: usize,
    /// First dimension-0 row owned by the shard.
    pub rows_lo: usize,
    /// One past the last dimension-0 row owned by the shard.
    pub rows_hi: usize,
    /// Deltas pushed onto the write queue.
    pub ops_enqueued: u64,
    /// Deltas applied to the engine (equals enqueued after a flush).
    pub ops_applied: u64,
    /// Group commits performed.
    pub batches_flushed: u64,
    /// Queries answered (partial prefix sums served by this shard).
    pub queries: u64,
    /// Estimated nanoseconds the exclusive engine lock was held for
    /// flushes — the contention budget readers compete against.
    pub lock_hold_nanos: u64,
    /// High-water mark of the write queue depth.
    pub queue_depth_max: u64,
    /// Update attempts rejected by backpressure or a failed shard.
    pub ops_rejected: u64,
    /// Commits that panicked and were contained by the supervisor.
    pub worker_panics: u64,
    /// Successful commits that ended a quarantine.
    pub worker_restarts: u64,
    /// Entries replayed into this shard by crash recovery.
    pub records_replayed: u64,
}

/// Per-shard counters. *Untracked* atomics on purpose: metrics never
/// gate control flow, and some hold wall-clock values that would
/// otherwise pollute the model checker's state fingerprints.
#[derive(Debug, Default)]
struct ShardMetrics {
    ops_enqueued: crate::sync::untracked::AtomicU64,
    ops_applied: crate::sync::untracked::AtomicU64,
    batches_flushed: crate::sync::untracked::AtomicU64,
    queries: crate::sync::untracked::AtomicU64,
    lock_hold_nanos: crate::sync::untracked::AtomicU64,
    queue_depth_max: crate::sync::untracked::AtomicU64,
    ops_rejected: crate::sync::untracked::AtomicU64,
    worker_panics: crate::sync::untracked::AtomicU64,
    worker_restarts: crate::sync::untracked::AtomicU64,
    records_replayed: crate::sync::untracked::AtomicU64,
}

/// Supervisor state of one shard, kept under the queue lock so health
/// transitions serialize with enqueues and commits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Health {
    /// Commits are attempted normally.
    Healthy,
    /// The last `consecutive` commits panicked; the next `backoff` flush
    /// triggers are skipped before retrying.
    Quarantined { consecutive: u32, backoff: u32 },
    /// Restart budget exhausted: the shard accepts no more writes.
    Failed,
}

#[derive(Debug)]
struct ShardQueue<G: AbelianGroup> {
    /// Pending deltas in *local* coordinates.
    deltas: Vec<(Vec<usize>, G)>,
    health: Health,
}

#[derive(Debug)]
struct Shard<G: AbelianGroup> {
    /// Owned dimension-0 rows: `rows_lo..rows_hi` of the logical cube.
    rows_lo: usize,
    rows_hi: usize,
    engine: RwLock<DdcEngine<G>>,
    /// Queue + supervisor state. Lock order: `queue` before `engine` —
    /// commits hold the queue while applying so a concurrent reader that
    /// drains the queue cannot miss deltas enqueued behind it.
    queue: Mutex<ShardQueue<G>>,
    /// Fast-path mirror of the queue length so readers skip the mutex
    /// when nothing is pending.
    pending: AtomicUsize,
    /// Test-only fault hook: this many upcoming commits panic before
    /// touching the engine.
    fail_flushes: AtomicU64,
    metrics: ShardMetrics,
    /// Engine-counter totals already absorbed into the facade counter
    /// (bookkeeping for `sync_counter`; untracked like the metrics).
    seen_reads: crate::sync::untracked::AtomicU64,
    seen_writes: crate::sync::untracked::AtomicU64,
}

/// Locks a shard's queue, recovering from poisoning. A supervised commit
/// catches its panic *inside* the lock scope, so the mutex is only ever
/// poisoned by a panic in trivially transactional code (push/drain);
/// recovering is sound and keeps poisoning off the public API.
fn lock_queue<G: AbelianGroup>(shard: &Shard<G>) -> MutexGuard<'_, ShardQueue<G>> {
    shard.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks a shard's engine, recovering from poisoning. A poisoned
/// engine means a commit panicked mid-apply; the shard is quarantined by
/// then, and exact repair belongs to WAL recovery, not to refusing reads.
fn read_engine<G: AbelianGroup>(shard: &Shard<G>) -> RwLockReadGuard<'_, DdcEngine<G>> {
    shard.engine.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks a shard's engine, recovering from poisoning (see
/// [`read_engine`]).
fn write_engine<G: AbelianGroup>(shard: &Shard<G>) -> RwLockWriteGuard<'_, DdcEngine<G>> {
    shard.engine.write().unwrap_or_else(PoisonError::into_inner)
}

/// A concurrent cube sharded along dimension 0 with per-shard write
/// batching. See the [module docs](self) for the protocol.
///
/// # Examples
///
/// ```
/// use ddc_array::{RangeSumEngine, Region, Shape};
/// use ddc_core::{DdcConfig, ShardConfig, ShardedCube};
///
/// let cube = ShardedCube::<i64>::new(
///     Shape::new(&[64, 64]),
///     DdcConfig::dynamic(),
///     ShardConfig::with_shards(4),
/// );
/// cube.update(&[3, 5], 7);
/// cube.update(&[60, 9], 2);
/// assert_eq!(cube.query(&Region::new(&[0, 0], &[63, 63])), 9);
/// ```
#[derive(Debug)]
pub struct ShardedCube<G: AbelianGroup> {
    shape: Shape,
    shard_config: ShardConfig,
    shards: Vec<Shard<G>>,
    counter: OpCounter,
}

impl<G: AbelianGroup> ShardedCube<G> {
    /// An all-zero sharded cube. The shard count is clamped to the
    /// number of dimension-0 rows.
    pub fn new(shape: Shape, config: DdcConfig, shard_config: ShardConfig) -> Self {
        let n0 = shape.dim(0);
        let s = shard_config.shards.clamp(1, n0);
        let shards = (0..s)
            .map(|i| {
                let rows_lo = i * n0 / s;
                let rows_hi = (i + 1) * n0 / s;
                let mut dims = shape.dims().to_vec();
                dims[0] = rows_hi - rows_lo;
                Shard {
                    rows_lo,
                    rows_hi,
                    engine: RwLock::new(DdcEngine::with_config(Shape::new(&dims), config)),
                    queue: Mutex::new(ShardQueue {
                        deltas: Vec::new(),
                        health: Health::Healthy,
                    }),
                    pending: AtomicUsize::new(0),
                    fail_flushes: AtomicU64::new(0),
                    metrics: ShardMetrics::default(),
                    seen_reads: crate::sync::untracked::AtomicU64::new(0),
                    seen_writes: crate::sync::untracked::AtomicU64::new(0),
                }
            })
            .collect();
        Self {
            shape,
            shard_config,
            shards,
            counter: OpCounter::new(),
        }
    }

    /// Rebuilds a sharded cube from recovered entries (e.g. WAL recovery
    /// output rebased to physical coordinates), attributing each replayed
    /// record to its owning shard's `records_replayed` metric.
    pub fn from_recovered(
        shape: Shape,
        config: DdcConfig,
        shard_config: ShardConfig,
        entries: &[(Vec<usize>, G)],
    ) -> Self {
        let cube = Self::new(shape, config, shard_config);
        for (point, value) in entries {
            cube.shape.check_point(point);
            let idx = cube.owner_index(point[0]);
            cube.shards[idx]
                .metrics
                .records_replayed
                .fetch_add(1, Ordering::Relaxed);
            cube.update(point, *value);
        }
        cube.flush();
        cube
    }

    /// Number of shards actually in use (after clamping).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard configuration in effect.
    pub fn shard_config(&self) -> ShardConfig {
        self.shard_config
    }

    /// Index of the shard owning dimension-0 row `row`.
    fn owner_index(&self, row: usize) -> usize {
        debug_assert!(row < self.shape.dim(0), "row {row} out of bounds");
        // Slab cuts are i·n0/S, so the inverse is (row·S)/n0 — possibly
        // one off under integer division; fix up locally.
        let n0 = self.shape.dim(0);
        let s = self.shards.len();
        let mut i = (row * s / n0).min(s - 1);
        while row < self.shards[i].rows_lo {
            i -= 1;
        }
        while row >= self.shards[i].rows_hi {
            i += 1;
        }
        i
    }

    /// The shard owning dimension-0 row `row`.
    fn owner(&self, row: usize) -> &Shard<G> {
        &self.shards[self.owner_index(row)]
    }

    /// Adds `delta` at `point`: routed to the owning shard's queue, with
    /// a group commit once the queue reaches `batch_capacity`.
    ///
    /// This is the infallible facade over [`ShardedCube::try_update`]: a
    /// rejected delta (full queue on a quarantined shard, or a failed
    /// shard) is *shed* after being counted in `ops_rejected`. Callers
    /// that must not lose writes use `try_update` /
    /// [`ShardedCube::update_timeout`] and handle the error.
    pub fn update(&self, point: &[usize], delta: G) {
        let _ = self.try_update(point, delta);
    }

    /// Adds `delta` at `point` if the owning shard can accept it,
    /// rejecting with [`TryUpdateError`] under overload or failure. A
    /// healthy shard never rejects — it commits inline to make room.
    pub fn try_update(&self, point: &[usize], delta: G) -> Result<(), TryUpdateError> {
        self.shape.check_point(point);
        let idx = self.owner_index(point[0]);
        let shard = &self.shards[idx];
        let mut local = point.to_vec();
        local[0] -= shard.rows_lo;
        let wait = obs::timer();
        let mut queue = lock_queue(shard);
        wait.observe("shard.queue_wait", &shard_obs().queue_wait_ns);
        let outcome = self.enqueue_locked(idx, shard, &mut queue, local, delta);
        shard.pending.store(queue.deltas.len(), Ordering::Release);
        outcome
    }

    /// Retries [`ShardedCube::try_update`] until `timeout` elapses,
    /// yielding between attempts while the queue is full. A failed shard
    /// rejects immediately — waiting cannot help it.
    pub fn update_timeout(
        &self,
        point: &[usize],
        delta: G,
        timeout: Duration,
    ) -> Result<(), TryUpdateError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_update(point, delta) {
                Err(TryUpdateError::QueueFull { .. }) if Instant::now() < deadline => {
                    std::thread::yield_now();
                }
                other => return other,
            }
        }
    }

    /// One enqueue under the queue lock: backpressure check, push,
    /// trigger. Shared by the single and batched update paths.
    fn enqueue_locked(
        &self,
        idx: usize,
        shard: &Shard<G>,
        queue: &mut ShardQueue<G>,
        local: Vec<usize>,
        delta: G,
    ) -> Result<(), TryUpdateError> {
        if queue.health == Health::Failed {
            shard.metrics.ops_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(TryUpdateError::ShardFailed { shard: idx });
        }
        let capacity = self.shard_config.queue_capacity.max(1);
        if queue.deltas.len() >= capacity {
            // Full: the only way to make room is to land the batch now.
            self.attempt_commit(shard, queue);
            if queue.deltas.len() >= capacity {
                shard.metrics.ops_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(match queue.health {
                    Health::Failed => TryUpdateError::ShardFailed { shard: idx },
                    _ => TryUpdateError::QueueFull {
                        shard: idx,
                        capacity,
                    },
                });
            }
        }
        queue.deltas.push((local, delta));
        shard.metrics.ops_enqueued.fetch_add(1, Ordering::Relaxed);
        shard
            .metrics
            .queue_depth_max
            .fetch_max(queue.deltas.len() as u64, Ordering::Relaxed);
        if queue.deltas.len() >= self.shard_config.batch_capacity.max(1) {
            self.attempt_commit(shard, queue);
        }
        Ok(())
    }

    /// Applies a batch of updates, locking each touched shard's queue
    /// once. Rejected deltas are shed and counted, like
    /// [`ShardedCube::update`].
    pub fn update_batch(&self, updates: &[(Vec<usize>, G)]) {
        let mut by_shard: HashMap<usize, Vec<(Vec<usize>, G)>> = HashMap::new();
        for (point, delta) in updates {
            self.shape.check_point(point);
            let idx = self.owner_index(point[0]);
            let mut local = point.clone();
            local[0] -= self.shards[idx].rows_lo;
            by_shard.entry(idx).or_default().push((local, *delta));
        }
        for (idx, batch) in by_shard {
            let shard = &self.shards[idx];
            let wait = obs::timer();
            let mut queue = lock_queue(shard);
            wait.observe("shard.queue_wait", &shard_obs().queue_wait_ns);
            for (local, delta) in batch {
                let _ = self.enqueue_locked(idx, shard, &mut queue, local, delta);
            }
            shard.pending.store(queue.deltas.len(), Ordering::Release);
        }
    }

    /// Flush trigger that respects the supervisor: failed shards are
    /// skipped, quarantined shards burn down their backoff before the
    /// commit is retried.
    fn attempt_commit(&self, shard: &Shard<G>, queue: &mut ShardQueue<G>) -> bool {
        match queue.health {
            Health::Failed => false,
            Health::Quarantined {
                consecutive,
                backoff,
            } if backoff > 0 => {
                queue.health = Health::Quarantined {
                    consecutive,
                    backoff: backoff - 1,
                };
                false
            }
            _ => self.commit(shard, queue),
        }
    }

    /// Supervised group commit: coalesce the queued deltas per cell and
    /// apply them under one exclusive engine acquisition, the whole apply
    /// wrapped in `catch_unwind`. Called with the queue lock held so no
    /// concurrent enqueue can slip between coalesce and apply.
    ///
    /// The queue is drained only *after* a successful apply — a panicking
    /// commit (fault hook, or an engine bug before it mutates state)
    /// leaves every delta queued for the retry. A panic *mid-apply* can
    /// leave the engine half-updated; the shard is quarantined either
    /// way, and exact repair is WAL recovery's job.
    fn commit(&self, shard: &Shard<G>, queue: &mut ShardQueue<G>) -> bool {
        if queue.deltas.is_empty() {
            shard.pending.store(0, Ordering::Release);
            return true;
        }
        let span = obs::timer();
        let mut coalesced: HashMap<&[usize], G> = HashMap::with_capacity(queue.deltas.len());
        for (point, delta) in &queue.deltas {
            let slot = coalesced.entry(point.as_slice()).or_insert(G::ZERO);
            *slot = slot.add(*delta);
        }
        let batch: Vec<(Vec<usize>, G)> = coalesced
            .into_iter()
            .filter(|(_, d)| !d.is_zero())
            .map(|(p, d)| (p.to_vec(), d))
            .collect();
        let held = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if shard.fail_flushes.load(Ordering::SeqCst) > 0 {
                shard.fail_flushes.fetch_sub(1, Ordering::SeqCst);
                panic!("injected flush failure");
            }
            if !batch.is_empty() {
                write_engine(shard).apply_batch(&batch);
            }
        }));
        shard
            .metrics
            .lock_hold_nanos
            .fetch_add(held.elapsed().as_nanos() as u64, Ordering::Relaxed);
        span.observe("shard.commit", &shard_obs().commit_ns);
        match outcome {
            Ok(()) => {
                let raw = queue.deltas.len() as u64;
                queue.deltas.clear();
                // Cleared only after the apply: a reader that saw
                // `pending == 0` on its fast path must find every drained
                // delta already in the engine.
                shard.pending.store(0, Ordering::Release);
                shard.metrics.ops_applied.fetch_add(raw, Ordering::Relaxed);
                shard
                    .metrics
                    .batches_flushed
                    .fetch_add(1, Ordering::Relaxed);
                if matches!(queue.health, Health::Quarantined { .. }) {
                    shard
                        .metrics
                        .worker_restarts
                        .fetch_add(1, Ordering::Relaxed);
                }
                queue.health = Health::Healthy;
                true
            }
            Err(_) => {
                shard.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                let consecutive = match queue.health {
                    Health::Quarantined { consecutive, .. } => consecutive + 1,
                    _ => 1,
                };
                queue.health = if consecutive > self.shard_config.max_restarts {
                    Health::Failed
                } else {
                    Health::Quarantined {
                        consecutive,
                        backoff: 1u32 << (consecutive - 1).min(6),
                    }
                };
                false
            }
        }
    }

    /// Forces a group commit on every live shard (e.g. before `entries`,
    /// or to bound queue staleness from a maintenance thread). Bypasses
    /// quarantine backoff — an explicit flush *is* the retry — and skips
    /// failed shards, so it always terminates and never deadlocks; a
    /// failed shard's queued deltas stay shed (degraded mode, visible in
    /// the metrics).
    pub fn flush(&self) {
        for shard in &self.shards {
            let mut queue = lock_queue(shard);
            if queue.health != Health::Failed {
                self.commit(shard, &mut queue);
            }
        }
    }

    /// Arms the fault hook: the next `n` group commits on shard `shard`
    /// panic before touching the engine. Test-only — exists so the
    /// supervisor's quarantine/restart path is exercisable from
    /// integration tests without an engine bug to trigger it.
    #[doc(hidden)]
    pub fn fail_next_flushes(&self, shard: usize, n: u64) {
        self.shards[shard].fail_flushes.store(n, Ordering::SeqCst);
    }

    /// Sum of queued deltas whose local point is dominated by `corner`
    /// (their contribution to the local prefix sum at `corner`).
    fn queued_prefix(queue: &[(Vec<usize>, G)], corner: &[usize]) -> G {
        let mut acc = G::ZERO;
        for (p, d) in queue {
            if p.iter().zip(corner).all(|(a, b)| a <= b) {
                acc = acc.add(*d);
            }
        }
        acc
    }

    /// Runs `read` against the shard's engine, reading *through* the
    /// write queue: the result of `read` plus `queued(queue)` for the
    /// still-unapplied deltas. The queue mutex is held only until the
    /// engine read lock is acquired — the same queue→engine order a
    /// group commit uses — so a concurrent flush can neither apply a
    /// delta we already counted nor sneak one past us. Quarantined
    /// shards stay fully readable: their deltas are simply all queued.
    fn read_through(
        shard: &Shard<G>,
        queued: impl FnOnce(&[(Vec<usize>, G)]) -> G,
        read: impl FnOnce(&DdcEngine<G>) -> G,
    ) -> G {
        if shard.pending.load(Ordering::Acquire) > 0 {
            let queue = lock_queue(shard);
            let pending = queued(&queue.deltas);
            let engine = read_engine(shard);
            drop(queue);
            read(&engine).add(pending)
        } else {
            read(&read_engine(shard))
        }
    }

    /// The shard's partial prefix sum for the global corner `point`,
    /// or `None` when the slab lies entirely above `point`.
    fn shard_prefix(&self, shard: &Shard<G>, point: &[usize]) -> Option<G> {
        if point[0] < shard.rows_lo {
            return None;
        }
        let mut local = point.to_vec();
        local[0] = point[0].min(shard.rows_hi - 1) - shard.rows_lo;
        shard.metrics.queries.fetch_add(1, Ordering::Relaxed);
        Some(Self::read_through(
            shard,
            |queue| Self::queued_prefix(queue, &local),
            |engine| engine.prefix_sum(&local),
        ))
    }

    /// The shard's signed contribution to all Figure-4 terms of one
    /// range query, under a single read acquisition.
    fn shard_terms(&self, shard: &Shard<G>, terms: &[(i8, Vec<usize>)]) -> G {
        // Clamp each contributing term into the slab first: terms that
        // clamp to the same local corner with opposite signs cancel, so
        // a slab entirely below the query's dimension-0 range nets to
        // zero and is skipped without touching a single lock.
        let mut mine: Vec<(i32, Vec<usize>)> = Vec::with_capacity(terms.len());
        for (sign, corner) in terms {
            if corner[0] < shard.rows_lo {
                continue;
            }
            let mut local = corner.clone();
            local[0] = corner[0].min(shard.rows_hi - 1) - shard.rows_lo;
            match mine.iter_mut().find(|(_, c)| *c == local) {
                Some((s, _)) => *s += i32::from(*sign),
                None => mine.push((i32::from(*sign), local)),
            }
        }
        mine.retain(|(s, _)| *s != 0);
        if mine.is_empty() {
            return G::ZERO;
        }
        // Only a +/- pair can collapse (the pair differs solely in its
        // dimension-0 coordinate), so surviving signs are unit.
        debug_assert!(mine.iter().all(|(s, _)| s.abs() == 1));
        shard
            .metrics
            .queries
            .fetch_add(mine.len() as u64, Ordering::Relaxed);
        Self::read_through(
            shard,
            |queue| {
                mine.iter().fold(G::ZERO, |acc, (sign, local)| {
                    let p = Self::queued_prefix(queue, local);
                    if *sign > 0 {
                        acc.add(p)
                    } else {
                        acc.sub(p)
                    }
                })
            },
            |engine| {
                mine.iter().fold(G::ZERO, |acc, (sign, local)| {
                    let p = engine.prefix_sum(local);
                    if *sign > 0 {
                        acc.add(p)
                    } else {
                        acc.sub(p)
                    }
                })
            },
        )
    }

    /// `SUM(A[0,…,0] : A[point])`, fanned across the contributing shards.
    pub fn query_prefix(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        if self.shard_config.parallel_queries && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(move || self.shard_prefix(shard, point)))
                    .collect();
                handles
                    .into_iter()
                    .zip(&self.shards)
                    // A panicked reader thread is not fatal: redo that
                    // shard's read on the caller thread (reads are pure).
                    .filter_map(|(h, shard)| {
                        h.join().unwrap_or_else(|_| self.shard_prefix(shard, point))
                    })
                    .fold(G::ZERO, |acc, p| acc.add(p))
            })
        } else {
            self.shards
                .iter()
                .filter_map(|shard| self.shard_prefix(shard, point))
                .fold(G::ZERO, |acc, p| acc.add(p))
        }
    }

    /// Sum over `region`: the ≤ `2^d` Figure-4 prefix terms, each term
    /// split across the shards it intersects.
    pub fn query(&self, region: &Region) -> G {
        region.check_within(&self.shape);
        let terms: Vec<(i8, Vec<usize>)> = region
            .prefix_decomposition()
            .into_iter()
            .map(|t| (t.sign, t.corner))
            .collect();
        if self.shard_config.parallel_queries && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(|| self.shard_terms(shard, &terms)))
                    .collect();
                handles
                    .into_iter()
                    .zip(&self.shards)
                    .map(|(h, shard)| h.join().unwrap_or_else(|_| self.shard_terms(shard, &terms)))
                    .fold(G::ZERO, |acc, p| acc.add(p))
            })
        } else {
            self.shards
                .iter()
                .map(|shard| self.shard_terms(shard, &terms))
                .fold(G::ZERO, |acc, p| acc.add(p))
        }
    }

    /// One cell's value: served entirely by the owning shard.
    pub fn cell_value(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        let shard = self.owner(point[0]);
        let mut local = point.to_vec();
        local[0] -= shard.rows_lo;
        shard.metrics.queries.fetch_add(1, Ordering::Relaxed);
        Self::read_through(
            shard,
            |queue| {
                queue
                    .iter()
                    .filter(|(p, _)| *p == local)
                    .fold(G::ZERO, |acc, (_, d)| acc.add(*d))
            },
            |engine| engine.cell(&local),
        )
    }

    /// Populated cells in global coordinates (flushes first).
    pub fn entries(&self) -> Vec<(Vec<usize>, G)> {
        self.flush();
        let mut out = Vec::new();
        for shard in &self.shards {
            let engine = read_engine(shard);
            for (mut p, v) in engine.entries() {
                p[0] += shard.rows_lo;
                out.push((p, v));
            }
        }
        out
    }

    /// Per-shard metrics, in shard order.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| MetricsSnapshot {
                shard: i,
                rows_lo: shard.rows_lo,
                rows_hi: shard.rows_hi,
                ops_enqueued: shard.metrics.ops_enqueued.load(Ordering::Relaxed),
                ops_applied: shard.metrics.ops_applied.load(Ordering::Relaxed),
                batches_flushed: shard.metrics.batches_flushed.load(Ordering::Relaxed),
                queries: shard.metrics.queries.load(Ordering::Relaxed),
                lock_hold_nanos: shard.metrics.lock_hold_nanos.load(Ordering::Relaxed),
                queue_depth_max: shard.metrics.queue_depth_max.load(Ordering::Relaxed),
                ops_rejected: shard.metrics.ops_rejected.load(Ordering::Relaxed),
                worker_panics: shard.metrics.worker_panics.load(Ordering::Relaxed),
                worker_restarts: shard.metrics.worker_restarts.load(Ordering::Relaxed),
                records_replayed: shard.metrics.records_replayed.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Folds the shard engines' op counters into the facade counter,
    /// tracking what was already absorbed so deltas are counted once.
    fn sync_counter(&self) {
        for shard in &self.shards {
            let snap = read_engine(shard).ops();
            let prev_r = shard.seen_reads.swap(snap.reads, Ordering::Relaxed);
            let prev_w = shard.seen_writes.swap(snap.writes, Ordering::Relaxed);
            self.counter.read(snap.reads.saturating_sub(prev_r));
            self.counter.write(snap.writes.saturating_sub(prev_w));
        }
    }
}

impl<G: AbelianGroup> RangeSumEngine<G> for ShardedCube<G> {
    fn name(&self) -> &'static str {
        "sharded-ddc"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn prefix_sum(&self, point: &[usize]) -> G {
        self.query_prefix(point)
    }

    fn apply_delta(&mut self, point: &[usize], delta: G) {
        self.update(point, delta);
    }

    fn apply_batch(&mut self, updates: &[(Vec<usize>, G)]) {
        self.update_batch(updates);
    }

    fn range_sum(&self, region: &Region) -> G {
        self.query(region)
    }

    fn cell(&self, point: &[usize]) -> G {
        self.cell_value(point)
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn ops(&self) -> OpSnapshot {
        self.sync_counter();
        self.counter.snapshot()
    }

    fn reset_ops(&self) {
        for shard in &self.shards {
            read_engine(shard).reset_ops();
            shard.seen_reads.store(0, Ordering::Relaxed);
            shard.seen_writes.store(0, Ordering::Relaxed);
        }
        self.counter.reset();
    }

    fn heap_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                // Queue capacity is read (and its guard dropped) before
                // the engine lock: holding engine while taking queue
                // inverts the documented queue→engine order and can
                // deadlock against a group commit.
                let queued = lock_queue(shard).deltas.capacity()
                    * (std::mem::size_of::<(Vec<usize>, G)>()
                        + self.shape.ndim() * std::mem::size_of::<usize>());
                read_engine(shard).heap_bytes() + queued
            })
            .sum()
    }

    fn metrics_text(&self) -> Option<String> {
        let mut out = String::from(
            "shard  rows          enqueued   applied  batches   queries  rejected  depth^  \
             panics  restarts  replayed  lock-held\n",
        );
        for m in self.metrics() {
            out.push_str(&format!(
                "{:>5}  [{:>4},{:>4})  {:>8}  {:>8}  {:>7}  {:>8}  {:>8}  {:>6}  {:>6}  {:>8}  {:>8}  {:>7.3}ms\n",
                m.shard,
                m.rows_lo,
                m.rows_hi,
                m.ops_enqueued,
                m.ops_applied,
                m.batches_flushed,
                m.queries,
                m.ops_rejected,
                m.queue_depth_max,
                m.worker_panics,
                m.worker_restarts,
                m.records_replayed,
                m.lock_hold_nanos as f64 / 1e6,
            ));
        }
        out.pop();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(shards: usize, batch: usize) -> ShardedCube<i64> {
        ShardedCube::new(
            Shape::new(&[32, 16]),
            DdcConfig::dynamic(),
            ShardConfig {
                shards,
                batch_capacity: batch,
                ..ShardConfig::default()
            },
        )
    }

    #[test]
    fn slabs_cover_dimension_zero_exactly() {
        for (n0, s) in [(32usize, 4usize), (31, 4), (5, 8), (1, 3), (7, 7)] {
            let c = ShardedCube::<i64>::new(
                Shape::new(&[n0, 4]),
                DdcConfig::dynamic(),
                ShardConfig::with_shards(s),
            );
            assert_eq!(c.shard_count(), s.min(n0));
            let mut next = 0;
            for shard in &c.shards {
                assert_eq!(shard.rows_lo, next);
                assert!(shard.rows_hi > shard.rows_lo);
                next = shard.rows_hi;
            }
            assert_eq!(next, n0);
            for row in 0..n0 {
                let o = c.owner(row);
                assert!(o.rows_lo <= row && row < o.rows_hi);
            }
        }
    }

    #[test]
    fn matches_unsharded_engine_on_every_prefix() {
        let mut plain = DdcEngine::<i64>::dynamic(Shape::new(&[32, 16]));
        let c = cube(4, 8);
        let pts: [([usize; 2], i64); 6] = [
            ([0, 0], 3),
            ([31, 15], 4),
            ([7, 7], -2),
            ([8, 0], 9),
            ([16, 3], 1),
            ([7, 7], 5),
        ];
        for (p, v) in pts {
            plain.apply_delta(&p, v);
            c.update(&p, v);
        }
        for p in Shape::new(&[32, 16]).iter_points() {
            assert_eq!(c.query_prefix(&p), plain.prefix_sum(&p), "{p:?}");
        }
        let q = Region::new(&[5, 2], &[20, 11]);
        assert_eq!(c.query(&q), plain.range_sum(&q));
        assert_eq!(c.cell_value(&[7, 7]), 3);
    }

    #[test]
    fn queue_batches_and_flushes_on_capacity() {
        let c = cube(2, 4);
        for i in 0..3 {
            c.update(&[i, 0], 1);
        }
        // Below capacity: nothing applied yet.
        let m = c.metrics();
        assert_eq!(m.iter().map(|s| s.ops_enqueued).sum::<u64>(), 3);
        assert_eq!(m.iter().map(|s| s.ops_applied).sum::<u64>(), 0);
        c.update(&[3, 0], 1); // fourth hits capacity on shard 0
        let m = c.metrics();
        assert_eq!(m[0].ops_applied, 4);
        assert_eq!(m[0].batches_flushed, 1);
        assert_eq!(m[0].queue_depth_max, 4);
        // Queries read through the queues without forcing extra commits.
        assert_eq!(c.query_prefix(&[31, 15]), 4);
        let m = c.metrics();
        assert_eq!(m.iter().map(|s| s.ops_applied).sum::<u64>(), 4);
    }

    #[test]
    fn queries_see_queued_writes_immediately() {
        let c = cube(4, 1_000_000); // batch capacity never reached
        c.update(&[10, 10], 7);
        assert_eq!(c.query_prefix(&[31, 15]), 7);
        c.update(&[10, 10], -7);
        assert_eq!(c.query(&Region::full(&Shape::new(&[32, 16]))), 0);
    }

    #[test]
    fn coalescing_cancels_opposing_deltas() {
        let c = cube(1, 1_000_000);
        c.update(&[4, 4], 10);
        c.update(&[4, 4], -10);
        c.flush();
        // Both raw ops count as applied, but the engine saw a no-op batch.
        let m = c.metrics();
        assert_eq!(m[0].ops_applied, 2);
        assert_eq!(c.entries().len(), 0);
    }

    #[test]
    fn healthy_shard_never_rejects_at_queue_capacity() {
        // batch_capacity > queue_capacity: the queue bound, not the batch
        // trigger, forces the commit — and it succeeds, so no rejection.
        let c = ShardedCube::<i64>::new(
            Shape::new(&[32, 16]),
            DdcConfig::dynamic(),
            ShardConfig {
                shards: 1,
                batch_capacity: 1_000_000,
                queue_capacity: 8,
                ..ShardConfig::default()
            },
        );
        for i in 0..100 {
            c.try_update(&[i % 32, 0], 1).unwrap();
        }
        let m = c.metrics();
        assert_eq!(m[0].ops_rejected, 0);
        assert!(m[0].queue_depth_max <= 8);
        assert_eq!(c.query_prefix(&[31, 15]), 100);
    }

    #[test]
    fn quarantined_shard_rejects_when_full_then_recovers() {
        let c = ShardedCube::<i64>::new(
            Shape::new(&[8, 4]),
            DdcConfig::dynamic(),
            ShardConfig {
                shards: 1,
                batch_capacity: 2,
                queue_capacity: 4,
                max_restarts: 10,
                ..ShardConfig::default()
            },
        );
        c.fail_next_flushes(0, 2);
        // Each pair of updates triggers a commit; the first two commits
        // panic, quarantining the shard with its deltas intact.
        for i in 0..4 {
            c.try_update(&[i, 0], 1).unwrap();
        }
        let m = c.metrics();
        assert!(m[0].worker_panics >= 1, "{m:?}");
        // Queue is at capacity and the shard is backing off: reject.
        let err = c.try_update(&[4, 0], 1).unwrap_err();
        assert!(matches!(
            err,
            TryUpdateError::QueueFull {
                shard: 0,
                capacity: 4
            }
        ));
        assert_eq!(c.metrics()[0].ops_rejected, 1);
        // Reads still see every queued delta.
        assert_eq!(c.query_prefix(&[7, 3]), 4);
        // Explicit flush bypasses backoff; the hook is exhausted, so the
        // commit lands and ends the quarantine.
        c.flush();
        let m = c.metrics();
        assert_eq!(m[0].worker_restarts, 1, "{m:?}");
        assert_eq!(m[0].ops_applied, 4);
        c.try_update(&[4, 0], 1).unwrap();
        assert_eq!(c.query_prefix(&[7, 3]), 5);
    }

    #[test]
    fn exhausted_restart_budget_fails_the_shard() {
        let c = ShardedCube::<i64>::new(
            Shape::new(&[8, 4]),
            DdcConfig::dynamic(),
            ShardConfig {
                shards: 2,
                batch_capacity: 1,
                queue_capacity: 2,
                max_restarts: 0,
                ..ShardConfig::default()
            },
        );
        c.fail_next_flushes(0, 1);
        c.update(&[0, 0], 1); // commit panics; budget 0 → Failed
        let err = c.try_update(&[1, 0], 1).unwrap_err();
        assert_eq!(err, TryUpdateError::ShardFailed { shard: 0 });
        assert!(err.to_string().contains("shard 0"));
        // The sibling shard is unaffected, and flush() skips the corpse
        // instead of deadlocking.
        c.try_update(&[7, 0], 3).unwrap();
        c.flush();
        assert_eq!(c.metrics()[1].ops_applied, 1);
    }

    #[test]
    fn update_timeout_rejects_after_deadline() {
        let c = ShardedCube::<i64>::new(
            Shape::new(&[8, 4]),
            DdcConfig::dynamic(),
            ShardConfig {
                shards: 1,
                batch_capacity: 1,
                queue_capacity: 1,
                // The retry loop burns backoff fast; a huge budget keeps
                // the shard quarantined (not failed) for the whole wait.
                max_restarts: 1_000_000,
                ..ShardConfig::default()
            },
        );
        // Enough hook budget that the shard stays quarantined throughout.
        c.fail_next_flushes(0, 1_000);
        c.update(&[0, 0], 1); // panics, stays queued; queue now full
        let err = c
            .update_timeout(&[1, 0], 1, Duration::from_millis(5))
            .unwrap_err();
        assert!(matches!(err, TryUpdateError::QueueFull { .. }));
        c.fail_next_flushes(0, 0);
        c.update_timeout(&[1, 0], 1, Duration::from_millis(100))
            .unwrap();
        assert_eq!(c.query_prefix(&[7, 3]), 2);
    }

    #[test]
    fn from_recovered_counts_replayed_records() {
        let entries = vec![(vec![1usize, 1], 5i64), (vec![30, 2], 7), (vec![2, 3], -1)];
        let c = ShardedCube::from_recovered(
            Shape::new(&[32, 16]),
            DdcConfig::dynamic(),
            ShardConfig::with_shards(2),
            &entries,
        );
        let m = c.metrics();
        assert_eq!(m.iter().map(|s| s.records_replayed).sum::<u64>(), 3);
        assert_eq!(m[0].records_replayed, 2);
        assert_eq!(m[1].records_replayed, 1);
        assert_eq!(c.query_prefix(&[31, 15]), 11);
    }

    #[test]
    fn parallel_queries_agree_with_sequential() {
        let seq = cube(4, 4);
        let par = ShardedCube::<i64>::new(
            Shape::new(&[32, 16]),
            DdcConfig::dynamic(),
            ShardConfig {
                shards: 4,
                batch_capacity: 4,
                parallel_queries: true,
                ..ShardConfig::default()
            },
        );
        for i in 0..32 {
            seq.update(&[i, i % 16], i as i64);
            par.update(&[i, i % 16], i as i64);
        }
        for p in [[0usize, 0usize], [31, 15], [15, 8], [16, 0]] {
            assert_eq!(seq.query_prefix(&p), par.query_prefix(&p));
        }
        let q = Region::new(&[3, 1], &[29, 14]);
        assert_eq!(seq.query(&q), par.query(&q));
    }

    #[test]
    fn facade_counter_absorbs_shard_ops() {
        let c = cube(4, 1);
        assert_eq!(c.ops(), OpSnapshot::default());
        for i in 0..16 {
            c.update(&[i, 0], 1);
        }
        let after_writes = c.ops();
        assert!(after_writes.writes > 0, "{after_writes:?}");
        let _ = c.query_prefix(&[31, 15]);
        let after_reads = c.ops();
        assert!(after_reads.reads > after_writes.reads, "{after_reads:?}");
        // Absorbing twice must not double-count.
        let again = c.ops();
        assert_eq!(again, after_reads);
        c.reset_ops();
        assert_eq!(c.ops(), OpSnapshot::default());
    }

    #[test]
    fn metrics_text_is_one_row_per_shard() {
        let c = cube(3, 2);
        c.update(&[0, 0], 1);
        let text = RangeSumEngine::metrics_text(&c).expect("sharded cube reports metrics");
        assert_eq!(text.lines().count(), 1 + 3, "{text}");
        assert!(text.contains("enqueued"), "{text}");
        assert!(text.contains("restarts"), "{text}");
    }

    #[test]
    fn trait_object_round_trip() {
        let mut c: Box<dyn RangeSumEngine<i64>> = Box::new(cube(4, 8));
        c.apply_delta(&[1, 2], 5);
        assert_eq!(c.set(&[1, 2], 9), 5);
        assert_eq!(c.cell(&[1, 2]), 9);
        assert_eq!(c.range_sum(&Region::full(&Shape::new(&[32, 16]))), 9);
        assert_eq!(c.name(), "sharded-ddc");
    }
}
