//! A sharded concurrent cube: dimension-0 partitioning with write batching.
//!
//! [`SharedCube`](crate::SharedCube) serializes every operation behind one
//! `RwLock`, so aggregate read throughput stops scaling as soon as a
//! writer stalls the lock. [`ShardedCube`] removes that single choke
//! point:
//!
//! * The cube is split along **dimension 0** into `S` contiguous slabs,
//!   each backed by its own independently locked [`DdcEngine`].
//! * Point updates route to the owning shard's **write-batch queue**.
//!   Queued deltas are coalesced per cell (sound because
//!   [`AbelianGroup`] addition commutes) and applied under a *single*
//!   exclusive acquisition — group commit.
//! * Prefix/range queries decompose into the ≤ `2^d` Figure-4 prefix
//!   terms and fan out across the shards whose slab intersects the
//!   query, optionally on [`std::thread::scope`], combining the partial
//!   sums with the group operation.
//!
//! ## Consistency
//!
//! Each shard is linearizable: a query reads *through* the shard's queue
//! — engine value plus the contribution of the still-queued deltas — so
//! a thread always reads its own writes and a single-threaded caller
//! observes exactly the semantics of an unsharded engine (the
//! `sharded_cube` differential test replays a trace and demands
//! bit-identical answers). Readers never take the exclusive engine lock;
//! only group commits do. Across shards there is no global snapshot —
//! concurrent multi-shard queries may observe one shard before and
//! another after a concurrent update, the usual trade of sharded stores.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};
use std::time::Instant;

use ddc_array::{AbelianGroup, OpCounter, OpSnapshot, RangeSumEngine, Region, Shape};

use crate::config::DdcConfig;
use crate::engine::DdcEngine;

/// Tuning knobs for a [`ShardedCube`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Requested shard count. Clamped to `1..=n_0` (a slab needs at
    /// least one row of dimension 0).
    pub shards: usize,
    /// Queue length that triggers a group commit. `1` degenerates to
    /// write-through locking.
    pub batch_capacity: usize,
    /// Fan queries out on `std::thread::scope` instead of visiting
    /// shards sequentially. Worth it for expensive per-shard work
    /// (large `d`, cold caches); for microsecond queries the spawn cost
    /// dominates, so this defaults to off.
    pub parallel_queries: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            batch_capacity: 128,
            parallel_queries: false,
        }
    }
}

impl ShardConfig {
    /// `shards` shards with default batching.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// Point-in-time metrics for one shard (the S3 relaxed-atomic op
/// counters, extended per shard).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Shard index in `0..S`.
    pub shard: usize,
    /// First dimension-0 row owned by the shard.
    pub rows_lo: usize,
    /// One past the last dimension-0 row owned by the shard.
    pub rows_hi: usize,
    /// Deltas pushed onto the write queue.
    pub ops_enqueued: u64,
    /// Deltas applied to the engine (equals enqueued after a flush).
    pub ops_applied: u64,
    /// Group commits performed.
    pub batches_flushed: u64,
    /// Queries answered (partial prefix sums served by this shard).
    pub queries: u64,
    /// Estimated nanoseconds the exclusive engine lock was held for
    /// flushes — the contention budget readers compete against.
    pub lock_hold_nanos: u64,
}

#[derive(Debug, Default)]
struct ShardMetrics {
    ops_enqueued: AtomicU64,
    ops_applied: AtomicU64,
    batches_flushed: AtomicU64,
    queries: AtomicU64,
    lock_hold_nanos: AtomicU64,
}

#[derive(Debug)]
struct Shard<G: AbelianGroup> {
    /// Owned dimension-0 rows: `rows_lo..rows_hi` of the logical cube.
    rows_lo: usize,
    rows_hi: usize,
    engine: RwLock<DdcEngine<G>>,
    /// Pending deltas in *local* coordinates. Lock order: `queue` before
    /// `engine` — flushes hold the queue while applying so a concurrent
    /// reader that drains the queue cannot miss deltas enqueued behind it.
    queue: Mutex<Vec<(Vec<usize>, G)>>,
    /// Fast-path mirror of the queue length so readers skip the mutex
    /// when nothing is pending.
    pending: AtomicUsize,
    metrics: ShardMetrics,
    /// Engine-counter totals already absorbed into the facade counter.
    seen_reads: AtomicU64,
    seen_writes: AtomicU64,
}

/// A concurrent cube sharded along dimension 0 with per-shard write
/// batching. See the [module docs](self) for the protocol.
///
/// # Examples
///
/// ```
/// use ddc_array::{RangeSumEngine, Region, Shape};
/// use ddc_core::{DdcConfig, ShardConfig, ShardedCube};
///
/// let cube = ShardedCube::<i64>::new(
///     Shape::new(&[64, 64]),
///     DdcConfig::dynamic(),
///     ShardConfig::with_shards(4),
/// );
/// cube.update(&[3, 5], 7);
/// cube.update(&[60, 9], 2);
/// assert_eq!(cube.query(&Region::new(&[0, 0], &[63, 63])), 9);
/// ```
#[derive(Debug)]
pub struct ShardedCube<G: AbelianGroup> {
    shape: Shape,
    shard_config: ShardConfig,
    shards: Vec<Shard<G>>,
    counter: OpCounter,
}

impl<G: AbelianGroup> ShardedCube<G> {
    /// An all-zero sharded cube. The shard count is clamped to the
    /// number of dimension-0 rows.
    pub fn new(shape: Shape, config: DdcConfig, shard_config: ShardConfig) -> Self {
        let n0 = shape.dim(0);
        let s = shard_config.shards.clamp(1, n0);
        let shards = (0..s)
            .map(|i| {
                let rows_lo = i * n0 / s;
                let rows_hi = (i + 1) * n0 / s;
                let mut dims = shape.dims().to_vec();
                dims[0] = rows_hi - rows_lo;
                Shard {
                    rows_lo,
                    rows_hi,
                    engine: RwLock::new(DdcEngine::with_config(Shape::new(&dims), config)),
                    queue: Mutex::new(Vec::new()),
                    pending: AtomicUsize::new(0),
                    metrics: ShardMetrics::default(),
                    seen_reads: AtomicU64::new(0),
                    seen_writes: AtomicU64::new(0),
                }
            })
            .collect();
        Self {
            shape,
            shard_config,
            shards,
            counter: OpCounter::new(),
        }
    }

    /// Number of shards actually in use (after clamping).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard configuration in effect.
    pub fn shard_config(&self) -> ShardConfig {
        self.shard_config
    }

    /// The shard owning dimension-0 row `row`.
    fn owner(&self, row: usize) -> &Shard<G> {
        debug_assert!(row < self.shape.dim(0), "row {row} out of bounds");
        // Slab cuts are i·n0/S, so the inverse is (row·S)/n0 — possibly
        // one off under integer division; fix up locally.
        let n0 = self.shape.dim(0);
        let s = self.shards.len();
        let mut i = (row * s / n0).min(s - 1);
        while row < self.shards[i].rows_lo {
            i -= 1;
        }
        while row >= self.shards[i].rows_hi {
            i += 1;
        }
        &self.shards[i]
    }

    /// Adds `delta` at `point`: routed to the owning shard's queue, with
    /// a group commit once the queue reaches `batch_capacity`.
    pub fn update(&self, point: &[usize], delta: G) {
        self.shape.check_point(point);
        let shard = self.owner(point[0]);
        let mut local = point.to_vec();
        local[0] -= shard.rows_lo;
        let mut queue = shard.queue.lock().expect("queue poisoned");
        queue.push((local, delta));
        shard.metrics.ops_enqueued.fetch_add(1, Ordering::Relaxed);
        if queue.len() >= self.shard_config.batch_capacity.max(1) {
            Self::flush_queue(shard, queue);
        } else {
            shard.pending.store(queue.len(), Ordering::Release);
        }
    }

    /// Applies a batch of updates, locking each touched shard's queue
    /// once.
    pub fn update_batch(&self, updates: &[(Vec<usize>, G)]) {
        let mut by_shard: HashMap<usize, Vec<(Vec<usize>, G)>> = HashMap::new();
        for (point, delta) in updates {
            self.shape.check_point(point);
            let shard = self.owner(point[0]);
            let idx = shard.rows_lo; // unique per shard; used as key
            let mut local = point.clone();
            local[0] -= shard.rows_lo;
            by_shard.entry(idx).or_default().push((local, *delta));
        }
        for shard in &self.shards {
            if let Some(mut batch) = by_shard.remove(&shard.rows_lo) {
                let mut queue = shard.queue.lock().expect("queue poisoned");
                shard
                    .metrics
                    .ops_enqueued
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                queue.append(&mut batch);
                if queue.len() >= self.shard_config.batch_capacity.max(1) {
                    Self::flush_queue(shard, queue);
                } else {
                    shard.pending.store(queue.len(), Ordering::Release);
                }
            }
        }
    }

    /// Group commit: coalesce the queued deltas per cell and apply them
    /// under one exclusive engine acquisition. Called with the queue
    /// lock held so no concurrent enqueue can slip between drain and
    /// apply.
    fn flush_queue(shard: &Shard<G>, mut queue: MutexGuard<'_, Vec<(Vec<usize>, G)>>) {
        if queue.is_empty() {
            return;
        }
        let raw = queue.len();
        let mut coalesced: HashMap<Vec<usize>, G> = HashMap::with_capacity(raw);
        for (point, delta) in queue.drain(..) {
            let slot = coalesced.entry(point).or_insert(G::ZERO);
            *slot = slot.add(delta);
        }
        let batch: Vec<(Vec<usize>, G)> = coalesced
            .into_iter()
            .filter(|(_, d)| !d.is_zero())
            .collect();
        let held = Instant::now();
        if !batch.is_empty() {
            let mut engine = shard.engine.write().expect("engine poisoned");
            engine.apply_batch(&batch);
        }
        // Cleared only after the apply: a reader that saw `pending == 0`
        // on its fast path must find every drained delta already in the
        // engine.
        shard.pending.store(0, Ordering::Release);
        shard
            .metrics
            .lock_hold_nanos
            .fetch_add(held.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shard
            .metrics
            .ops_applied
            .fetch_add(raw as u64, Ordering::Relaxed);
        shard
            .metrics
            .batches_flushed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Drains a shard's queue if anything is pending (reader-side
    /// visibility barrier).
    fn flush_shard(&self, shard: &Shard<G>) {
        if shard.pending.load(Ordering::Acquire) > 0 {
            Self::flush_queue(shard, shard.queue.lock().expect("queue poisoned"));
        }
    }

    /// Forces a group commit on every shard (e.g. before `entries`, or
    /// to bound queue staleness from a maintenance thread).
    pub fn flush(&self) {
        for shard in &self.shards {
            self.flush_shard(shard);
        }
    }

    /// Sum of queued deltas whose local point is dominated by `corner`
    /// (their contribution to the local prefix sum at `corner`).
    fn queued_prefix(queue: &[(Vec<usize>, G)], corner: &[usize]) -> G {
        let mut acc = G::ZERO;
        for (p, d) in queue {
            if p.iter().zip(corner).all(|(a, b)| a <= b) {
                acc = acc.add(*d);
            }
        }
        acc
    }

    /// Runs `read` against the shard's engine, reading *through* the
    /// write queue: the result of `read` plus `queued(queue)` for the
    /// still-unapplied deltas. The queue mutex is held only until the
    /// engine read lock is acquired — the same queue→engine order a
    /// group commit uses — so a concurrent flush can neither apply a
    /// delta we already counted nor sneak one past us.
    fn read_through(
        shard: &Shard<G>,
        queued: impl FnOnce(&[(Vec<usize>, G)]) -> G,
        read: impl FnOnce(&DdcEngine<G>) -> G,
    ) -> G {
        if shard.pending.load(Ordering::Acquire) > 0 {
            let queue = shard.queue.lock().expect("queue poisoned");
            let pending = queued(&queue);
            let engine = shard.engine.read().expect("engine poisoned");
            drop(queue);
            read(&engine).add(pending)
        } else {
            read(&shard.engine.read().expect("engine poisoned"))
        }
    }

    /// The shard's partial prefix sum for the global corner `point`,
    /// or `None` when the slab lies entirely above `point`.
    fn shard_prefix(&self, shard: &Shard<G>, point: &[usize]) -> Option<G> {
        if point[0] < shard.rows_lo {
            return None;
        }
        let mut local = point.to_vec();
        local[0] = point[0].min(shard.rows_hi - 1) - shard.rows_lo;
        shard.metrics.queries.fetch_add(1, Ordering::Relaxed);
        Some(Self::read_through(
            shard,
            |queue| Self::queued_prefix(queue, &local),
            |engine| engine.prefix_sum(&local),
        ))
    }

    /// The shard's signed contribution to all Figure-4 terms of one
    /// range query, under a single read acquisition.
    fn shard_terms(&self, shard: &Shard<G>, terms: &[(i8, Vec<usize>)]) -> G {
        // Clamp each contributing term into the slab first: terms that
        // clamp to the same local corner with opposite signs cancel, so
        // a slab entirely below the query's dimension-0 range nets to
        // zero and is skipped without touching a single lock.
        let mut mine: Vec<(i32, Vec<usize>)> = Vec::with_capacity(terms.len());
        for (sign, corner) in terms {
            if corner[0] < shard.rows_lo {
                continue;
            }
            let mut local = corner.clone();
            local[0] = corner[0].min(shard.rows_hi - 1) - shard.rows_lo;
            match mine.iter_mut().find(|(_, c)| *c == local) {
                Some((s, _)) => *s += i32::from(*sign),
                None => mine.push((i32::from(*sign), local)),
            }
        }
        mine.retain(|(s, _)| *s != 0);
        if mine.is_empty() {
            return G::ZERO;
        }
        // Only a +/- pair can collapse (the pair differs solely in its
        // dimension-0 coordinate), so surviving signs are unit.
        debug_assert!(mine.iter().all(|(s, _)| s.abs() == 1));
        shard
            .metrics
            .queries
            .fetch_add(mine.len() as u64, Ordering::Relaxed);
        Self::read_through(
            shard,
            |queue| {
                mine.iter().fold(G::ZERO, |acc, (sign, local)| {
                    let p = Self::queued_prefix(queue, local);
                    if *sign > 0 {
                        acc.add(p)
                    } else {
                        acc.sub(p)
                    }
                })
            },
            |engine| {
                mine.iter().fold(G::ZERO, |acc, (sign, local)| {
                    let p = engine.prefix_sum(local);
                    if *sign > 0 {
                        acc.add(p)
                    } else {
                        acc.sub(p)
                    }
                })
            },
        )
    }

    /// `SUM(A[0,…,0] : A[point])`, fanned across the contributing shards.
    pub fn query_prefix(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        if self.shard_config.parallel_queries && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(move || self.shard_prefix(shard, point)))
                    .collect();
                handles
                    .into_iter()
                    .filter_map(|h| h.join().expect("shard reader panicked"))
                    .fold(G::ZERO, |acc, p| acc.add(p))
            })
        } else {
            self.shards
                .iter()
                .filter_map(|shard| self.shard_prefix(shard, point))
                .fold(G::ZERO, |acc, p| acc.add(p))
        }
    }

    /// Sum over `region`: the ≤ `2^d` Figure-4 prefix terms, each term
    /// split across the shards it intersects.
    pub fn query(&self, region: &Region) -> G {
        region.check_within(&self.shape);
        let terms: Vec<(i8, Vec<usize>)> = region
            .prefix_decomposition()
            .into_iter()
            .map(|t| (t.sign, t.corner))
            .collect();
        if self.shard_config.parallel_queries && self.shards.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(|| self.shard_terms(shard, &terms)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard reader panicked"))
                    .fold(G::ZERO, |acc, p| acc.add(p))
            })
        } else {
            self.shards
                .iter()
                .map(|shard| self.shard_terms(shard, &terms))
                .fold(G::ZERO, |acc, p| acc.add(p))
        }
    }

    /// One cell's value: served entirely by the owning shard.
    pub fn cell_value(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        let shard = self.owner(point[0]);
        let mut local = point.to_vec();
        local[0] -= shard.rows_lo;
        shard.metrics.queries.fetch_add(1, Ordering::Relaxed);
        Self::read_through(
            shard,
            |queue| {
                queue
                    .iter()
                    .filter(|(p, _)| *p == local)
                    .fold(G::ZERO, |acc, (_, d)| acc.add(*d))
            },
            |engine| engine.cell(&local),
        )
    }

    /// Populated cells in global coordinates (flushes first).
    pub fn entries(&self) -> Vec<(Vec<usize>, G)> {
        self.flush();
        let mut out = Vec::new();
        for shard in &self.shards {
            let engine = shard.engine.read().expect("engine poisoned");
            for (mut p, v) in engine.entries() {
                p[0] += shard.rows_lo;
                out.push((p, v));
            }
        }
        out
    }

    /// Per-shard metrics, in shard order.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| MetricsSnapshot {
                shard: i,
                rows_lo: shard.rows_lo,
                rows_hi: shard.rows_hi,
                ops_enqueued: shard.metrics.ops_enqueued.load(Ordering::Relaxed),
                ops_applied: shard.metrics.ops_applied.load(Ordering::Relaxed),
                batches_flushed: shard.metrics.batches_flushed.load(Ordering::Relaxed),
                queries: shard.metrics.queries.load(Ordering::Relaxed),
                lock_hold_nanos: shard.metrics.lock_hold_nanos.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Folds the shard engines' op counters into the facade counter,
    /// tracking what was already absorbed so deltas are counted once.
    fn sync_counter(&self) {
        for shard in &self.shards {
            let snap = shard.engine.read().expect("engine poisoned").ops();
            let prev_r = shard.seen_reads.swap(snap.reads, Ordering::Relaxed);
            let prev_w = shard.seen_writes.swap(snap.writes, Ordering::Relaxed);
            self.counter.read(snap.reads.saturating_sub(prev_r));
            self.counter.write(snap.writes.saturating_sub(prev_w));
        }
    }
}

impl<G: AbelianGroup> RangeSumEngine<G> for ShardedCube<G> {
    fn name(&self) -> &'static str {
        "sharded-ddc"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn prefix_sum(&self, point: &[usize]) -> G {
        self.query_prefix(point)
    }

    fn apply_delta(&mut self, point: &[usize], delta: G) {
        self.update(point, delta);
    }

    fn apply_batch(&mut self, updates: &[(Vec<usize>, G)]) {
        self.update_batch(updates);
    }

    fn range_sum(&self, region: &Region) -> G {
        self.query(region)
    }

    fn cell(&self, point: &[usize]) -> G {
        self.cell_value(point)
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn ops(&self) -> OpSnapshot {
        self.sync_counter();
        self.counter.snapshot()
    }

    fn reset_ops(&self) {
        for shard in &self.shards {
            shard.engine.read().expect("engine poisoned").reset_ops();
            shard.seen_reads.store(0, Ordering::Relaxed);
            shard.seen_writes.store(0, Ordering::Relaxed);
        }
        self.counter.reset();
    }

    fn heap_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard.engine.read().expect("engine poisoned").heap_bytes()
                    + shard.queue.lock().expect("queue poisoned").capacity()
                        * (std::mem::size_of::<(Vec<usize>, G)>()
                            + self.shape.ndim() * std::mem::size_of::<usize>())
            })
            .sum()
    }

    fn metrics_text(&self) -> Option<String> {
        let mut out =
            String::from("shard  rows          enqueued   applied  batches   queries  lock-held\n");
        for m in self.metrics() {
            out.push_str(&format!(
                "{:>5}  [{:>4},{:>4})  {:>8}  {:>8}  {:>7}  {:>8}  {:>7.3}ms\n",
                m.shard,
                m.rows_lo,
                m.rows_hi,
                m.ops_enqueued,
                m.ops_applied,
                m.batches_flushed,
                m.queries,
                m.lock_hold_nanos as f64 / 1e6,
            ));
        }
        out.pop();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(shards: usize, batch: usize) -> ShardedCube<i64> {
        ShardedCube::new(
            Shape::new(&[32, 16]),
            DdcConfig::dynamic(),
            ShardConfig {
                shards,
                batch_capacity: batch,
                parallel_queries: false,
            },
        )
    }

    #[test]
    fn slabs_cover_dimension_zero_exactly() {
        for (n0, s) in [(32usize, 4usize), (31, 4), (5, 8), (1, 3), (7, 7)] {
            let c = ShardedCube::<i64>::new(
                Shape::new(&[n0, 4]),
                DdcConfig::dynamic(),
                ShardConfig::with_shards(s),
            );
            assert_eq!(c.shard_count(), s.min(n0));
            let mut next = 0;
            for shard in &c.shards {
                assert_eq!(shard.rows_lo, next);
                assert!(shard.rows_hi > shard.rows_lo);
                next = shard.rows_hi;
            }
            assert_eq!(next, n0);
            for row in 0..n0 {
                let o = c.owner(row);
                assert!(o.rows_lo <= row && row < o.rows_hi);
            }
        }
    }

    #[test]
    fn matches_unsharded_engine_on_every_prefix() {
        let mut plain = DdcEngine::<i64>::dynamic(Shape::new(&[32, 16]));
        let c = cube(4, 8);
        let pts: [([usize; 2], i64); 6] = [
            ([0, 0], 3),
            ([31, 15], 4),
            ([7, 7], -2),
            ([8, 0], 9),
            ([16, 3], 1),
            ([7, 7], 5),
        ];
        for (p, v) in pts {
            plain.apply_delta(&p, v);
            c.update(&p, v);
        }
        for p in Shape::new(&[32, 16]).iter_points() {
            assert_eq!(c.query_prefix(&p), plain.prefix_sum(&p), "{p:?}");
        }
        let q = Region::new(&[5, 2], &[20, 11]);
        assert_eq!(c.query(&q), plain.range_sum(&q));
        assert_eq!(c.cell_value(&[7, 7]), 3);
    }

    #[test]
    fn queue_batches_and_flushes_on_capacity() {
        let c = cube(2, 4);
        for i in 0..3 {
            c.update(&[i, 0], 1);
        }
        // Below capacity: nothing applied yet.
        let m = c.metrics();
        assert_eq!(m.iter().map(|s| s.ops_enqueued).sum::<u64>(), 3);
        assert_eq!(m.iter().map(|s| s.ops_applied).sum::<u64>(), 0);
        c.update(&[3, 0], 1); // fourth hits capacity on shard 0
        let m = c.metrics();
        assert_eq!(m[0].ops_applied, 4);
        assert_eq!(m[0].batches_flushed, 1);
        // Queries read through the queues without forcing extra commits.
        assert_eq!(c.query_prefix(&[31, 15]), 4);
        let m = c.metrics();
        assert_eq!(m.iter().map(|s| s.ops_applied).sum::<u64>(), 4);
    }

    #[test]
    fn queries_see_queued_writes_immediately() {
        let c = cube(4, 1_000_000); // capacity never reached
        c.update(&[10, 10], 7);
        assert_eq!(c.query_prefix(&[31, 15]), 7);
        c.update(&[10, 10], -7);
        assert_eq!(c.query(&Region::full(&Shape::new(&[32, 16]))), 0);
    }

    #[test]
    fn coalescing_cancels_opposing_deltas() {
        let c = cube(1, 1_000_000);
        c.update(&[4, 4], 10);
        c.update(&[4, 4], -10);
        c.flush();
        // Both raw ops count as applied, but the engine saw a no-op batch.
        let m = c.metrics();
        assert_eq!(m[0].ops_applied, 2);
        assert_eq!(c.entries().len(), 0);
    }

    #[test]
    fn parallel_queries_agree_with_sequential() {
        let seq = cube(4, 4);
        let par = ShardedCube::<i64>::new(
            Shape::new(&[32, 16]),
            DdcConfig::dynamic(),
            ShardConfig {
                shards: 4,
                batch_capacity: 4,
                parallel_queries: true,
            },
        );
        for i in 0..32 {
            seq.update(&[i, i % 16], i as i64);
            par.update(&[i, i % 16], i as i64);
        }
        for p in [[0usize, 0usize], [31, 15], [15, 8], [16, 0]] {
            assert_eq!(seq.query_prefix(&p), par.query_prefix(&p));
        }
        let q = Region::new(&[3, 1], &[29, 14]);
        assert_eq!(seq.query(&q), par.query(&q));
    }

    #[test]
    fn facade_counter_absorbs_shard_ops() {
        let c = cube(4, 1);
        assert_eq!(c.ops(), OpSnapshot::default());
        for i in 0..16 {
            c.update(&[i, 0], 1);
        }
        let after_writes = c.ops();
        assert!(after_writes.writes > 0, "{after_writes:?}");
        let _ = c.query_prefix(&[31, 15]);
        let after_reads = c.ops();
        assert!(after_reads.reads > after_writes.reads, "{after_reads:?}");
        // Absorbing twice must not double-count.
        let again = c.ops();
        assert_eq!(again, after_reads);
        c.reset_ops();
        assert_eq!(c.ops(), OpSnapshot::default());
    }

    #[test]
    fn metrics_text_is_one_row_per_shard() {
        let c = cube(3, 2);
        c.update(&[0, 0], 1);
        let text = RangeSumEngine::metrics_text(&c).expect("sharded cube reports metrics");
        assert_eq!(text.lines().count(), 1 + 3, "{text}");
        assert!(text.contains("enqueued"), "{text}");
    }

    #[test]
    fn trait_object_round_trip() {
        let mut c: Box<dyn RangeSumEngine<i64>> = Box::new(cube(4, 8));
        c.apply_delta(&[1, 2], 5);
        assert_eq!(c.set(&[1, 2], 9), 5);
        assert_eq!(c.cell(&[1, 2]), 9);
        assert_eq!(c.range_sum(&Region::full(&Shape::new(&[32, 16]))), 9);
        assert_eq!(c.name(), "sharded-ddc");
    }
}
