//! Zero-dependency observability: metrics registry, latency histograms,
//! and a lightweight tracing facade.
//!
//! The ROADMAP's north star is a serving system, and a serving system is
//! blind without per-operation telemetry. This module is the workspace's
//! single substrate for it — in-repo, offline-build-safe, `std`-only:
//!
//! * **[`Counter`] / [`Gauge`]** — relaxed-atomic scalars.
//! * **[`Histogram`]** — log-bucketed (one bucket per power of two, 64
//!   buckets, saturating at the top), recording into relaxed atomics so
//!   the hot path never takes a lock. Quantiles (p50/p90/p99/max) are
//!   estimated by geometric interpolation inside the owning bucket —
//!   exactly the trade Pibiri & Venturini's prefix-sum study motivates:
//!   constant factors dominate engine choice, so per-op latency must be
//!   *measured*, cheaply, everywhere.
//! * **[`Registry`]** — a process-global name → metric map. Lookups take
//!   a `RwLock` read; hot call sites cache the returned `Arc` in a
//!   `OnceLock` so steady-state cost is one pointer load.
//! * **Spans** — [`timer`] / [`Timer::observe`] wrap a region, feed its
//!   latency into a histogram, and (when tracing is on) push a
//!   [`TraceEvent`] onto a bounded ring buffer that [`trace_dump`]
//!   renders — the `TraceDump` hook `ddc-check` attaches to failing
//!   shrunken traces.
//!
//! ## Cost model
//!
//! Counters are always on (one relaxed `fetch_add`, low single-digit
//! nanoseconds). *Timing* is gated on a global flag read with one relaxed
//! atomic load: when disabled, the instrumented hot paths skip both
//! `Instant::now()` calls, so the overhead vs. uninstrumented code is a
//! branch — measured at well under the 5% budget by the `obs_overhead`
//! bench (see EXPERIMENTS.md). Timing defaults **on** (the histograms are
//! what `ddc stats` and the bench JSON exist for) and is disabled either
//! with `DDC_OBS=off` in the environment or [`set_timing_enabled`].
//!
//! Tracing (the event ring) defaults **off** and is enabled with
//! `DDC_TRACE=1` or [`set_trace_enabled`].

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::time::Instant;

// Observability state is deliberately *untracked* by the model checker
// (`crate::sync::untracked`): metric atomics and the registry's
// internal locks never influence control flow, and keeping them out of
// the model both shrinks the interleaving space and keeps schedule
// points stable across iterations regardless of `OnceLock`
// initialization order.
use crate::sync::untracked::{AtomicI64, AtomicU64, Mutex, Ordering, RwLock};
use crate::sync::{Arc, OnceLock, PoisonError};

/// Number of logarithmic buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Capacity of the trace ring buffer (older events are dropped).
pub const TRACE_RING_CAPACITY: usize = 512;

// ---------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------

/// A monotonically increasing event count (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Bucket index for a recorded value: 0 holds exactly `0`, bucket `b ≥ 1`
/// holds `[2^(b-1), 2^b)`, and the last bucket saturates upward.
fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive value range `[lo, hi]` covered by bucket `b` (the saturated
/// top bucket reports `u64::MAX` as its upper edge).
fn bucket_bounds(b: usize) -> (u64, u64) {
    if b == 0 {
        (0, 0)
    } else if b == HISTOGRAM_BUCKETS - 1 {
        (1u64 << (b - 1), u64::MAX)
    } else {
        (1u64 << (b - 1), (1u64 << b) - 1)
    }
}

/// A lock-free log-bucketed latency histogram.
///
/// Values are arbitrary `u64`s; by convention the instrumented paths
/// record **nanoseconds**. Recording is wait-free (three relaxed atomic
/// RMWs); reading takes a consistent-enough snapshot bucket by bucket.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time copy suitable for quantile estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Estimated quantile (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A frozen copy of a [`Histogram`]'s state.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts (see [`Histogram`] for the bucket layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by locating the bucket
    /// holding the target rank and interpolating linearly inside it.
    /// Returns 0 for an empty histogram; the estimate never exceeds the
    /// recorded maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target observation.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(b);
                let hi = hi.min(self.max.max(lo));
                // Position of the rank inside this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// A process-global name → metric map.
///
/// Names are `&'static str` by design: every instrumentation site is a
/// fixed code location, and static names make the registry allocation-
/// and hash-free on the lookup path. Dotted lowercase names
/// (`wal.append`) are the convention; [`prometheus_text`] sanitizes
/// them for exposition.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
) -> Arc<T> {
    if let Some(m) = map.read().unwrap_or_else(PoisonError::into_inner).get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(w.entry(name).or_default())
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&n, c)| (n, c.get()))
            .collect()
    }

    /// Snapshot of every gauge, sorted by name.
    pub fn gauges(&self) -> Vec<(&'static str, i64)> {
        self.gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&n, g)| (n, g.get()))
            .collect()
    }

    /// Snapshot of every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        self.histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&n, h)| (n, h.snapshot()))
            .collect()
    }
}

/// The process-global registry every instrumented path reports into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Shorthand for `registry().counter(name)`.
pub fn counter(name: &'static str) -> Arc<Counter> {
    registry().counter(name)
}

/// Shorthand for `registry().gauge(name)`.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Shorthand for `registry().histogram(name)`.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    registry().histogram(name)
}

// ---------------------------------------------------------------------
// Timing + tracing toggles
// ---------------------------------------------------------------------

/// `0` = follow the environment default, `1` = forced off, `2` = forced
/// on. One atomic so the hot-path check stays a single load.
static TIMING: AtomicU64 = AtomicU64::new(0);
static TRACING: AtomicU64 = AtomicU64::new(0);

fn env_default(var: &str, default_on: bool) -> bool {
    match std::env::var(var) {
        Ok(v) => !matches!(v.as_str(), "0" | "off" | "false" | "no" | ""),
        Err(_) => default_on,
    }
}

fn flag_state(flag: &AtomicU64, env: &'static str, default_on: bool) -> bool {
    match flag.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            // Resolve the environment once and latch the answer.
            let on = env_default(env, default_on);
            flag.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Whether span timing (and thus latency histograms) is active. Defaults
/// on; `DDC_OBS=off` (or `0`/`false`/`no`) in the environment disables
/// it, [`set_timing_enabled`] overrides either way.
pub fn timing_enabled() -> bool {
    flag_state(&TIMING, "DDC_OBS", true)
}

/// Forces timing on or off, returning the previous effective state.
pub fn set_timing_enabled(on: bool) -> bool {
    let prev = timing_enabled();
    TIMING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    prev
}

/// Whether the trace ring records events. Defaults off; `DDC_TRACE=1`
/// enables it, [`set_trace_enabled`] overrides either way.
pub fn trace_enabled() -> bool {
    flag_state(&TRACING, "DDC_TRACE", false)
}

/// Forces tracing on or off, returning the previous effective state.
pub fn set_trace_enabled(on: bool) -> bool {
    let prev = trace_enabled();
    TRACING.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    prev
}

// ---------------------------------------------------------------------
// Spans and the trace ring
// ---------------------------------------------------------------------

/// One completed span captured by the trace ring.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Instrumentation-site name (a histogram name).
    pub name: &'static str,
    /// Span start, microseconds since the first observed event.
    pub start_us: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn trace_ring() -> &'static Mutex<VecDeque<TraceEvent>> {
    static RING: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(TRACE_RING_CAPACITY)))
}

fn push_trace(name: &'static str, started: Instant, dur_ns: u64) {
    let start_us = started
        .saturating_duration_since(epoch())
        .as_micros()
        .min(u128::from(u64::MAX)) as u64;
    let mut ring = trace_ring().lock().unwrap_or_else(PoisonError::into_inner);
    if ring.len() >= TRACE_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(TraceEvent {
        name,
        start_us,
        dur_ns,
    });
}

/// Drains and returns the trace ring's events, oldest first.
pub fn take_trace() -> Vec<TraceEvent> {
    trace_ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .collect()
}

/// Empties the trace ring.
pub fn clear_trace() {
    trace_ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Renders the trace ring as an aligned text table (without draining
/// it): one line per event, oldest first. Empty string when no events
/// were captured.
pub fn trace_dump() -> String {
    let ring = trace_ring().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out = String::new();
    for e in ring.iter() {
        out.push_str(&format!(
            "{:>12.3}ms  {:<28} {:>10}ns\n",
            e.start_us as f64 / 1000.0,
            e.name,
            e.dur_ns
        ));
    }
    out.pop();
    out
}

/// An in-flight span: holds the start instant when timing or tracing is
/// active, and nothing (two no-op branches) otherwise.
#[derive(Debug)]
#[must_use = "a Timer only measures when observe() is called"]
pub struct Timer {
    start: Option<Instant>,
}

/// Starts a span. When both timing and tracing are disabled this is a
/// single relaxed atomic load and no clock read.
pub fn timer() -> Timer {
    Timer {
        start: if timing_enabled() || trace_enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Timer {
    /// Ends the span: records its duration into `hist` and, when tracing
    /// is on, pushes a [`TraceEvent`] named `name` onto the ring.
    pub fn observe(self, name: &'static str, hist: &Histogram) {
        if let Some(started) = self.start {
            let dur_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            hist.record(dur_ns);
            if trace_enabled() {
                push_trace(name, started, dur_ns);
            }
        }
    }

    /// Elapsed nanoseconds so far (`None` when the span is disabled).
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start
            .map(|s| s.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

/// Maps a dotted metric name to a Prometheus-safe identifier:
/// `wal.append` → `ddc_wal_append`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ddc_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Formats an `f64` for JSON (finite guaranteed by clamping).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders every metric registered in the process-global registry in
/// Prometheus exposition style. This is the one formatter shared by
/// every exposition surface (`ddc stats --prometheus` and the serving
/// layer's `GET /metrics`), so scrapes agree byte-for-byte no matter
/// which door they come in through.
pub fn prometheus_text() -> String {
    prometheus_text_for(registry())
}

/// Renders every metric in `reg` in Prometheus exposition style:
/// counters and gauges as single samples, histograms as
/// `_count`/`_sum_ns` plus `quantile`-labelled samples and `_max_ns`.
/// Output ordering is stable (metrics sort by name within each kind)
/// and names are sanitized by [`prom_name`]'s rules.
pub fn prometheus_text_for(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {v}\n"));
    }
    for (name, v) in reg.gauges() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {v}\n"));
    }
    for (name, h) in reg.histograms() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} summary\n"));
        out.push_str(&format!("{p}_count {}\n", h.count));
        out.push_str(&format!("{p}_sum_ns {}\n", h.sum));
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            out.push_str(&format!(
                "{p}_ns{{quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        out.push_str(&format!("{p}_max_ns {}\n", h.max));
    }
    out.pop();
    out
}

/// Former name of [`prometheus_text`], kept callable while downstream
/// tooling migrates.
#[deprecated(note = "renamed to prometheus_text")]
pub fn render_prometheus() -> String {
    prometheus_text()
}

/// Renders every registered metric as a JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name:
/// {count, sum_ns, mean_ns, p50_ns, p90_ns, p99_ns, max_ns}}}`.
/// Metric names are static identifiers, so no string escaping is needed.
pub fn render_json() -> String {
    let reg = registry();
    let mut out = String::from("{\n  \"counters\": {");
    let counters = reg.counters();
    for (i, (name, v)) in counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!("{sep}\n    \"{name}\": {v}"));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    let gauges = reg.gauges();
    for (i, (name, v)) in gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!("{sep}\n    \"{name}\": {v}"));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let hists = reg.histograms();
    for (i, (name, h)) in hists.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!(
            "{sep}\n    \"{name}\": {{\"count\": {}, \"sum_ns\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            h.count,
            h.sum,
            json_num(h.mean()),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max
        ));
    }
    out.push_str("\n  }\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that mutate the global timing/tracing flags or the shared
    /// trace ring must not interleave under the parallel test runner.
    fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_index(lo), b);
            assert_eq!(bucket_index(hi), b);
            assert_eq!(bucket_index(hi + 1), b + 1);
        }
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::default();
        // 100 observations spread evenly through bucket 7 ([64, 127]).
        for i in 0..100u64 {
            h.record(64 + (i * 63) / 99);
        }
        let p50 = h.quantile(0.5);
        assert!((80..=110).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(0.0) >= 64);
        assert_eq!(h.quantile(1.0), 127);
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 127);
    }

    #[test]
    fn quantile_orders_across_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(10); // bucket 4
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((8..=15).contains(&p50), "p50 = {p50}");
        assert!(p99 > 8_000, "p99 = {p99}");
        assert!(p99 <= 10_000, "p99 = {p99} must not exceed max");
    }

    #[test]
    fn saturation_at_the_top_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(snap.max, u64::MAX);
        // Estimates come from the saturated top bucket, not beyond it.
        assert!(h.quantile(0.99) >= 1u64 << 62);
        assert!(h.quantile(0.5) >= 1u64 << 62);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn registry_returns_the_same_metric_for_a_name() {
        let a = registry().counter("obs.test.same");
        let b = registry().counter("obs.test.same");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        let g = gauge("obs.test.gauge");
        g.set(-5);
        g.add(2);
        assert_eq!(gauge("obs.test.gauge").get(), -3);
    }

    #[test]
    fn renderers_include_registered_metrics() {
        counter("obs.test.render").add(7);
        histogram("obs.test.render_hist").record(1000);
        let prom = prometheus_text();
        assert!(prom.contains("ddc_obs_test_render 7"), "{prom}");
        assert!(prom.contains("ddc_obs_test_render_hist_count 1"), "{prom}");
        assert!(prom.contains("quantile=\"0.99\""), "{prom}");
        let json = render_json();
        assert!(json.contains("\"obs.test.render\": 7"), "{json}");
        assert!(json.contains("\"p99_ns\""), "{json}");
    }

    #[test]
    fn prometheus_text_is_byte_exact_with_stable_ordering_and_escaping() {
        // A private registry keeps the expectation independent of
        // whatever the rest of the test binary registered globally.
        let reg = Registry::default();
        reg.counter("serve.requests").add(3);
        reg.counter("a.weird-name").inc(); // '.' and '-' both escape to '_'
        reg.gauge("queue.depth").set(-2);
        let h = reg.histogram("rt");
        h.record(0);
        h.record(1);
        assert_eq!(
            prometheus_text_for(&reg),
            "# TYPE ddc_a_weird_name counter\n\
             ddc_a_weird_name 1\n\
             # TYPE ddc_serve_requests counter\n\
             ddc_serve_requests 3\n\
             # TYPE ddc_queue_depth gauge\n\
             ddc_queue_depth -2\n\
             # TYPE ddc_rt summary\n\
             ddc_rt_count 2\n\
             ddc_rt_sum_ns 1\n\
             ddc_rt_ns{quantile=\"0.5\"} 0\n\
             ddc_rt_ns{quantile=\"0.9\"} 1\n\
             ddc_rt_ns{quantile=\"0.99\"} 1\n\
             ddc_rt_max_ns 1"
        );
    }

    #[test]
    fn timer_records_into_histogram_and_ring() {
        let _guard = global_state_lock();
        let h = Histogram::default();
        clear_trace();
        let prev_t = set_timing_enabled(true);
        let prev_r = set_trace_enabled(true);
        let t = timer();
        std::hint::black_box(0u64);
        t.observe("obs.test.span", &h);
        set_trace_enabled(prev_r);
        set_timing_enabled(prev_t);
        assert_eq!(h.count(), 1);
        let dump = trace_dump();
        assert!(dump.contains("obs.test.span"), "{dump}");
    }

    #[test]
    fn disabled_timer_is_inert() {
        let _guard = global_state_lock();
        let h = Histogram::default();
        let prev_t = set_timing_enabled(false);
        let prev_r = set_trace_enabled(false);
        let t = timer();
        assert!(t.elapsed_ns().is_none());
        t.observe("obs.test.disabled", &h);
        set_timing_enabled(prev_t);
        set_trace_enabled(prev_r);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let _guard = global_state_lock();
        let prev = set_trace_enabled(true);
        for _ in 0..TRACE_RING_CAPACITY + 10 {
            push_trace("obs.test.bound", Instant::now(), 1);
        }
        set_trace_enabled(prev);
        let events = take_trace();
        assert!(events.len() <= TRACE_RING_CAPACITY);
    }
}
