//! Construction-time configuration of a Dynamic Data Cube.

/// How overlay row-sum groups are stored (paper §3 vs §4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The Basic Dynamic Data Cube (§3): row sums are kept *directly* as
    /// cumulative values in flat arrays. Queries read one value per group
    /// (`O(log n)` total) but updates cascade through the group —
    /// `O(n^{d-1})` worst case (§3.3).
    Basic,
    /// The Dynamic Data Cube (§4): row-sum groups are stored in secondary
    /// structures — a one-dimensional [`BaseStore`] when the group is
    /// one-dimensional, recursively a `(d-1)`-dimensional Dynamic Data
    /// Cube otherwise — giving `O(log^d n)` queries *and* updates
    /// (Theorem 2).
    Dynamic,
}

/// The structure used for one-dimensional row-sum groups (the recursion
/// base case of §4.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BaseStore {
    /// The B^c tree's implicit blocked layout (the default): dense leaf
    /// blocks of raw values under a flat Fenwick-layout summary array —
    /// same asymptotics as [`BaseStore::Bc`], branchless index
    /// arithmetic instead of pointer descent.
    Blocked,
    /// The paper's Cumulative B-Tree (§4.1) with the given fanout `f`.
    Bc {
        /// Maximum children per interior node / values per leaf.
        fanout: usize,
    },
    /// Fenwick tree ablation: same asymptotics, flat-array constants, but
    /// no positional insertion and eager `O(k)` allocation.
    Fenwick,
    /// Lazily materialized segment tree: allocates only along update
    /// paths, which is what makes sparse cubes (§5) occupy memory
    /// proportional to the populated region.
    SparseSeg,
}

/// Sizing of the paged leaf-block backend (see [`crate::pager`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PagerConfig {
    /// Buffer-pool budget in bytes; the pool evicts down to this after
    /// every access (pinned pages can transiently exceed it).
    pub mem_cap_bytes: usize,
    /// Page size in bytes (power of two; default 4 KiB).
    pub page_bytes: usize,
    /// Spill target: `true` writes evicted pages to an anonymous
    /// temporary file on disk (bounded RSS); `false` keeps them in an
    /// in-memory [`Vec<u8>`] file (deterministic tests, no fs access).
    pub spill_to_disk: bool,
}

/// Default pager page size (4 KiB).
pub const DEFAULT_PAGE_BYTES: usize = 4096;

impl PagerConfig {
    /// Disk-spilling pager with the given pool budget (default pages).
    pub fn disk(mem_cap_bytes: usize) -> Self {
        Self {
            mem_cap_bytes,
            page_bytes: DEFAULT_PAGE_BYTES,
            spill_to_disk: true,
        }
    }

    /// In-memory-spill pager (for tests and the differential harness):
    /// the full pin/evict/write-back machinery runs, but the backing
    /// "file" is a `Vec<u8>`, so construction cannot fail.
    pub fn in_mem(mem_cap_bytes: usize) -> Self {
        Self {
            mem_cap_bytes,
            page_bytes: DEFAULT_PAGE_BYTES,
            spill_to_disk: false,
        }
    }

    /// Overrides the page size (builder-style).
    pub fn with_page_bytes(mut self, page_bytes: usize) -> Self {
        self.page_bytes = page_bytes;
        self
    }
}

/// Which backend holds the leaf-block arena of a [`crate::DdcTree`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LeafBackend {
    /// In-memory slab (`Vec<Option<LeafBlock>>` + free list) — the PR 7
    /// arena, zero indirection, unbounded memory.
    Mem,
    /// Leaf blocks serialized onto fixed-size pages behind a buffer
    /// pool with a configurable memory cap (ROADMAP #1). Requested via
    /// config, *activated* by the `ValueCodec`-bounded constructors
    /// ([`crate::GrowableCube`] persistence/recovery paths and the
    /// explicit `enable_paging` hooks) — plain constructors without a
    /// codec bound build [`LeafBackend::Mem`] and leave the request
    /// pending.
    Paged(PagerConfig),
}

/// Full configuration of a [`crate::DdcEngine`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DdcConfig {
    /// Basic (§3) or Dynamic (§4) row-sum storage.
    pub mode: Mode,
    /// Base store for one-dimensional row-sum groups (Dynamic mode only).
    pub base: BaseStore,
    /// The space optimization of §4.4: the number `h` of tree levels
    /// elided immediately above the leaves. `0` keeps the full tree
    /// (leaf overlay boxes of size `k = 1`); `h ≥ 1` replaces the lowest
    /// `h` levels with dense leaf blocks of side `2^h`, trading up to
    /// `2^{(h+1)·d}` leaf-cell additions per query for storage within `ε`
    /// of `|A|`.
    pub elide_levels: usize,
    /// Backend for the leaf-block arena (in-memory slab or paged).
    pub leaf_backend: LeafBackend,
}

impl Default for DdcConfig {
    fn default() -> Self {
        Self {
            mode: Mode::Dynamic,
            base: BaseStore::Blocked,
            elide_levels: 0,
            leaf_backend: LeafBackend::Mem,
        }
    }
}

impl DdcConfig {
    /// The paper's §4 structure with defaults (blocked B^c base, no
    /// elision). [`BaseStore::Bc`] keeps the pointer-based original for
    /// comparison runs.
    pub fn dynamic() -> Self {
        Self::default()
    }

    /// The Basic Dynamic Data Cube of §3.
    pub fn basic() -> Self {
        Self {
            mode: Mode::Basic,
            ..Self::default()
        }
    }

    /// A sparse-friendly dynamic configuration (lazy base stores).
    pub fn sparse() -> Self {
        Self {
            base: BaseStore::SparseSeg,
            ..Self::default()
        }
    }

    /// Sets the §4.4 level-elision parameter `h`.
    pub fn with_elision(mut self, h: usize) -> Self {
        self.elide_levels = h;
        self
    }

    /// Sets the base store.
    pub fn with_base(mut self, base: BaseStore) -> Self {
        self.base = base;
        self
    }

    /// Requests the paged leaf-block backend (see [`LeafBackend::Paged`]
    /// for when the request takes effect).
    pub fn with_paged_leaves(mut self, pager: PagerConfig) -> Self {
        self.leaf_backend = LeafBackend::Paged(pager);
        self
    }

    /// Side of the dense leaf blocks implied by `elide_levels`: `2^{h+1}`.
    ///
    /// With `h = 0` the blocks have side 2 and hold exactly the cells the
    /// paper's leaf-level (`k = 1`, subtotal-only) overlay boxes would —
    /// the same data stored flat. Each additional elided level doubles
    /// the block side, replacing the `k = 2 … 2^h` box levels (§4.4).
    pub fn leaf_block_side(&self) -> usize {
        1usize << (self.elide_levels + 1)
    }
}

/// Configuration of the write-ahead log reader (see [`crate::wal`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WalConfig {
    /// Verify the per-record CRC32 during replay. Disabling this is a
    /// fault-injection hook for the crash harness (it turns silent
    /// corruption into observable divergence); production always leaves
    /// it on.
    pub verify_checksums: bool,
    /// Upper bound on a single record's payload, in bytes. A frame
    /// declaring more than this is treated as corruption rather than an
    /// allocation request — torn length fields must not OOM recovery.
    pub max_record_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            verify_checksums: true,
            max_record_bytes: 1 << 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_btree::DEFAULT_FANOUT;

    #[test]
    fn wal_defaults_verify() {
        let w = WalConfig::default();
        assert!(w.verify_checksums);
        assert!(w.max_record_bytes >= 1 << 20);
    }

    #[test]
    fn defaults_are_the_paper_structure() {
        let c = DdcConfig::default();
        assert_eq!(c.mode, Mode::Dynamic);
        // The paper's B^c base case, in its implicit blocked layout.
        assert_eq!(c.base, BaseStore::Blocked);
        assert_eq!(c.elide_levels, 0);
        assert_eq!(c.leaf_block_side(), 2);
        // The pointer-based original stays selectable.
        let bc = DdcConfig::dynamic().with_base(BaseStore::Bc {
            fanout: DEFAULT_FANOUT,
        });
        assert_eq!(
            bc.base,
            BaseStore::Bc {
                fanout: DEFAULT_FANOUT
            }
        );
    }

    #[test]
    fn builders() {
        let c = DdcConfig::basic().with_elision(2);
        assert_eq!(c.mode, Mode::Basic);
        assert_eq!(c.leaf_block_side(), 8);
        let s = DdcConfig::sparse().with_base(BaseStore::Fenwick);
        assert_eq!(s.base, BaseStore::Fenwick);
    }
}
