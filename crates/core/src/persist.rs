//! Binary persistence for data cubes.
//!
//! Cubes snapshot to a compact sparse format — only populated cells are
//! written — so a mostly-empty star catalog (§5) serializes in space
//! proportional to its data, matching the in-memory story. The format is
//! deliberately simple and versioned:
//!
//! ```text
//! magic "DDC1" | u8 kind (0 = fixed-shape, 1 = growable)
//! u32 d | d × u64 shape (kind 0)  or  d × i64 origin (kind 1)
//! u64 entry count | entries: d × (u64 | i64) coords + value bytes
//! ```
//!
//! Measure values serialize through [`ValueCodec`], implemented for the
//! stock groups (`i64`, `f64`, pairs).

use crate::sync::{Arc, OnceLock};
use std::io::{self, Read, Write};

use ddc_array::{AbelianGroup, Pair, RangeSumEngine, Shape};

use crate::config::DdcConfig;
use crate::engine::DdcEngine;
use crate::growth::GrowableCube;
use crate::obs;
use crate::vfs::{read_stable, Vfs};

const MAGIC: &[u8; 4] = b"DDC1";

/// Snapshot-path observability handles (save/load latency and volume),
/// cached off the registry lock.
struct PersistObs {
    save_ns: Arc<obs::Histogram>,
    load_ns: Arc<obs::Histogram>,
    save_bytes: Arc<obs::Counter>,
}

fn persist_obs() -> &'static PersistObs {
    static OBS: OnceLock<PersistObs> = OnceLock::new();
    OBS.get_or_init(|| PersistObs {
        save_ns: obs::histogram("persist.save"),
        load_ns: obs::histogram("persist.load"),
        save_bytes: obs::counter("persist.save.bytes"),
    })
}

/// Fixed-width binary encoding of a measure value.
pub trait ValueCodec: Sized {
    /// Encoded size in bytes.
    const WIDTH: usize;

    /// Writes the value.
    fn encode(&self, out: &mut impl Write) -> io::Result<()>;

    /// Reads one value.
    fn decode(input: &mut impl Read) -> io::Result<Self>;
}

impl ValueCodec for i64 {
    const WIDTH: usize = 8;

    fn encode(&self, out: &mut impl Write) -> io::Result<()> {
        out.write_all(&self.to_le_bytes())
    }

    fn decode(input: &mut impl Read) -> io::Result<Self> {
        let mut b = [0u8; 8];
        input.read_exact(&mut b)?;
        Ok(i64::from_le_bytes(b))
    }
}

impl ValueCodec for f64 {
    const WIDTH: usize = 8;

    fn encode(&self, out: &mut impl Write) -> io::Result<()> {
        out.write_all(&self.to_le_bytes())
    }

    fn decode(input: &mut impl Read) -> io::Result<Self> {
        let mut b = [0u8; 8];
        input.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

impl<A: ValueCodec, B: ValueCodec> ValueCodec for Pair<A, B> {
    const WIDTH: usize = A::WIDTH + B::WIDTH;

    fn encode(&self, out: &mut impl Write) -> io::Result<()> {
        self.a.encode(out)?;
        self.b.encode(out)
    }

    fn decode(input: &mut impl Read) -> io::Result<Self> {
        Ok(Pair {
            a: A::decode(input)?,
            b: B::decode(input)?,
        })
    }
}

fn write_u32(out: &mut impl Write, v: u32) -> io::Result<()> {
    out.write_all(&v.to_le_bytes())
}

fn write_u64(out: &mut impl Write, v: u64) -> io::Result<()> {
    out.write_all(&v.to_le_bytes())
}

fn write_i64(out: &mut impl Write, v: i64) -> io::Result<()> {
    out.write_all(&v.to_le_bytes())
}

fn read_u32(input: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    input.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(input: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    input.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_i64(input: &mut impl Read) -> io::Result<i64> {
    let mut b = [0u8; 8];
    input.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Counts logical bytes as they pass through to the sink, so `save` can
/// report the exact snapshot size for fsync/verify bookkeeping.
struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> CountingWriter<W> {
    fn new(inner: W) -> Self {
        Self { inner, written: 0 }
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn read_header(input: &mut impl Read, expect_kind: u8) -> io::Result<usize> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a DDC snapshot (bad magic)"));
    }
    let mut kind = [0u8; 1];
    input.read_exact(&mut kind)?;
    if kind[0] != expect_kind {
        return Err(bad("snapshot kind mismatch (fixed vs growable)"));
    }
    let d = read_u32(input)? as usize;
    if d == 0 || d > 64 {
        return Err(bad("implausible dimensionality"));
    }
    Ok(d)
}

impl<G: AbelianGroup + ValueCodec> DdcEngine<G> {
    /// Writes a sparse snapshot of the cube through a buffered writer,
    /// flushing before return. Returns the snapshot size in bytes so
    /// callers can fsync/verify the exact durable extent.
    pub fn save(&self, out: &mut impl Write) -> io::Result<u64> {
        let site = persist_obs();
        let span = obs::timer();
        let mut w = CountingWriter::new(io::BufWriter::new(&mut *out));
        w.write_all(MAGIC)?;
        w.write_all(&[0u8])?;
        let d = self.shape().ndim();
        write_u32(&mut w, d as u32)?;
        for &n in self.shape().dims() {
            write_u64(&mut w, n as u64)?;
        }
        let entries = self.entries();
        write_u64(&mut w, entries.len() as u64)?;
        for (p, v) in &entries {
            for &c in p {
                write_u64(&mut w, c as u64)?;
            }
            v.encode(&mut w)?;
        }
        w.flush()?;
        site.save_bytes.add(w.written);
        span.observe("persist.save", &site.save_ns);
        Ok(w.written)
    }

    /// Reads a snapshot written by [`DdcEngine::save`], rebuilding under
    /// `config` (snapshots are structure-agnostic).
    pub fn load(input: &mut impl Read, config: DdcConfig) -> io::Result<Self> {
        let site = persist_obs();
        let span = obs::timer();
        let d = read_header(input, 0)?;
        let mut dims = Vec::with_capacity(d);
        for _ in 0..d {
            let n = read_u64(input)?;
            let n =
                usize::try_from(n).map_err(|_| bad("dimension extent exceeds address space"))?;
            // The engine rounds each extent up to a power of two; an extent
            // with no representable next power of two would panic the
            // constructor, so reject it as a corrupt header here.
            if n.checked_next_power_of_two().is_none() {
                return Err(bad("dimension extent exceeds address space"));
            }
            dims.push(n);
        }
        // try_new re-checks emptiness and rejects cell-count overflow, so a
        // corrupt header can't panic the allocator downstream.
        let shape = Shape::try_new(&dims)
            .map_err(|e| bad(&format!("implausible shape in snapshot header: {e}")))?;
        let count =
            usize::try_from(read_u64(input)?).map_err(|_| bad("implausible entry count"))?;
        // Entries are distinct populated cells; more entries than cells
        // means the header lies, so fail before looping over the payload.
        if count > shape.cells() {
            return Err(bad("entry count exceeds cube capacity"));
        }
        let mut engine = Self::with_config(shape.clone(), config);
        // Paging activates before replay so the rebuilt leaves land on
        // pages from the start (the bound is in scope here).
        engine.enable_paging()?;
        let mut p = vec![0usize; d];
        for _ in 0..count {
            for c in p.iter_mut() {
                *c = read_u64(input)? as usize;
            }
            if !shape.contains(&p) {
                return Err(bad("entry outside declared shape"));
            }
            let v = G::decode(input)?;
            if !v.is_zero() {
                engine.apply_delta(&p, v);
            }
        }
        span.observe("persist.load", &site.load_ns);
        Ok(engine)
    }
}

impl<G: AbelianGroup + ValueCodec> GrowableCube<G> {
    /// Writes a sparse snapshot with signed logical coordinates through a
    /// buffered writer, flushing before return. Returns the snapshot size
    /// in bytes.
    pub fn save(&self, out: &mut impl Write) -> io::Result<u64> {
        let site = persist_obs();
        let span = obs::timer();
        let mut w = CountingWriter::new(io::BufWriter::new(&mut *out));
        w.write_all(MAGIC)?;
        w.write_all(&[1u8])?;
        let d = self.ndim();
        write_u32(&mut w, d as u32)?;
        for &o in self.origin() {
            write_i64(&mut w, o)?;
        }
        let entries = self.entries();
        write_u64(&mut w, entries.len() as u64)?;
        for (p, v) in &entries {
            for &c in p {
                write_i64(&mut w, c)?;
            }
            v.encode(&mut w)?;
        }
        w.flush()?;
        site.save_bytes.add(w.written);
        span.observe("persist.save", &site.save_ns);
        Ok(w.written)
    }

    /// Reads a snapshot written by [`GrowableCube::save`].
    pub fn load(input: &mut impl Read, config: DdcConfig) -> io::Result<Self> {
        let site = persist_obs();
        let span = obs::timer();
        let d = read_header(input, 1)?;
        let mut origin = Vec::with_capacity(d);
        for _ in 0..d {
            origin.push(read_i64(input)?);
        }
        let count =
            usize::try_from(read_u64(input)?).map_err(|_| bad("implausible entry count"))?;
        let mut cube = Self::with_origin(&origin, config);
        // As in `DdcEngine::load`: page the leaves before replaying.
        cube.enable_paging()?;
        let mut p = vec![0i64; d];
        for _ in 0..count {
            for c in p.iter_mut() {
                *c = read_i64(input)?;
            }
            let v = G::decode(input)?;
            if !v.is_zero() {
                cube.add(&p, v);
            }
        }
        span.observe("persist.load", &site.load_ns);
        Ok(cube)
    }

    /// Writes a snapshot to `path` through a [`Vfs`], atomically: the
    /// bytes land in a `.tmp` sibling, get synced, and are renamed over
    /// the target, so readers never observe a partial snapshot even
    /// under injected disk faults. Returns the snapshot size in bytes.
    pub fn save_vfs<V: Vfs>(&self, vfs: &V, path: &str) -> io::Result<u64> {
        let mut image = Vec::new();
        let bytes = self.save(&mut image)?;
        vfs.write_atomic(path, &image)?;
        Ok(bytes)
    }

    /// Loads a snapshot from `path` through a [`Vfs`], re-reading until
    /// two consecutive reads agree (`attempts` bounds the total) so a
    /// transient read-back bit flip cannot corrupt the load.
    pub fn load_vfs<V: Vfs>(
        vfs: &V,
        path: &str,
        config: DdcConfig,
        attempts: u32,
    ) -> io::Result<Self> {
        let image = read_stable(vfs, path, attempts)?;
        Self::load(&mut image.as_slice(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use ddc_array::RangeSumEngine;

    #[test]
    fn engine_save_load_roundtrip() {
        let mut e = DdcEngine::<i64>::dynamic(Shape::new(&[9, 13]));
        e.apply_delta(&[0, 0], 4);
        e.apply_delta(&[8, 12], -7);
        e.apply_delta(&[4, 6], 100);
        let mut buf = Vec::new();
        e.save(&mut buf).unwrap();
        let restored = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::sparse()).unwrap();
        assert_eq!(restored.shape().dims(), &[9, 13]);
        for p in e.shape().iter_points() {
            assert_eq!(restored.cell(&p), e.cell(&p), "{p:?}");
        }
    }

    #[test]
    fn growable_save_load_roundtrip() {
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        cube.add(&[-100, 40], 6);
        cube.add(&[3_000, -2], 9);
        let mut buf = Vec::new();
        cube.save(&mut buf).unwrap();
        let restored =
            GrowableCube::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap();
        assert_eq!(restored.cell(&[-100, 40]), 6);
        assert_eq!(restored.cell(&[3_000, -2]), 9);
        assert_eq!(restored.total(), 15);
    }

    #[test]
    fn growable_save_load_roundtrip_through_vfs() {
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        cube.add(&[7, -7], 11);
        cube.add(&[0, 4], -2);
        let vfs = MemVfs::new();
        let bytes = cube.save_vfs(&vfs, "snap").unwrap();
        assert_eq!(vfs.contents("snap").unwrap().len() as u64, bytes);
        assert!(!vfs.exists("snap.tmp").unwrap(), "tmp renamed away");
        let restored =
            GrowableCube::<i64>::load_vfs(&vfs, "snap", DdcConfig::dynamic(), 4).unwrap();
        assert_eq!(restored.cell(&[7, -7]), 11);
        assert_eq!(restored.total(), 9);
    }

    #[test]
    fn pair_values_roundtrip() {
        let mut e = DdcEngine::<Pair<i64, i64>>::dynamic(Shape::new(&[4]));
        e.apply_delta(&[2], Pair::new(10, 1));
        let mut buf = Vec::new();
        e.save(&mut buf).unwrap();
        let restored =
            DdcEngine::<Pair<i64, i64>>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap();
        assert_eq!(restored.cell(&[2]), Pair::new(10, 1));
    }

    #[test]
    fn snapshot_size_tracks_population() {
        let mut e = DdcEngine::<i64>::dynamic(Shape::cube(2, 1024));
        e.apply_delta(&[5, 5], 1);
        let mut buf = Vec::new();
        e.save(&mut buf).unwrap();
        // Header + one entry, not a megacell dump.
        assert!(buf.len() < 100, "snapshot is {} bytes", buf.len());
    }

    #[test]
    fn save_truncate_load_roundtrip() {
        // save → truncate → load: bytes-written is exact, every truncation
        // errors, and only the full image loads.
        let mut e = DdcEngine::<i64>::dynamic(Shape::new(&[6, 5]));
        e.apply_delta(&[1, 2], 11);
        e.apply_delta(&[5, 4], -3);
        let mut buf = Vec::new();
        let written = e.save(&mut buf).unwrap();
        assert_eq!(written as usize, buf.len());
        assert!(DdcEngine::<i64>::load(&mut &buf[..buf.len() - 1], DdcConfig::dynamic()).is_err());
        let restored = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap();
        assert_eq!(restored.cell(&[1, 2]), 11);

        let mut cube = GrowableCube::<i64>::new(3, DdcConfig::sparse());
        cube.add(&[-1, 0, 7], 21);
        let mut buf = Vec::new();
        let written = cube.save(&mut buf).unwrap();
        assert_eq!(written as usize, buf.len());
        for cut in 0..buf.len() {
            assert!(
                GrowableCube::<i64>::load(&mut &buf[..cut], DdcConfig::sparse()).is_err(),
                "truncation at byte {cut} was accepted"
            );
        }
        let restored = GrowableCube::<i64>::load(&mut buf.as_slice(), DdcConfig::sparse()).unwrap();
        assert_eq!(restored.cell(&[-1, 0, 7]), 21);
    }

    #[test]
    fn rejects_corrupt_input() {
        let garbage = b"NOPE\x00\x00\x00\x00";
        assert!(DdcEngine::<i64>::load(&mut garbage.as_slice(), DdcConfig::dynamic()).is_err());
        // Right magic, wrong kind byte.
        let mut buf = Vec::new();
        let e = DdcEngine::<i64>::dynamic(Shape::new(&[2, 2]));
        e.save(&mut buf).unwrap();
        assert!(GrowableCube::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).is_err());
        // Truncated stream.
        let cut = &buf[..buf.len().saturating_sub(1).min(10)];
        assert!(DdcEngine::<i64>::load(&mut &cut[..], DdcConfig::dynamic()).is_err());
    }

    /// Builds a fixed-kind header: magic, kind 0, d, dims, entry count.
    fn fixed_header(dims: &[u64], count: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(0);
        buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &n in dims {
            buf.extend_from_slice(&n.to_le_bytes());
        }
        buf.extend_from_slice(&count.to_le_bytes());
        buf
    }

    #[test]
    fn rejects_malformed_headers_without_allocating() {
        // Absurd dimensionality: d = 2^31.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(0);
        buf.extend_from_slice(&(1u32 << 31).to_le_bytes());
        let err = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap_err();
        assert!(err.to_string().contains("dimensionality"), "{err}");

        // Shape whose cell count overflows usize must not reach Shape::new.
        let buf = fixed_header(&[1 << 40, 1 << 40], 0);
        let err = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap_err();
        assert!(err.to_string().contains("implausible shape"), "{err}");

        // Zero-sized dimension.
        let buf = fixed_header(&[4, 0], 0);
        let err = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap_err();
        assert!(err.to_string().contains("implausible shape"), "{err}");

        // Entry count larger than the cube has cells.
        let buf = fixed_header(&[2, 2], 5);
        let err = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap_err();
        assert!(err.to_string().contains("entry count"), "{err}");
    }

    #[test]
    fn truncation_at_every_offset_errors_cleanly() {
        let mut e = DdcEngine::<i64>::dynamic(Shape::new(&[3, 3]));
        e.apply_delta(&[0, 1], 7);
        e.apply_delta(&[2, 2], -4);
        let mut buf = Vec::new();
        e.save(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let r = DdcEngine::<i64>::load(&mut &buf[..cut], DdcConfig::dynamic());
            assert!(r.is_err(), "truncation at byte {cut} was accepted");
        }
        // And the untruncated stream still loads.
        assert!(DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).is_ok());
    }

    #[test]
    fn rejects_out_of_shape_entry() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(0);
        buf.extend_from_slice(&1u32.to_le_bytes()); // d = 1
        buf.extend_from_slice(&4u64.to_le_bytes()); // shape [4]
        buf.extend_from_slice(&1u64.to_le_bytes()); // one entry
        buf.extend_from_slice(&9u64.to_le_bytes()); // coord 9 ≥ 4
        buf.extend_from_slice(&1i64.to_le_bytes());
        assert!(DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).is_err());
    }
}
