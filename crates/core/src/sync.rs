//! Synchronization facade for `ddc-core`.
//!
//! All concurrency-bearing core code (`shard`, `concurrent`, `wal`,
//! `obs`) imports its primitives from here instead of `std::sync`
//! (enforced by `ddc-lint`). In a normal build the re-exports below
//! *are* the `std` types — the facade compiles away completely. With
//! the `ddc_model` feature the same names resolve to
//! [`ddc_model::sync`], whose objects register with the deterministic
//! scheduler when created on a modeled thread and degrade to `std`
//! behavior everywhere else.
//!
//! The [`untracked`] submodule always maps to `std`, for state that
//! must never become schedule points: observability counters and the
//! registry's internal locks (metrics never affect control flow, and
//! keeping them out of the model both shrinks the state space and keeps
//! the schedule-point sequence identical across iterations even when
//! `OnceLock` initialization order varies).

// Always-std pieces: these never need modeling.
pub use std::sync::{Arc, LockResult, OnceLock, PoisonError, TryLockError, Weak};

#[cfg(not(feature = "ddc_model"))]
pub use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "ddc_model")]
pub use ddc_model::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic integers with explicit [`Ordering`]; model-aware under
/// `ddc_model`.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(feature = "ddc_model"))]
    pub use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize};

    #[cfg(feature = "ddc_model")]
    pub use ddc_model::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize};
}

/// Thread spawn/join; model-aware under `ddc_model`. `std::thread`
/// helpers that never block on other modeled threads (`scope` for
/// fork-join parallel reads, `sleep`, …) are used directly from `std`.
pub mod thread {
    #[cfg(not(feature = "ddc_model"))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(feature = "ddc_model")]
    pub use ddc_model::sync::thread::{spawn, yield_now, JoinHandle};
}

/// Always-`std` primitives for bookkeeping that must stay invisible to
/// the model checker (see module docs).
pub mod untracked {
    pub use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::{Mutex, MutexGuard, RwLock};
}
