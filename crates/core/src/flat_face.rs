//! Row-sum groups stored directly in flat arrays — the Basic DDC (§3).
//!
//! In the Basic Dynamic Data Cube every overlay box keeps its row-sum
//! group `j` as a `(d−1)`-dimensional array of *cumulative* values, "the
//! same internal structure as array `P`" (§4.2). A query reads a single
//! cell; an update must add the difference to every cumulative value whose
//! region contains the changed cell — the Figure 13 dependency cascade
//! that makes Basic-DDC updates `O(n^{d-1})` (§3.3) and motivates §4.

use ddc_array::{AbelianGroup, NdArray, OpCounter, Region, Shape};

/// A cumulative `(d−1)`-dimensional row-sum group with direct storage.
#[derive(Clone, Debug)]
pub(crate) struct FlatFace<G: AbelianGroup> {
    /// `cum[c] = Σ_{c' ≤ c} raw[c']` over the face coordinates.
    cum: NdArray<G>,
}

impl<G: AbelianGroup> FlatFace<G> {
    /// An all-zero face of the given shape.
    pub(crate) fn zeroed(shape: Shape) -> Self {
        Self {
            cum: NdArray::zeroed(shape),
        }
    }

    /// Cumulative row-sum value at `idx` — one read (§3 query path).
    pub(crate) fn prefix(&self, idx: &[usize], counter: &OpCounter) -> G {
        counter.read(1);
        self.cum.get(idx)
    }

    /// Adds `delta` to the raw slab at `idx`: every cumulative cell
    /// dominating `idx` absorbs the difference (the §3.3 cascade).
    pub(crate) fn add(&mut self, idx: &[usize], delta: G, counter: &OpCounter) {
        let hi: Vec<usize> = self.cum.shape().dims().iter().map(|&n| n - 1).collect();
        let dominated = Region::new(idx, &hi);
        let mut buf = vec![0usize; idx.len()];
        let mut iter = dominated.iter_points();
        let mut written = 0u64;
        while iter.next_into(&mut buf) {
            self.cum.add_assign(&buf, delta);
            written += 1;
        }
        counter.write(written);
    }

    /// Bulk-fills from a raw (non-cumulative) array by one running-sum
    /// sweep per axis.
    pub(crate) fn fill_cumulative(&mut self, raw: &NdArray<G>) {
        assert_eq!(self.cum.shape(), raw.shape());
        self.cum = raw.clone();
        let shape = self.cum.shape().clone();
        let d = shape.ndim();
        let mut point = vec![0usize; d];
        for axis in 0..d {
            let mut iter = shape.iter_points();
            while iter.next_into(&mut point) {
                if point[axis] == 0 {
                    continue;
                }
                point[axis] -= 1;
                let prev = self.cum.get_linear(shape.linear(&point));
                point[axis] += 1;
                let idx = shape.linear(&point);
                self.cum.set_linear(idx, self.cum.get_linear(idx).add(prev));
            }
        }
    }

    pub(crate) fn heap_bytes(&self) -> usize {
        self.cum.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimensional_face_cascade() {
        // A 2-D cube's row-sum group: Figure 13's X_1..X_6 dependencies.
        let c = OpCounter::new();
        let mut f = FlatFace::<i64>::zeroed(Shape::new(&[6]));
        f.add(&[0], 14, &c); // row 1 sum becomes 14 → all X values shift
        assert_eq!(c.snapshot().writes, 6);
        for i in 0..6 {
            assert_eq!(f.prefix(&[i], &c), 14);
        }
        f.add(&[2], 10, &c);
        assert_eq!(f.prefix(&[1], &c), 14);
        assert_eq!(f.prefix(&[2], &c), 24);
        assert_eq!(f.prefix(&[5], &c), 24);
    }

    #[test]
    fn two_dimensional_face_matches_prefix_sums() {
        let c = OpCounter::new();
        let mut f = FlatFace::<i64>::zeroed(Shape::new(&[4, 4]));
        let mut raw = NdArray::<i64>::zeroed(Shape::new(&[4, 4]));
        let updates = [
            ([0usize, 0usize], 5i64),
            ([3, 3], 2),
            ([1, 2], -7),
            ([0, 3], 4),
        ];
        for (p, v) in updates {
            f.add(&p, v, &c);
            raw.add_assign(&p, v);
        }
        for point in raw.shape().iter_points() {
            assert_eq!(f.prefix(&point, &c), raw.prefix_sum(&point), "{point:?}");
        }
    }

    #[test]
    fn update_cost_is_dominated_region_size() {
        let c = OpCounter::new();
        let mut f = FlatFace::<i64>::zeroed(Shape::new(&[8, 8]));
        f.add(&[0, 0], 1, &c);
        assert_eq!(c.snapshot().writes, 64); // worst case rewrites the face
        c.reset();
        f.add(&[7, 7], 1, &c);
        assert_eq!(c.snapshot().writes, 1); // best case touches one value
    }
}
