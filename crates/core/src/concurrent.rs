//! A shared, thread-safe data cube handle.
//!
//! The paper's deployment picture is many analysts reading one cube while
//! a feed applies updates (§1's interactive commerce). Engines here are
//! already `Sync` for reads; [`SharedCube`] adds the write coordination:
//! an `Arc<RwLock<…>>` with a read-mostly discipline — queries take the
//! shared lock (concurrent), updates the exclusive lock (brief, because
//! DDC updates are `O(log^d n)`).
//!
//! The interesting property versus a locked *prefix-sum* cube is not the
//! lock, it is the hold time: an exclusive `O(n^d)` cascade starves
//! readers for the whole rewrite, while the DDC's polylog updates keep
//! the write lock in the microsecond range (see the
//! `shared_cube_throughput` test).

use crate::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use ddc_array::{AbelianGroup, Region, Shape};

use crate::config::DdcConfig;
use crate::engine::DdcEngine;

use ddc_array::RangeSumEngine as _;

/// Cloneable handle to one cube shared across threads.
#[derive(Debug)]
pub struct SharedCube<G: AbelianGroup> {
    inner: Arc<RwLock<DdcEngine<G>>>,
}

impl<G: AbelianGroup> Clone for SharedCube<G> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<G: AbelianGroup> SharedCube<G> {
    /// An all-zero shared cube.
    pub fn new(shape: Shape, config: DdcConfig) -> Self {
        Self {
            inner: Arc::new(RwLock::new(DdcEngine::with_config(shape, config))),
        }
    }

    /// Wraps an existing engine.
    pub fn from_engine(engine: DdcEngine<G>) -> Self {
        Self {
            inner: Arc::new(RwLock::new(engine)),
        }
    }

    /// Poison-tolerant read lock: a panicked writer left the engine in
    /// a state `catch_unwind` already saw; readers may still query it
    /// (the shard layer's quarantine pattern — see `core::shard`).
    fn read_lock(&self) -> RwLockReadGuard<'_, DdcEngine<G>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Poison-tolerant write lock (same rationale as [`Self::read_lock`]).
    fn write_lock(&self) -> RwLockWriteGuard<'_, DdcEngine<G>> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Range sum under the shared (read) lock.
    pub fn range_sum(&self, region: &Region) -> G {
        self.read_lock().range_sum(region)
    }

    /// Prefix sum under the shared (read) lock.
    pub fn prefix_sum(&self, point: &[usize]) -> G {
        self.read_lock().prefix_sum(point)
    }

    /// One cell under the shared (read) lock.
    pub fn cell(&self, point: &[usize]) -> G {
        self.read_lock().cell(point)
    }

    /// Applies one delta under the exclusive (write) lock.
    pub fn apply_delta(&self, point: &[usize], delta: G) {
        self.write_lock().apply_delta(point, delta);
    }

    /// Applies a batch under one exclusive lock acquisition.
    pub fn apply_batch(&self, updates: &[(Vec<usize>, G)]) {
        self.write_lock().apply_batch(updates);
    }

    /// Snapshot of populated cells (read lock held for the walk).
    pub fn entries(&self) -> Vec<(Vec<usize>, G)> {
        self.read_lock().entries()
    }

    /// Heap bytes of the underlying structure.
    pub fn heap_bytes(&self) -> usize {
        self.read_lock().heap_bytes()
    }

    /// Runs `f` with the engine under the read lock (compound queries
    /// against one consistent version).
    pub fn with_read<R>(&self, f: impl FnOnce(&DdcEngine<G>) -> R) -> R {
        f(&self.read_lock())
    }

    /// Runs `f` with the engine under the write lock (compound updates
    /// applied atomically with respect to readers).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut DdcEngine<G>) -> R) -> R {
        f(&mut self.write_lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_and_writer_interleave_consistently() {
        let cube = SharedCube::<i64>::new(Shape::cube(2, 64), DdcConfig::dynamic());
        let writer = cube.clone();
        let full = Region::full(&Shape::cube(2, 64));
        std::thread::scope(|s| {
            // Writer: 64 deltas of +1 along the diagonal.
            let w = s.spawn(move || {
                for i in 0..64usize {
                    writer.apply_delta(&[i, i], 1);
                }
            });
            // Readers: totals must only ever be in 0..=64 and
            // monotonically consistent with *some* serial order.
            for _ in 0..4 {
                let reader = cube.clone();
                let full = full.clone();
                s.spawn(move || {
                    let mut last = 0i64;
                    for _ in 0..200 {
                        let t = reader.range_sum(&full);
                        assert!((0..=64).contains(&t), "torn read {t}");
                        assert!(t >= last, "total went backwards: {last} → {t}");
                        last = t;
                    }
                });
            }
            w.join().expect("writer");
        });
        assert_eq!(cube.range_sum(&full), 64);
    }

    #[test]
    fn compound_operations_are_atomic_to_readers() {
        let cube = SharedCube::<i64>::new(Shape::cube(1, 16), DdcConfig::dynamic());
        // Transfer-style compound write: -5 here, +5 there, atomically.
        cube.apply_delta(&[3], 10);
        let mover = cube.clone();
        std::thread::scope(|s| {
            let m = s.spawn(move || {
                for _ in 0..100 {
                    mover.with_write(|e| {
                        e.apply_delta(&[3], -5);
                        e.apply_delta(&[12], 5);
                        e.apply_delta(&[3], 5);
                        e.apply_delta(&[12], -5);
                    });
                }
            });
            let full = Region::full(&Shape::cube(1, 16));
            for _ in 0..300 {
                // Every observed total sees both sides of the transfer.
                assert_eq!(cube.range_sum(&full), 10);
            }
            m.join().expect("mover");
        });
    }

    #[test]
    fn batch_takes_one_lock() {
        let cube = SharedCube::<i64>::new(Shape::cube(2, 8), DdcConfig::dynamic());
        let updates: Vec<(Vec<usize>, i64)> = (0..8).map(|i| (vec![i, i], i as i64)).collect();
        cube.apply_batch(&updates);
        assert_eq!(cube.prefix_sum(&[7, 7]), (0..8).sum::<i64>());
        assert_eq!(cube.entries().len(), 7); // cell (0,0) holds 0
    }
}
