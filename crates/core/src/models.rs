//! Model-checker scenarios for the concurrency-critical core
//! (`feature = "ddc_model"` only).
//!
//! Each function explores one scenario under [`ddc_model::Checker`] and
//! returns its [`Report`]. The green scenarios drive the *real*
//! `core::shard` / `core::wal` code through the `core::sync` facade;
//! the two `buggy_*` fixtures are deliberately broken and exist to
//! prove the checker finds real schedule bugs (they are asserted to
//! FAIL by `tests/model_checker.rs` and the `ddc model` CLI).
//!
//! Scenario design notes:
//!
//! * Shapes and thread counts are tiny on purpose — bounded DFS pays
//!   for every extra schedule point.
//! * `parallel_queries` stays off: fork-join reads use
//!   `std::thread::scope`, which the model deliberately does not track.
//! * Assertions read through synchronized paths (locks, `Acquire`). The
//!   weak-memory model has no happens-before recovery, so a `Relaxed`
//!   load may legally observe stale values even after a join — exactly
//!   why metrics atomics are untracked (see `core::sync::untracked`).
//! * Scenario state is created *inside* the checked closure, so every
//!   object registers with the scheduler and every iteration starts
//!   from the same model state.

use ddc_array::{Region, Shape};
use ddc_model::sync::atomic::{AtomicU64, Ordering};
use ddc_model::sync::{thread, Condvar, Mutex};
use ddc_model::{Checker, CheckerConfig, Report};

use crate::config::DdcConfig;
use crate::shard::{ShardConfig, ShardedCube};
use crate::sync::Arc;
use crate::wal::SharedDurableCube;

fn shard_config() -> ShardConfig {
    ShardConfig {
        shards: 2,
        batch_capacity: 2,
        parallel_queries: false,
        queue_capacity: 4,
        max_restarts: 1,
    }
}

/// Linearizability of concurrent `try_update`s against the sequential
/// oracle: three writers race a reader; after all join and a final
/// flush, the cube total must equal exactly the acknowledged deltas —
/// nothing lost, nothing applied twice — and every in-flight read must
/// see a consistent cut (`0..=6` for six `+1` deltas).
pub fn shard_concurrent_updates(cfg: CheckerConfig) -> Report {
    Checker::new(cfg).check(|| {
        let shape = Shape::cube(1, 4);
        let full = Region::full(&shape);
        let cube = Arc::new(ShardedCube::<i64>::new(
            shape,
            DdcConfig::dynamic(),
            shard_config(),
        ));
        let writers: Vec<_> = [[0usize, 2], [1, 3], [2, 1]]
            .into_iter()
            .map(|points| {
                let c = cube.clone();
                thread::spawn(move || {
                    points
                        .into_iter()
                        .map(|p| i64::from(c.try_update(&[p], 1).is_ok()))
                        .sum::<i64>()
                })
            })
            .collect();
        // Read-through while the writers are in flight: any consistent
        // cut of six +1 deltas.
        let seen = cube.query(&full);
        assert!(
            (0..=6).contains(&seen),
            "inconsistent read-through cut: {seen}"
        );
        let acked: i64 = writers.into_iter().map(|w| w.join().expect("writer")).sum();
        cube.flush();
        let total = cube.query(&full);
        assert_eq!(total, acked, "acked {acked} deltas but cube totals {total}");
    })
}

/// Queue drain never strands an acknowledged delta: a writer enqueues
/// while a drainer races `flush()`; the final flush must surface every
/// ack in the engine, with reads through the queue staying monotone.
pub fn shard_queue_drain(cfg: CheckerConfig) -> Report {
    Checker::new(cfg).check(|| {
        let shape = Shape::cube(1, 4);
        let full = Region::full(&shape);
        let cube = Arc::new(ShardedCube::<i64>::new(
            shape,
            DdcConfig::dynamic(),
            // batch_capacity above the enqueue count: commits happen
            // only through the racing flush() and the final drain.
            ShardConfig {
                batch_capacity: 8,
                ..shard_config()
            },
        ));
        let c1 = cube.clone();
        let writer = thread::spawn(move || {
            let mut acked = 0i64;
            for p in [0usize, 3, 0, 1] {
                acked += i64::from(c1.try_update(&[p], 1).is_ok());
            }
            acked
        });
        let drainers: Vec<_> = (0..2)
            .map(|_| {
                let c = cube.clone();
                thread::spawn(move || c.flush())
            })
            .collect();
        // Reads through the live queue must never go backwards.
        let first = cube.query(&full);
        let second = cube.query(&full);
        assert!(
            second >= first,
            "read-through went backwards: {first} -> {second}"
        );
        let acked = writer.join().expect("writer");
        for d in drainers {
            d.join().expect("drainer");
        }
        cube.flush();
        assert_eq!(cube.query(&full), acked, "drain lost an acked delta");
    })
}

/// Log-then-apply: a durability acknowledgement may never be returned
/// before the WAL record is appended. Every `Ok` from `add` is
/// immediately cross-checked against the log's record count, and the
/// final cube/log state must match the sequential oracle.
pub fn wal_ack_after_append(cfg: CheckerConfig) -> Report {
    Checker::new(cfg).check(|| {
        let cube = SharedDurableCube::<i64, Vec<u8>>::new(1, DdcConfig::sparse(), Vec::new())
            .expect("create shared durable cube");
        // Each appender cross-checks the log length right after every
        // ack: an ack with no matching record is the bug this hunts.
        let appender = |points: [[i64; 1]; 2]| {
            let c = cube.clone();
            thread::spawn(move || {
                let mut acks = 0u64;
                for p in points {
                    if c.add(&p, 1).is_ok() {
                        acks += 1;
                        let (_, records) = c.wal_stats();
                        assert!(
                            records >= acks,
                            "durability ack before WAL append: {records} records < {acks} acks"
                        );
                    }
                }
                acks
            })
        };
        let t1 = appender([[0], [1]]);
        let t2 = appender([[2], [3]]);
        let mut acks = 0u64;
        if cube.add(&[4], 1).is_ok() {
            acks += 1;
            let (_, records) = cube.wal_stats();
            assert!(
                records >= acks,
                "durability ack before WAL append: {records} records < {acks} acks"
            );
        }
        let acks = acks + t1.join().expect("appender 1") + t2.join().expect("appender 2");
        let (_, records) = cube.wal_stats();
        assert_eq!(records, acks, "log records diverge from acks");
        assert_eq!(cube.total(), acks as i64, "cube diverges from acked deltas");
    })
}

/// Known-buggy fixture #1: two threads increment a counter with a
/// load/store pair instead of an RMW. The checker must find the lost
/// update (this fixture is asserted to FAIL).
pub fn buggy_counter(cfg: CheckerConfig) -> Report {
    Checker::new(cfg).check(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().expect("incrementer");
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    })
}

/// Known-buggy fixture #2: unbuffered handoff that checks emptiness
/// *outside* the lock it waits on, so the producer's notify can land
/// between check and wait — a lost wakeup the checker must report as a
/// deadlock (this fixture is asserted to FAIL).
pub fn buggy_handoff(cfg: CheckerConfig) -> Report {
    Checker::new(cfg).check(|| {
        let slot: Arc<(Mutex<Option<u64>>, Condvar)> = Arc::new((Mutex::new(None), Condvar::new()));
        let s2 = slot.clone();
        let producer = thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock().expect("slot lock") = Some(7);
            cv.notify_one();
        });
        let (m, cv) = &*slot;
        let empty = m.lock().expect("slot lock").is_none();
        if empty {
            let guard = m.lock().expect("slot lock");
            let guard = cv.wait(guard).expect("slot lock");
            assert_eq!(*guard, Some(7));
        }
        producer.join().expect("producer");
    })
}

/// Every scenario with its name, in a stable order: the green ported
/// models first, then the two must-fail fixtures.
pub fn all_green(cfg: CheckerConfig) -> Vec<(&'static str, Report)> {
    vec![
        (
            "shard_concurrent_updates",
            shard_concurrent_updates(cfg.clone()),
        ),
        ("shard_queue_drain", shard_queue_drain(cfg.clone())),
        ("wal_ack_after_append", wal_ack_after_append(cfg)),
    ]
}

/// The two seeded-buggy fixtures (expected to fail).
pub fn all_buggy(cfg: CheckerConfig) -> Vec<(&'static str, Report)> {
    vec![
        ("buggy_counter", buggy_counter(cfg.clone())),
        ("buggy_handoff", buggy_handoff(cfg)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small budget for unit-level smoke runs; the full-budget sweep
    /// lives in `tests/model_checker.rs` and the `ddc model` CLI.
    fn smoke_cfg() -> CheckerConfig {
        CheckerConfig {
            max_iterations: 2_000,
            ..CheckerConfig::default()
        }
    }

    #[test]
    fn green_scenarios_pass_smoke() {
        for (name, report) in all_green(smoke_cfg()) {
            assert!(
                report.passed(),
                "{name} failed:\n{}",
                report
                    .failure
                    .as_ref()
                    .map(ToString::to_string)
                    .unwrap_or_default()
            );
            assert!(report.iterations > 0, "{name} explored nothing");
        }
    }

    #[test]
    fn buggy_fixtures_are_detected() {
        for (name, report) in all_buggy(smoke_cfg()) {
            let failure = report.failure.as_ref();
            assert!(failure.is_some(), "{name} was not detected");
            let failure = failure.expect("checked above");
            assert!(
                !failure.trace.is_empty(),
                "{name} failure has no replayable trace"
            );
        }
    }
}
