//! Dynamic growth of the data cube in any direction (§5).
//!
//! "New star systems … can be found in any direction relative to existing
//! systems, therefore the data cube must be able to grow in any direction
//! relative to its existing cells. The direction of data cube growth
//! should be determined by the data, and not a priori."
//!
//! [`GrowableCube`] accepts cells at arbitrary *signed* logical
//! coordinates. When a cell lands outside the covered box, the cube
//! doubles: the old root becomes one child of a fresh root
//! ([`DdcTree::grow`]) and a [`CoordMap`] origin shift records growth
//! toward negative coordinates. Growth cost is proportional to the
//! populated cells (the new root-level overlay box is rebuilt from them),
//! never to the size of the empty space — the §5 contrast with the prefix
//! sum methods, which would materialize every cell of the enlarged
//! bounding box.

use crate::sync::{Arc, OnceLock};

use ddc_array::{AbelianGroup, CoordMap, GrowthDirection, OpCounter, Region};

use crate::config::DdcConfig;
use crate::obs;
use crate::tree::DdcTree;

struct GrowthObs {
    grow_ns: Arc<obs::Histogram>,
    doublings: Arc<obs::Counter>,
}

fn growth_obs() -> &'static GrowthObs {
    static OBS: OnceLock<GrowthObs> = OnceLock::new();
    OBS.get_or_init(|| GrowthObs {
        grow_ns: obs::histogram("growth.grow"),
        doublings: obs::counter("growth.doublings"),
    })
}

/// A data cube over signed logical coordinates that grows on demand.
///
/// # Examples
///
/// ```
/// use ddc_core::{DdcConfig, GrowableCube};
///
/// // Stars are discovered in any direction (§5): negative coordinates
/// // grow the cube too, at cost proportional to the populated cells.
/// let mut sky = GrowableCube::<i64>::new(2, DdcConfig::sparse());
/// sky.add(&[12, -7], 1);
/// sky.add(&[-40_000, 3], 1);
/// sky.add(&[5, 90_000], 1);
///
/// assert_eq!(sky.total(), 3);
/// assert_eq!(sky.range_sum(&[-50_000, -10], &[20, 10]), 2);
/// assert_eq!(sky.cell(&[-40_000, 3]), 1);
/// ```
#[derive(Debug)]
pub struct GrowableCube<G: AbelianGroup> {
    map: CoordMap,
    tree: DdcTree<G>,
}

impl<G: AbelianGroup> GrowableCube<G> {
    /// An empty `d`-dimensional cube anchored at the logical origin with a
    /// small initial extent.
    pub fn new(d: usize, config: DdcConfig) -> Self {
        Self::with_origin(&vec![0; d], config)
    }

    /// An empty cube whose initial box starts at `origin`.
    pub fn with_origin(origin: &[i64], config: DdcConfig) -> Self {
        let d = origin.len();
        let side = config.leaf_block_side().max(2);
        let map = CoordMap::new(origin.to_vec(), vec![side; d]);
        let tree = DdcTree::new(d, side, config);
        Self { map, tree }
    }

    /// Dimensionality of the cube.
    pub fn ndim(&self) -> usize {
        self.map.ndim()
    }

    /// The logical coordinate of the covered box's low corner.
    pub fn origin(&self) -> &[i64] {
        self.map.origin()
    }

    /// Covered extent per dimension (grows over time).
    pub fn extent(&self) -> &[usize] {
        self.map.extent()
    }

    /// Number of growth doublings performed so far.
    pub fn side(&self) -> usize {
        self.tree.side()
    }

    /// Grows until `logical` is covered, then returns its internal index.
    fn cover(&mut self, logical: &[i64]) -> Vec<usize> {
        // The common case — already covered — pays no timing overhead.
        if let Some(internal) = self.map.to_internal(logical) {
            return internal;
        }
        let site = growth_obs();
        let span = obs::timer();
        loop {
            if let Some(internal) = self.map.to_internal(logical) {
                span.observe("growth.grow", &site.grow_ns);
                return internal;
            }
            // One doubling step: dimensions that need to reach below the
            // origin grow low; everything else grows high.
            let needs = self.map.growth_needed(logical);
            let low: Vec<bool> = needs
                .iter()
                .map(|n| matches!(n, Some(GrowthDirection::Low)))
                .collect();
            self.tree.grow(&low);
            site.doublings.inc();
            for (axis, &l) in low.iter().enumerate() {
                self.map.grow(
                    axis,
                    if l {
                        GrowthDirection::Low
                    } else {
                        GrowthDirection::High
                    },
                );
            }
        }
    }

    /// Adds `delta` to the cell at signed `logical` coordinates, growing
    /// the cube as needed.
    pub fn add(&mut self, logical: &[i64], delta: G) {
        if delta.is_zero() {
            return;
        }
        let internal = self.cover(logical);
        self.tree.apply_delta(&internal, delta);
    }

    /// Sets the cell at `logical`, returning its previous value.
    pub fn set(&mut self, logical: &[i64], value: G) -> G {
        let internal = self.cover(logical);
        let old = self.tree.cell(&internal);
        let delta = value.sub(old);
        if !delta.is_zero() {
            self.tree.apply_delta(&internal, delta);
        }
        old
    }

    /// Reads the cell at `logical` (zero outside the covered box).
    pub fn cell(&self, logical: &[i64]) -> G {
        match self.map.to_internal(logical) {
            Some(internal) => self.tree.cell(&internal),
            None => G::ZERO,
        }
    }

    /// Range sum over the closed logical box `[lo, hi]`; parts outside the
    /// covered box contribute zero.
    pub fn range_sum(&self, lo: &[i64], hi: &[i64]) -> G {
        assert_eq!(lo.len(), self.ndim());
        assert_eq!(hi.len(), self.ndim());
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "inverted bounds {lo:?}..{hi:?}"
        );
        // Clip to the covered box.
        let mut clo = Vec::with_capacity(self.ndim());
        let mut chi = Vec::with_capacity(self.ndim());
        for axis in 0..self.ndim() {
            let o = self.map.origin()[axis];
            let e = self.map.extent()[axis] as i64;
            let l = lo[axis].max(o);
            let h = hi[axis].min(o + e - 1);
            if l > h {
                return G::ZERO;
            }
            clo.push((l - o) as usize);
            chi.push((h - o) as usize);
        }
        let region = Region::new(&clo, &chi);
        let mut acc = G::ZERO;
        for term in region.prefix_decomposition() {
            let v = self.tree.prefix_sum(&term.corner);
            acc = if term.sign > 0 {
                acc.add(v)
            } else {
                acc.sub(v)
            };
        }
        acc
    }

    /// Sum of the whole cube.
    pub fn total(&self) -> G {
        self.tree.total()
    }

    /// Number of non-zero cells.
    pub fn populated_cells(&self) -> usize {
        self.tree.populated_cells()
    }

    /// Invokes `f` for every non-zero cell with *logical* coordinates.
    pub fn for_each_nonzero(&self, mut f: impl FnMut(&[i64], G)) {
        let map = &self.map;
        self.tree.for_each_nonzero(&mut |p, v| {
            let logical = map.to_logical(p);
            f(&logical, v);
        });
    }

    /// Reclaims storage from cancelled subtrees; see
    /// [`crate::DdcTree::prune`].
    pub fn prune(&mut self) -> usize {
        self.tree.prune()
    }

    /// Extracts a sparse snapshot of every non-zero cell in logical
    /// coordinates; restore with [`GrowableCube::from_entries`].
    pub fn entries(&self) -> Vec<(Vec<i64>, G)> {
        let mut out = Vec::new();
        self.for_each_nonzero(|p, v| out.push((p.to_vec(), v)));
        out
    }

    /// Rebuilds a cube from a sparse snapshot, growing as needed.
    pub fn from_entries(d: usize, config: DdcConfig, entries: &[(Vec<i64>, G)]) -> Self {
        let mut cube = Self::new(d, config);
        for (p, v) in entries {
            cube.add(p, *v);
        }
        cube
    }

    /// Approximate heap bytes held by the cube.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tree.heap_bytes()
    }

    /// Activates the paged leaf backend if the config requests it; see
    /// [`DdcTree::enable_paging`]. Growth re-roots the tree in place, so
    /// a paged arena survives any number of doublings.
    pub fn enable_paging(&mut self) -> std::io::Result<bool>
    where
        G: crate::ValueCodec,
    {
        self.tree.enable_paging()
    }

    /// True once the leaf arena is paged.
    pub fn is_paged(&self) -> bool {
        self.tree.is_paged()
    }

    /// Buffer-pool counters of the paged arena (`None` on the slab).
    pub fn pool_stats(&self) -> Option<crate::pager::PoolStats> {
        self.tree.pool_stats()
    }

    /// WAL barrier of the paged arena (`None` on the slab); see
    /// [`DdcTree::pager_barrier`].
    pub fn pager_barrier(&self) -> Option<crate::pager::WalBarrier> {
        self.tree.pager_barrier()
    }

    /// Operation counter of the underlying tree.
    pub fn counter(&self) -> &OpCounter {
        self.tree.counter()
    }

    /// Validates structural invariants (diagnostics).
    pub fn check_invariants(&self) -> G {
        self.tree.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn reference_sum(cells: &HashMap<Vec<i64>, i64>, lo: &[i64], hi: &[i64]) -> i64 {
        cells
            .iter()
            .filter(|(p, _)| {
                p.iter()
                    .zip(lo.iter().zip(hi.iter()))
                    .all(|(&c, (&l, &h))| l <= c && c <= h)
            })
            .map(|(_, &v)| v)
            .sum()
    }

    #[test]
    fn grows_in_every_direction() {
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        let mut reference = HashMap::new();
        let points: [([i64; 2], i64); 6] = [
            ([0, 0], 5),
            ([10, 10], 3),
            ([-7, 2], 11),
            ([4, -20], -2),
            ([-30, -30], 7),
            ([100, -5], 1),
        ];
        for (p, v) in points {
            cube.add(&p, v);
            *reference.entry(p.to_vec()).or_insert(0) += v;
        }
        assert_eq!(cube.total(), 25);
        assert_eq!(cube.populated_cells(), 6);
        assert_eq!(cube.range_sum(&[-100, -100], &[200, 200]), 25);
        assert_eq!(
            cube.range_sum(&[-10, -25], &[5, 5]),
            reference_sum(&reference, &[-10, -25], &[5, 5])
        );
        assert_eq!(cube.cell(&[-7, 2]), 11);
        assert_eq!(cube.cell(&[999, 999]), 0);
        cube.check_invariants();
    }

    #[test]
    fn set_semantics_across_growth() {
        let mut cube = GrowableCube::<i64>::new(1, DdcConfig::dynamic());
        assert_eq!(cube.set(&[0], 4), 0);
        assert_eq!(cube.set(&[-100], 9), 0);
        assert_eq!(cube.set(&[0], 6), 4);
        assert_eq!(cube.total(), 15);
        assert_eq!(cube.range_sum(&[-100,], &[-100]), 9);
    }

    #[test]
    fn growth_is_data_proportional_in_memory() {
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        cube.add(&[0, 0], 1);
        cube.add(&[1 << 16, -(1 << 16)], 1); // forces ~17 doublings
        assert!(cube.side() >= 1 << 17);
        let bytes = cube.heap_bytes();
        // A dense bounding box would hold ≥ 2^34 cells; we stay tiny.
        assert!(bytes < 2_000_000, "used {bytes} bytes");
        assert_eq!(cube.total(), 2);
        cube.check_invariants();
    }

    #[test]
    fn logical_enumeration() {
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
        cube.add(&[-3, 5], 2);
        cube.add(&[4, -1], 3);
        let mut seen = Vec::new();
        cube.for_each_nonzero(|p, v| seen.push((p.to_vec(), v)));
        seen.sort();
        assert_eq!(seen, vec![(vec![-3, 5], 2), (vec![4, -1], 3)]);
    }

    #[test]
    fn range_sum_outside_coverage_is_zero() {
        let cube = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
        assert_eq!(cube.range_sum(&[50, 50], &[60, 60]), 0);
        assert_eq!(cube.range_sum(&[-60, -60], &[-50, -50]), 0);
    }

    #[test]
    fn custom_origin() {
        let mut cube = GrowableCube::<i64>::with_origin(&[1000, -1000], DdcConfig::dynamic());
        cube.add(&[1000, -1000], 42);
        assert_eq!(cube.cell(&[1000, -1000]), 42);
        assert_eq!(cube.range_sum(&[999, -1001], &[1001, -999]), 42);
    }

    #[test]
    fn updates_after_growth_remain_correct() {
        let mut cube = GrowableCube::<i64>::new(3, DdcConfig::dynamic());
        cube.add(&[0, 0, 0], 1);
        cube.add(&[-5, 9, -2], 10);
        cube.add(&[0, 0, 0], 4); // revisit original cell post-growth
        assert_eq!(cube.cell(&[0, 0, 0]), 5);
        assert_eq!(cube.total(), 15);
        cube.check_invariants();
    }
}
