//! The primary tree of the Dynamic Data Cube (§3.2, §4.2).
//!
//! A [`DdcTree`] recursively bisects the (power-of-two) data space. Each
//! node holds `2^d` **overlay boxes** of side `k` (half the node's side);
//! a box stores the **subtotal** of its region and `d` row-sum groups,
//! each `(d−1)`-dimensional (§3.1), held in a [`Secondary`] structure.
//!
//! Queries ([`DdcTree::prefix_sum`]) implement Figure 10: at each node,
//! every overlay box contributes at most one value —
//!
//! * nothing, if the target cell precedes the box in some dimension;
//! * its subtotal, if the target region covers the box entirely;
//! * one row-sum group value, if the target region cuts the box; or
//! * a recursive descent, for the single box that covers the target cell.
//!
//! Updates ([`DdcTree::apply_delta`]) implement Figure 12 bottom-up with
//! the difference value: one box per level absorbs the delta into its
//! subtotal and its `d` row-sum groups.
//!
//! Additional paper features carried by this type:
//!
//! * **Level elision (§4.4)** — the `h` lowest levels are replaced by
//!   dense [`LeafBlock`]s of side `2^{h+1}`, shrinking storage toward
//!   `|A|` at the cost of summing at most `2^{(h+1)d}` leaf cells per
//!   query.
//! * **Sparsity (§5)** — nodes, boxes, and secondary structures
//!   materialize lazily; an all-zero region costs nothing.
//! * **Growth (§5)** — [`DdcTree::grow`] doubles the space in one step by
//!   re-rooting: the old root becomes one child of a fresh root, and only
//!   the new root-level overlay box is rebuilt (cost proportional to the
//!   populated cells, not the space).

use ddc_array::{AbelianGroup, NdArray, OpCounter, OpSnapshot, Region, Shape};

use crate::config::DdcConfig;
use crate::secondary::Secondary;

/// One overlay box: subtotal plus `d` row-sum groups (§3.1).
#[derive(Debug)]
pub(crate) struct OverlayBox<G: AbelianGroup> {
    /// Sum of every cell of `A` covered by the box.
    subtotal: G,
    /// Row-sum group per dimension; group `j` is indexed by the box-local
    /// coordinates of the other `d − 1` dimensions and accumulates whole
    /// rows along dimension `j`.
    faces: Box<[Secondary<G>]>,
}

impl<G: AbelianGroup> OverlayBox<G> {
    fn new(d: usize) -> Self {
        let faces: Vec<Secondary<G>> = (0..d).map(|_| Secondary::Empty).collect();
        Self {
            subtotal: G::ZERO,
            faces: faces.into_boxed_slice(),
        }
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.faces.len() * std::mem::size_of::<Secondary<G>>()
            + self.faces.iter().map(Secondary::heap_bytes).sum::<usize>()
    }
}

/// Dense block of raw `A` cells standing in for the elided subtree
/// (§4.4); with `h = 0` blocks have side 2 and hold exactly the cells the
/// paper's leaf-level (`k = 1`) overlay boxes would.
#[derive(Debug)]
pub(crate) struct LeafBlock<G: AbelianGroup> {
    cells: NdArray<G>,
}

impl<G: AbelianGroup> LeafBlock<G> {
    fn zeroed(d: usize, side: usize) -> Self {
        Self {
            cells: NdArray::zeroed(Shape::cube(d, side)),
        }
    }

    /// Sum of the block-local prefix region ending at `rel` — the "sum the
    /// appropriate leaf cells" step of §4.4.
    fn prefix(&self, rel: &[usize], counter: &OpCounter) -> G {
        let region = Region::prefix(rel);
        counter.read(region.cells() as u64);
        self.cells.region_sum(&region)
    }

    fn total(&self) -> G {
        self.cells.total()
    }
}

/// A child slot of an overlay box.
#[derive(Debug, Default)]
pub(crate) enum Child<G: AbelianGroup> {
    /// Empty region — no storage (§5 sparsity).
    #[default]
    Empty,
    /// Interior subtree (box side > leaf-block side).
    Node(Box<Node<G>>),
    /// Dense raw cells (box side == leaf-block side).
    Leaf(LeafBlock<G>),
}

/// An interior tree node: `2^d` overlay boxes and their children.
#[derive(Debug)]
pub(crate) struct Node<G: AbelianGroup> {
    boxes: Box<[Option<OverlayBox<G>>]>,
    children: Box<[Child<G>]>,
}

impl<G: AbelianGroup> Node<G> {
    fn new(d: usize) -> Self {
        let n = 1usize << d;
        let boxes: Vec<Option<OverlayBox<G>>> = (0..n).map(|_| None).collect();
        let children: Vec<Child<G>> = (0..n).map(|_| Child::Empty).collect();
        Self {
            boxes: boxes.into_boxed_slice(),
            children: children.into_boxed_slice(),
        }
    }

    fn heap_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>()
            + self.boxes.len()
                * (std::mem::size_of::<Option<OverlayBox<G>>>() + std::mem::size_of::<Child<G>>());
        for b in self.boxes.iter().flatten() {
            bytes += b.heap_bytes();
        }
        for c in self.children.iter() {
            match c {
                Child::Empty => {}
                Child::Node(n) => bytes += n.heap_bytes(),
                Child::Leaf(l) => {
                    bytes += std::mem::size_of::<LeafBlock<G>>() + l.cells.heap_bytes();
                }
            }
        }
        bytes
    }
}

/// Per-dimension relation of the target prefix cell to an overlay box.
/// (A third case — the cell *preceding* the box — short-circuits the whole
/// box before any status is recorded.)
#[derive(Copy, Clone, PartialEq, Eq)]
enum DimStatus {
    /// Target coordinate falls inside the box's extent.
    Partial,
    /// Target region spans the box's whole extent in this dimension.
    Full,
}

/// How one overlay box contributed to a traced query (Figure 11's
/// per-box walkthrough, machine-readable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Contribution {
    /// Target region covers the box entirely: its subtotal was added.
    Subtotal,
    /// Target region cuts the box: a row-sum group value was added
    /// (the group's axis is recorded).
    RowSum {
        /// The dimension whose group answered.
        axis: usize,
    },
    /// The box covers the target cell: the query descended into it.
    Descend,
    /// Cells summed directly from a leaf block (§4.4 elided levels).
    LeafCells {
        /// Number of raw cells added.
        cells: usize,
    },
}

/// One step of a traced prefix query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep<G> {
    /// Tree depth (0 = root node).
    pub level: usize,
    /// Anchor of the overlay box (or leaf block) that contributed.
    pub box_anchor: Vec<usize>,
    /// Side `k` of the box.
    pub box_side: usize,
    /// What the box contributed.
    pub kind: Contribution,
    /// The value added to the running total (zero for `Descend`).
    pub value: G,
}

/// Structural statistics of one tree (see [`DdcTree::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Materialized interior nodes.
    pub nodes: usize,
    /// Materialized overlay boxes.
    pub boxes: usize,
    /// Materialized dense leaf blocks.
    pub leaf_blocks: usize,
    /// Raw cells held by leaf blocks.
    pub leaf_cells: usize,
    /// Heap bytes attributable to secondary (row-sum) structures.
    pub secondary_bytes: usize,
    /// Total heap bytes of the tree.
    pub total_bytes: usize,
    /// Deepest materialized level (root node = 0).
    pub depth: usize,
    /// Per-level breakdown, index = level.
    pub per_level: Vec<LevelStats>,
}

/// One level's slice of [`TreeStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Region side covered by children at this level.
    pub side: usize,
    /// Interior nodes at this level.
    pub nodes: usize,
    /// Overlay boxes at this level.
    pub boxes: usize,
    /// Dense leaf blocks at this level.
    pub leaf_blocks: usize,
}

/// The Dynamic Data Cube's primary tree over a `d`-dimensional space of
/// power-of-two side.
#[derive(Debug)]
pub struct DdcTree<G: AbelianGroup> {
    d: usize,
    side: usize,
    config: DdcConfig,
    root: Child<G>,
    counter: OpCounter,
}

impl<G: AbelianGroup> DdcTree<G> {
    /// An empty (all-zero) tree covering `[0, side)^d`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not a power of two or `d == 0`.
    pub fn new(d: usize, side: usize, config: DdcConfig) -> Self {
        assert!(d >= 1, "dimensionality must be at least 1");
        assert!(side.is_power_of_two(), "side {side} must be a power of two");
        Self {
            d,
            side,
            config,
            root: Child::Empty,
            counter: OpCounter::new(),
        }
    }

    /// Bulk-builds a tree over `a` (padded with zeros up to `side`) in one
    /// bottom-up pass: each overlay box's subtotal and raw row-sum groups
    /// are accumulated by a single scan of its region and handed to the
    /// secondary structures' `from_values` constructors — `O(d · N log n)`
    /// cell visits in total, with none of the per-cell structure descents
    /// the incremental path pays.
    pub fn from_array_sized(a: &NdArray<G>, side: usize, config: DdcConfig) -> Self {
        let d = a.shape().ndim();
        assert!(side.is_power_of_two());
        assert!(
            a.shape().dims().iter().all(|&n| n <= side),
            "array {} exceeds side {side}",
            a.shape()
        );
        let mut tree = Self::new(d, side, config);
        let leaf_side = tree.leaf_side();
        let lo = vec![0usize; d];
        tree.root = Self::build_child(a, side, &lo, leaf_side, &config, d);
        tree
    }

    /// Builds the subtree covering `[lo, lo + side)`; `Child::Empty` when
    /// the region holds no non-zero cells.
    fn build_child(
        a: &NdArray<G>,
        side: usize,
        lo: &[usize],
        leaf_side: usize,
        config: &DdcConfig,
        d: usize,
    ) -> Child<G> {
        // Intersection of the covered region with the array's extent.
        let mut hi = Vec::with_capacity(d);
        for (&l, &n) in lo.iter().zip(a.shape().dims()) {
            if l >= n {
                return Child::Empty; // fully in the zero padding
            }
            hi.push((l + side - 1).min(n - 1));
        }
        let region = Region::new(lo, &hi);

        if side <= leaf_side {
            let mut block = LeafBlock::zeroed(d, side);
            let mut any = false;
            let mut buf = vec![0usize; d];
            let mut rel = vec![0usize; d];
            let mut iter = region.iter_points();
            while iter.next_into(&mut buf) {
                let v = a.get(&buf);
                if !v.is_zero() {
                    any = true;
                    for (r, (&c, &l)) in rel.iter_mut().zip(buf.iter().zip(lo.iter())) {
                        *r = c - l;
                    }
                    block.cells.add_assign(&rel, v);
                }
            }
            return if any {
                Child::Leaf(block)
            } else {
                Child::Empty
            };
        }

        let k = side / 2;
        let mut node = Node::<G>::new(d);
        let mut any_box = false;
        let mut box_lo = vec![0usize; d];
        for bi in 0..(1usize << d) {
            for i in 0..d {
                box_lo[i] = lo[i] + if bi & (1 << i) != 0 { k } else { 0 };
            }
            if let Some((obox, child)) = Self::build_box(a, k, &box_lo, leaf_side, config, d) {
                any_box = true;
                node.boxes[bi] = Some(obox);
                node.children[bi] = child;
            }
        }
        if any_box {
            Child::Node(Box::new(node))
        } else {
            Child::Empty
        }
    }

    /// Builds one overlay box (subtotal + row-sum groups) and its child
    /// subtree over region `[box_lo, box_lo + k)`; `None` when the region
    /// holds no non-zero cells. One scan accumulates the subtotal and all
    /// `d` raw row-sum groups.
    fn build_box(
        a: &NdArray<G>,
        k: usize,
        box_lo: &[usize],
        leaf_side: usize,
        config: &DdcConfig,
        d: usize,
    ) -> Option<(OverlayBox<G>, Child<G>)> {
        let mut hi = Vec::with_capacity(d);
        for (&l, &n) in box_lo.iter().zip(a.shape().dims()) {
            if l >= n {
                return None;
            }
            hi.push((l + k - 1).min(n - 1));
        }
        let box_region = Region::new(box_lo, &hi);
        let mut subtotal = G::ZERO;
        let mut any = false;
        let mut raws: Vec<NdArray<G>> = if d >= 2 {
            (0..d)
                .map(|_| NdArray::zeroed(Shape::cube(d - 1, k)))
                .collect()
        } else {
            Vec::new()
        };
        let mut buf = vec![0usize; d];
        let mut cross = vec![0usize; d.saturating_sub(1)];
        let mut iter = box_region.iter_points();
        while iter.next_into(&mut buf) {
            let v = a.get(&buf);
            if v.is_zero() {
                continue;
            }
            any = true;
            subtotal = subtotal.add(v);
            for (j, raw) in raws.iter_mut().enumerate() {
                let mut w = 0;
                for i in 0..d {
                    if i != j {
                        cross[w] = buf[i] - box_lo[i];
                        w += 1;
                    }
                }
                raw.add_assign(&cross, v);
            }
        }
        if !any {
            return None;
        }
        let faces: Vec<Secondary<G>> = raws
            .iter()
            .map(|raw| Secondary::build_from_raw(raw, config))
            .collect();
        let obox = OverlayBox {
            subtotal,
            faces: faces.into_boxed_slice(),
        };
        let child = Self::build_child(a, k, box_lo, leaf_side, config, d);
        Some((obox, child))
    }

    /// Like [`DdcTree::from_array_sized`], but builds the `2^d` root
    /// subtrees on separate threads. The subtrees are disjoint, so this
    /// is a straightforward fork-join; speedup approaches the number of
    /// *populated* root quadrants.
    pub fn from_array_parallel(a: &NdArray<G>, side: usize, config: DdcConfig) -> Self {
        let d = a.shape().ndim();
        assert!(side.is_power_of_two());
        assert!(
            a.shape().dims().iter().all(|&n| n <= side),
            "array {} exceeds side {side}",
            a.shape()
        );
        let mut tree = Self::new(d, side, config);
        let leaf_side = tree.leaf_side();
        if side <= leaf_side {
            let lo = vec![0usize; d];
            tree.root = Self::build_child(a, side, &lo, leaf_side, &config, d);
            return tree;
        }
        let k = side / 2;
        let results: Vec<Option<(OverlayBox<G>, Child<G>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..(1usize << d))
                .map(|bi| {
                    let config = &config;
                    scope.spawn(move || {
                        let box_lo: Vec<usize> = (0..d)
                            .map(|i| if bi & (1 << i) != 0 { k } else { 0 })
                            .collect();
                        Self::build_box(a, k, &box_lo, leaf_side, config, d)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("builder thread panicked"))
                .collect()
        });
        let mut node = Node::<G>::new(d);
        let mut any = false;
        for (bi, r) in results.into_iter().enumerate() {
            if let Some((obox, child)) = r {
                any = true;
                node.boxes[bi] = Some(obox);
                node.children[bi] = child;
            }
        }
        if any {
            tree.root = Child::Node(Box::new(node));
        }
        tree
    }

    /// Dimensionality `d`.
    pub fn ndim(&self) -> usize {
        self.d
    }

    /// Covered side length (power of two).
    pub fn side(&self) -> usize {
        self.side
    }

    /// The construction configuration.
    pub fn config(&self) -> &DdcConfig {
        &self.config
    }

    /// The tree's operation counter.
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }

    /// Snapshot of the operation counter.
    pub fn ops(&self) -> OpSnapshot {
        self.counter.snapshot()
    }

    fn leaf_side(&self) -> usize {
        // Boxes of this side hold dense leaf blocks instead of child
        // nodes; see §4.4 and the module docs.
        self.config.leaf_block_side().min(self.side)
    }

    /// `SUM(A[0,…,0] : A[x])` — Figure 10's `CalculateRegionSum`.
    pub fn prefix_sum(&self, x: &[usize]) -> G {
        assert_eq!(x.len(), self.d);
        debug_assert!(x.iter().all(|&c| c < self.side));
        match &self.root {
            Child::Empty => G::ZERO,
            Child::Leaf(block) => block.prefix(x, &self.counter),
            Child::Node(node) => {
                let lo = vec![0usize; self.d];
                self.query_node(node, self.side, &lo, x)
            }
        }
    }

    fn query_node(&self, node: &Node<G>, side: usize, lo: &[usize], x: &[usize]) -> G {
        let d = self.d;
        let k = side / 2;
        let mut acc = G::ZERO;
        let mut box_lo = vec![0usize; d];
        let mut status = vec![DimStatus::Partial; d];
        let mut cross = vec![0usize; d.saturating_sub(1)];
        'boxes: for bi in 0..(1usize << d) {
            // Geometry and classification of box `bi`.
            let mut all_full = true;
            let mut all_partial = true;
            for i in 0..d {
                let bl = lo[i] + if bi & (1 << i) != 0 { k } else { 0 };
                box_lo[i] = bl;
                status[i] = if x[i] < bl {
                    continue 'boxes; // Before: contributes nothing
                } else if x[i] >= bl + k {
                    all_partial = false;
                    DimStatus::Full
                } else {
                    all_full = false;
                    DimStatus::Partial
                };
            }
            if all_full {
                // Target region includes the whole box: subtotal.
                if let Some(b) = &node.boxes[bi] {
                    self.counter.read(1);
                    acc = acc.add(b.subtotal);
                }
            } else if all_partial {
                // This is the box covering the target cell: descend.
                acc = acc.add(self.query_child(&node.children[bi], k, &box_lo, x));
            } else {
                // Mixed full/partial: one row-sum group value. Pick any
                // dimension the region fully spans as the group axis.
                let Some(b) = &node.boxes[bi] else { continue };
                let j = status
                    .iter()
                    .position(|&s| s == DimStatus::Full)
                    .expect("mixed status implies a full dimension");
                let mut w = 0;
                for i in 0..d {
                    if i == j {
                        continue;
                    }
                    cross[w] = match status[i] {
                        DimStatus::Full => k - 1,
                        DimStatus::Partial => x[i] - box_lo[i],
                    };
                    w += 1;
                }
                acc = acc.add(b.faces[j].prefix(&cross[..w], &self.counter));
            }
        }
        acc
    }

    /// Like [`DdcTree::prefix_sum`], additionally recording which overlay
    /// box contributed what — the paper's Figure 11 walkthrough as data.
    /// Returns the steps in visit order; the sum of their values is the
    /// prefix sum.
    pub fn trace_prefix(&self, x: &[usize]) -> Vec<TraceStep<G>> {
        assert_eq!(x.len(), self.d);
        let mut steps = Vec::new();
        match &self.root {
            Child::Empty => {}
            Child::Leaf(block) => {
                let cells = Region::prefix(x).cells();
                steps.push(TraceStep {
                    level: 0,
                    box_anchor: vec![0; self.d],
                    box_side: self.side,
                    kind: Contribution::LeafCells { cells },
                    value: block.prefix(x, &self.counter),
                });
            }
            Child::Node(node) => {
                let lo = vec![0usize; self.d];
                self.trace_node(node, self.side, &lo, x, 0, &mut steps);
            }
        }
        steps
    }

    fn trace_node(
        &self,
        node: &Node<G>,
        side: usize,
        lo: &[usize],
        x: &[usize],
        level: usize,
        steps: &mut Vec<TraceStep<G>>,
    ) {
        let d = self.d;
        let k = side / 2;
        let mut box_lo = vec![0usize; d];
        let mut status = vec![DimStatus::Partial; d];
        let mut cross = vec![0usize; d.saturating_sub(1)];
        'boxes: for bi in 0..(1usize << d) {
            let mut all_full = true;
            let mut all_partial = true;
            for i in 0..d {
                let bl = lo[i] + if bi & (1 << i) != 0 { k } else { 0 };
                box_lo[i] = bl;
                status[i] = if x[i] < bl {
                    continue 'boxes;
                } else if x[i] >= bl + k {
                    all_partial = false;
                    DimStatus::Full
                } else {
                    all_full = false;
                    DimStatus::Partial
                };
            }
            if all_full {
                if let Some(b) = &node.boxes[bi] {
                    steps.push(TraceStep {
                        level,
                        box_anchor: box_lo.clone(),
                        box_side: k,
                        kind: Contribution::Subtotal,
                        value: b.subtotal,
                    });
                }
            } else if all_partial {
                steps.push(TraceStep {
                    level,
                    box_anchor: box_lo.clone(),
                    box_side: k,
                    kind: Contribution::Descend,
                    value: G::ZERO,
                });
                match &node.children[bi] {
                    Child::Empty => {}
                    Child::Leaf(block) => {
                        let rel: Vec<usize> =
                            x.iter().zip(box_lo.iter()).map(|(&c, &l)| c - l).collect();
                        let cells = Region::prefix(&rel).cells();
                        steps.push(TraceStep {
                            level: level + 1,
                            box_anchor: box_lo.clone(),
                            box_side: k,
                            kind: Contribution::LeafCells { cells },
                            value: block.prefix(&rel, &self.counter),
                        });
                    }
                    Child::Node(child) => {
                        self.trace_node(child, k, &box_lo, x, level + 1, steps);
                    }
                }
            } else {
                let Some(b) = &node.boxes[bi] else { continue };
                let j = status
                    .iter()
                    .position(|&s| s == DimStatus::Full)
                    .expect("mixed status implies a full dimension");
                let mut w = 0;
                for i in 0..d {
                    if i == j {
                        continue;
                    }
                    cross[w] = match status[i] {
                        DimStatus::Full => k - 1,
                        DimStatus::Partial => x[i] - box_lo[i],
                    };
                    w += 1;
                }
                steps.push(TraceStep {
                    level,
                    box_anchor: box_lo.clone(),
                    box_side: k,
                    kind: Contribution::RowSum { axis: j },
                    value: b.faces[j].prefix(&cross[..w], &self.counter),
                });
            }
        }
    }

    fn query_child(&self, child: &Child<G>, side: usize, lo: &[usize], x: &[usize]) -> G {
        match child {
            Child::Empty => G::ZERO,
            Child::Leaf(block) => {
                let rel: Vec<usize> = x.iter().zip(lo.iter()).map(|(&c, &l)| c - l).collect();
                block.prefix(&rel, &self.counter)
            }
            Child::Node(n) => self.query_node(n, side, lo, x),
        }
    }

    /// Adds `delta` to cell `x` — Figure 12's `UpdateCell`, expressed with
    /// the difference value directly.
    pub fn apply_delta(&mut self, x: &[usize], delta: G) {
        assert_eq!(x.len(), self.d);
        assert!(
            x.iter().all(|&c| c < self.side),
            "{x:?} outside side {}",
            self.side
        );
        if delta.is_zero() {
            return;
        }
        let leaf_side = self.leaf_side();
        if self.side <= leaf_side {
            // Degenerate: the whole space is one leaf block.
            if matches!(self.root, Child::Empty) {
                self.root = Child::Leaf(LeafBlock::zeroed(self.d, self.side));
            }
            if let Child::Leaf(block) = &mut self.root {
                block.cells.add_assign(x, delta);
                self.counter.write(1);
            }
            return;
        }
        if matches!(self.root, Child::Empty) {
            self.root = Child::Node(Box::new(Node::new(self.d)));
        }
        let Child::Node(root) = &mut self.root else {
            unreachable!()
        };
        Self::update_node(
            root,
            self.d,
            self.side,
            leaf_side,
            &vec![0usize; self.d],
            x,
            delta,
            &self.config,
            &self.counter,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn update_node(
        node: &mut Node<G>,
        d: usize,
        side: usize,
        leaf_side: usize,
        lo: &[usize],
        x: &[usize],
        delta: G,
        config: &DdcConfig,
        counter: &OpCounter,
    ) {
        let k = side / 2;
        // Exactly one box covers the cell (§3.2): derive its index and
        // anchor from the coordinate bits.
        let mut bi = 0usize;
        let mut box_lo = vec![0usize; d];
        for i in 0..d {
            let high = x[i] >= lo[i] + k;
            if high {
                bi |= 1 << i;
            }
            box_lo[i] = lo[i] + if high { k } else { 0 };
        }
        let obox = node.boxes[bi].get_or_insert_with(|| OverlayBox::new(d));
        obox.subtotal = obox.subtotal.add(delta);
        counter.write(1);
        // "for each set of row sum values (d sets): add difference" —
        // group j is indexed by the box-local offsets of the other dims.
        if d >= 2 {
            let mut cross = vec![0usize; d - 1];
            for j in 0..d {
                let mut w = 0;
                for i in 0..d {
                    if i != j {
                        cross[w] = x[i] - box_lo[i];
                        w += 1;
                    }
                }
                obox.faces[j].add(&cross, delta, k, config, counter);
            }
        }
        // Descend to the leaf holding the raw cell.
        debug_assert!(k >= leaf_side, "box side {k} below leaf side {leaf_side}");
        if k == leaf_side {
            if matches!(node.children[bi], Child::Empty) {
                node.children[bi] = Child::Leaf(LeafBlock::zeroed(d, k));
            }
            if let Child::Leaf(block) = &mut node.children[bi] {
                let rel: Vec<usize> = x.iter().zip(box_lo.iter()).map(|(&c, &l)| c - l).collect();
                block.cells.add_assign(&rel, delta);
                counter.write(1);
            }
        } else {
            if matches!(node.children[bi], Child::Empty) {
                node.children[bi] = Child::Node(Box::new(Node::new(d)));
            }
            if let Child::Node(child) = &mut node.children[bi] {
                Self::update_node(child, d, k, leaf_side, &box_lo, x, delta, config, counter);
            }
        }
    }

    /// Reads one raw cell by direct descent (`O(log n)`).
    pub fn cell(&self, x: &[usize]) -> G {
        assert_eq!(x.len(), self.d);
        assert!(x.iter().all(|&c| c < self.side));
        let mut child = &self.root;
        let mut side = self.side;
        let mut lo = vec![0usize; self.d];
        loop {
            match child {
                Child::Empty => return G::ZERO,
                Child::Leaf(block) => {
                    let rel: Vec<usize> = x.iter().zip(lo.iter()).map(|(&c, &l)| c - l).collect();
                    self.counter.read(1);
                    return block.cells.get(&rel);
                }
                Child::Node(node) => {
                    let k = side / 2;
                    let mut bi = 0usize;
                    for i in 0..self.d {
                        if x[i] >= lo[i] + k {
                            bi |= 1 << i;
                            lo[i] += k;
                        }
                    }
                    child = &node.children[bi];
                    side = k;
                }
            }
        }
    }

    /// Sum of the whole space.
    pub fn total(&self) -> G {
        match &self.root {
            Child::Empty => G::ZERO,
            Child::Leaf(block) => block.total(),
            Child::Node(node) => node
                .boxes
                .iter()
                .flatten()
                .fold(G::ZERO, |acc, b| acc.add(b.subtotal)),
        }
    }

    /// Invokes `f` for every non-zero raw cell with its coordinates.
    pub fn for_each_nonzero(&self, f: &mut impl FnMut(&[usize], G)) {
        let lo = vec![0usize; self.d];
        Self::walk_nonzero(&self.root, self.side, &lo, f);
    }

    fn walk_nonzero(child: &Child<G>, side: usize, lo: &[usize], f: &mut impl FnMut(&[usize], G)) {
        match child {
            Child::Empty => {}
            Child::Leaf(block) => {
                let mut abs = lo.to_vec();
                for rel in block.cells.shape().iter_points() {
                    let v = block.cells.get(&rel);
                    if !v.is_zero() {
                        for (a, (&l, &r)) in abs.iter_mut().zip(lo.iter().zip(rel.iter())) {
                            *a = l + r;
                        }
                        f(&abs, v);
                    }
                }
            }
            Child::Node(node) => {
                let d = lo.len();
                let k = side / 2;
                let mut box_lo = vec![0usize; d];
                for bi in 0..(1usize << d) {
                    for i in 0..d {
                        box_lo[i] = lo[i] + if bi & (1 << i) != 0 { k } else { 0 };
                    }
                    Self::walk_nonzero(&node.children[bi], k, &box_lo, f);
                }
            }
        }
    }

    /// Number of non-zero raw cells.
    pub fn populated_cells(&self) -> usize {
        let mut n = 0;
        self.for_each_nonzero(&mut |_, _| n += 1);
        n
    }

    /// Doubles the covered side. Dimensions flagged `true` in `low` grow
    /// toward smaller coordinates: existing content shifts up by the old
    /// side in those dimensions (callers track the logical origin with
    /// [`ddc_array::CoordMap`]). Other dimensions grow append-style.
    ///
    /// The old root becomes one child of the new root; only the new
    /// root-level overlay box is rebuilt, by replaying the populated cells
    /// into its subtotal and row-sum groups.
    pub fn grow(&mut self, low: &[bool]) {
        assert_eq!(low.len(), self.d);
        let old_side = self.side;
        self.side = old_side.checked_mul(2).expect("side overflow");
        let old_root = std::mem::take(&mut self.root);
        if matches!(old_root, Child::Empty) {
            return;
        }
        if self.side <= self.config.leaf_block_side() {
            // The grown space still fits in one dense leaf block: rebuild
            // it with the content shifted in the lowered dimensions.
            let mut block = LeafBlock::zeroed(self.d, self.side);
            let shift: Vec<usize> = low.iter().map(|&l| if l { old_side } else { 0 }).collect();
            let mut q = vec![0usize; self.d];
            Self::walk_nonzero(&old_root, old_side, &vec![0usize; self.d], &mut |p, v| {
                for (qi, (&pi, &s)) in q.iter_mut().zip(p.iter().zip(shift.iter())) {
                    *qi = pi + s;
                }
                block.cells.add_assign(&q, v);
            });
            self.root = Child::Leaf(block);
            return;
        }
        // The old region lands in the high half of every lowered dim.
        let mut bi = 0usize;
        for (i, &l) in low.iter().enumerate() {
            if l {
                bi |= 1 << i;
            }
        }
        let mut node = Node::<G>::new(self.d);
        let mut obox = OverlayBox::<G>::new(self.d);
        // Rebuild this box's values from the populated cells of the old
        // space (coordinates are already box-local).
        let d = self.d;
        let k = old_side;
        let config = self.config;
        let counter = &self.counter;
        let mut cross = vec![0usize; d.saturating_sub(1)];
        Self::walk_nonzero(&old_root, old_side, &vec![0usize; d], &mut |p, v| {
            obox.subtotal = obox.subtotal.add(v);
            counter.write(1);
            if d >= 2 {
                for j in 0..d {
                    let mut w = 0;
                    for (i, &c) in p.iter().enumerate() {
                        if i != j {
                            cross[w] = c;
                            w += 1;
                        }
                    }
                    obox.faces[j].add(&cross[..w], v, k, &config, counter);
                }
            }
        });
        node.boxes[bi] = Some(obox);
        node.children[bi] = old_root;
        self.root = Child::Node(Box::new(node));
    }

    /// Reclaims storage left behind by cancelling updates: all-zero leaf
    /// blocks and subtrees whose every cell returned to zero are dropped
    /// back to the unmaterialized state (with their overlay boxes and
    /// secondary structures). Returns the number of heap bytes released.
    ///
    /// Lazily materialized structures never free themselves on the update
    /// path (a cell may go through zero transiently); churn-heavy
    /// workloads call this at their own cadence.
    pub fn prune(&mut self) -> usize {
        let before = self.heap_bytes();
        if !Self::prune_child(&mut self.root) {
            self.root = Child::Empty;
        }
        before.saturating_sub(self.heap_bytes())
    }

    /// Returns whether the child still holds any non-zero content.
    fn prune_child(child: &mut Child<G>) -> bool {
        match child {
            Child::Empty => false,
            Child::Leaf(block) => block.cells.populated_cells() > 0,
            Child::Node(node) => {
                let mut any = false;
                for bi in 0..node.children.len() {
                    let live = Self::prune_child(&mut node.children[bi]);
                    if !live {
                        node.children[bi] = Child::Empty;
                        // A box over an empty region contributes only
                        // zeros; drop it with its secondary structures.
                        if let Some(b) = &node.boxes[bi] {
                            debug_assert!(b.subtotal.is_zero());
                        }
                        node.boxes[bi] = None;
                    } else {
                        any = true;
                    }
                }
                any
            }
        }
    }

    /// Collects structural statistics by one traversal — the storage
    /// profile behind Table 2 and §4.4 ("most of the additional storage
    /// … is found in the lowest levels of the tree").
    pub fn stats(&self) -> TreeStats {
        let mut stats = TreeStats::default();
        Self::collect_stats(&self.root, self.side, 0, &mut stats);
        stats.total_bytes = self.heap_bytes();
        stats
    }

    fn collect_stats(child: &Child<G>, side: usize, level: usize, stats: &mut TreeStats) {
        while stats.per_level.len() <= level {
            stats.per_level.push(LevelStats::default());
        }
        stats.per_level[level].side = side;
        match child {
            Child::Empty => {}
            Child::Leaf(block) => {
                stats.leaf_blocks += 1;
                stats.leaf_cells += block.cells.shape().cells();
                stats.depth = stats.depth.max(level);
                stats.per_level[level].leaf_blocks += 1;
            }
            Child::Node(node) => {
                stats.nodes += 1;
                stats.depth = stats.depth.max(level);
                stats.per_level[level].nodes += 1;
                let k = side / 2;
                for b in node.boxes.iter().flatten() {
                    stats.boxes += 1;
                    stats.per_level[level].boxes += 1;
                    stats.secondary_bytes +=
                        b.faces.iter().map(Secondary::heap_bytes).sum::<usize>();
                }
                for c in node.children.iter() {
                    Self::collect_stats(c, k, level + 1, stats);
                }
            }
        }
    }

    /// Approximate heap bytes held by the whole structure.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + match &self.root {
                Child::Empty => 0,
                Child::Leaf(block) => block.cells.heap_bytes(),
                Child::Node(node) => node.heap_bytes(),
            }
    }

    /// Validates structural invariants, returning the tree total:
    /// every overlay box's subtotal equals its child's content sum, and
    /// every row-sum group's full-prefix equals the subtotal.
    ///
    /// # Panics
    ///
    /// Panics on any violation (test/diagnostic use).
    pub fn check_invariants(&self) -> G {
        Self::check_child(&self.root, self.d, self.side, &self.counter)
    }

    fn check_child(child: &Child<G>, d: usize, side: usize, counter: &OpCounter) -> G {
        match child {
            Child::Empty => G::ZERO,
            Child::Leaf(block) => {
                assert_eq!(
                    block.cells.shape().dims(),
                    &vec![side; d][..],
                    "leaf block shape mismatch"
                );
                block.total()
            }
            Child::Node(node) => {
                let k = side / 2;
                let mut total = G::ZERO;
                for bi in 0..(1usize << d) {
                    let child_total = Self::check_child(&node.children[bi], d, k, counter);
                    match &node.boxes[bi] {
                        None => assert!(
                            child_total.is_zero(),
                            "missing box over non-empty child (sum {child_total:?})"
                        ),
                        Some(b) => {
                            assert_eq!(
                                b.subtotal, child_total,
                                "subtotal does not match child content"
                            );
                            if d >= 2 {
                                let full = vec![k - 1; d - 1];
                                for (j, face) in b.faces.iter().enumerate() {
                                    if matches!(face, Secondary::Empty) {
                                        assert!(
                                            b.subtotal.is_zero(),
                                            "empty face under non-zero subtotal"
                                        );
                                        continue;
                                    }
                                    let fp = face.prefix(&full, counter);
                                    assert_eq!(
                                        fp, b.subtotal,
                                        "face {j} full prefix disagrees with subtotal"
                                    );
                                }
                            }
                            total = total.add(b.subtotal);
                        }
                    }
                }
                total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BaseStore, DdcConfig};

    fn reference_and_tree(
        side: usize,
        d: usize,
        config: DdcConfig,
        updates: &[(Vec<usize>, i64)],
    ) -> (NdArray<i64>, DdcTree<i64>) {
        let mut a = NdArray::<i64>::zeroed(Shape::cube(d, side));
        let mut t = DdcTree::<i64>::new(d, side, config);
        for (p, delta) in updates {
            a.add_assign(p, *delta);
            t.apply_delta(p, *delta);
        }
        (a, t)
    }

    fn assert_all_prefixes(a: &NdArray<i64>, t: &DdcTree<i64>) {
        for p in a.shape().iter_points() {
            assert_eq!(t.prefix_sum(&p), a.prefix_sum(&p), "prefix {p:?}");
        }
    }

    fn dense_updates(side: usize, d: usize) -> Vec<(Vec<usize>, i64)> {
        Shape::cube(d, side)
            .iter_points()
            .enumerate()
            .map(|(i, p)| (p, (i as i64 * 31 % 17) - 8))
            .collect()
    }

    #[test]
    fn dense_2d_dynamic_matches_reference() {
        let (a, t) = reference_and_tree(8, 2, DdcConfig::dynamic(), &dense_updates(8, 2));
        assert_all_prefixes(&a, &t);
        assert_eq!(t.check_invariants(), a.total());
    }

    #[test]
    fn dense_2d_basic_matches_reference() {
        let (a, t) = reference_and_tree(8, 2, DdcConfig::basic(), &dense_updates(8, 2));
        assert_all_prefixes(&a, &t);
    }

    #[test]
    fn dense_3d_matches_reference() {
        for config in [
            DdcConfig::dynamic(),
            DdcConfig::basic(),
            DdcConfig::sparse(),
        ] {
            let (a, t) = reference_and_tree(8, 3, config, &dense_updates(8, 3));
            assert_all_prefixes(&a, &t);
            assert_eq!(t.check_invariants(), a.total());
        }
    }

    #[test]
    fn dense_4d_matches_reference() {
        let (a, t) = reference_and_tree(4, 4, DdcConfig::dynamic(), &dense_updates(4, 4));
        assert_all_prefixes(&a, &t);
    }

    #[test]
    fn prune_reclaims_cancelled_subtrees() {
        let mut t = DdcTree::<i64>::new(2, 256, DdcConfig::dynamic());
        // Populate a diagonal, then cancel it all.
        for i in 0..256usize {
            t.apply_delta(&[i, i], 7);
        }
        let populated_bytes = t.heap_bytes();
        for i in 0..256usize {
            t.apply_delta(&[i, i], -7);
        }
        assert_eq!(t.total(), 0);
        // Structures linger until pruned…
        assert!(t.heap_bytes() > populated_bytes / 2);
        let released = t.prune();
        assert!(released > 0);
        assert!(
            t.heap_bytes() < populated_bytes / 10,
            "{} bytes left",
            t.heap_bytes()
        );
        assert_eq!(t.prefix_sum(&[255, 255]), 0);
        // The tree stays fully usable afterwards.
        t.apply_delta(&[100, 100], 3);
        assert_eq!(t.prefix_sum(&[255, 255]), 3);
        t.check_invariants();
    }

    #[test]
    fn prune_keeps_live_content_intact() {
        let mut t = DdcTree::<i64>::new(2, 64, DdcConfig::sparse());
        for (p, v) in dense_updates(8, 2) {
            t.apply_delta(&[p[0] * 8, p[1] * 8], v);
        }
        t.apply_delta(&[5, 5], 9);
        t.apply_delta(&[5, 5], -9); // one cancelled cell
        let reference_total = t.total();
        t.prune();
        assert_eq!(t.total(), reference_total);
        assert_eq!(t.cell(&[5, 5]), 0);
        assert_eq!(t.cell(&[8, 8]), t.cell(&[8, 8]));
        t.check_invariants();
    }

    #[test]
    fn stats_profile_matches_structure() {
        let (a, t) = reference_and_tree(16, 2, DdcConfig::dynamic(), &dense_updates(16, 2));
        let s = t.stats();
        // Dense 16² tree, h = 0: nodes at sides 16, 8, 4; leaf blocks of
        // side 2 under the side-4 nodes.
        assert_eq!(s.per_level[0].nodes, 1);
        assert_eq!(s.per_level[0].side, 16);
        assert_eq!(s.per_level[1].nodes, 4);
        assert_eq!(s.per_level[2].nodes, 16);
        assert_eq!(s.per_level[3].leaf_blocks, 64);
        assert_eq!(s.leaf_cells, 256);
        assert_eq!(s.nodes, 21);
        assert_eq!(s.boxes, 21 * 4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.total_bytes, t.heap_bytes());
        assert!(s.secondary_bytes > 0 && s.secondary_bytes < s.total_bytes);
        let _ = a;
        // Sparse tree: statistics shrink to the populated paths.
        let mut sparse = DdcTree::<i64>::new(2, 16, DdcConfig::sparse());
        sparse.apply_delta(&[0, 0], 1);
        let ss = sparse.stats();
        assert_eq!(ss.nodes, 3);
        assert_eq!(ss.boxes, 3);
        assert_eq!(ss.leaf_blocks, 1);
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let shape = Shape::cube(2, 64);
        let a = NdArray::from_fn(shape, |p| ((p[0] * 31 + p[1] * 7) % 23) as i64 - 11);
        let seq = DdcTree::from_array_sized(&a, 64, DdcConfig::dynamic());
        let par = DdcTree::from_array_parallel(&a, 64, DdcConfig::dynamic());
        for p in a.shape().iter_points() {
            assert_eq!(par.prefix_sum(&p), seq.prefix_sum(&p), "{p:?}");
        }
        assert_eq!(par.check_invariants(), a.total());
        // Degenerate: tiny array below the leaf-block side.
        let tiny = NdArray::from_rows(&[vec![1i64, 2], vec![3, 4]]);
        let par_tiny = DdcTree::from_array_parallel(&tiny, 2, DdcConfig::dynamic());
        assert_eq!(par_tiny.prefix_sum(&[1, 1]), 10);
    }

    #[test]
    fn five_dimensional_recursion() {
        // d = 5 exercises four levels of secondary-tree recursion
        // (4-D → 3-D → 2-D → 1-D B^c trees).
        let (a, t) = reference_and_tree(4, 5, DdcConfig::dynamic(), &dense_updates(4, 5));
        for p in [[0usize; 5], [3; 5], [1, 2, 3, 0, 2], [3, 0, 3, 0, 3]] {
            assert_eq!(t.prefix_sum(&p), a.prefix_sum(&p), "{p:?}");
        }
        assert_eq!(t.check_invariants(), a.total());
    }

    #[test]
    fn one_dimensional_tree() {
        let (a, t) = reference_and_tree(16, 1, DdcConfig::dynamic(), &dense_updates(16, 1));
        assert_all_prefixes(&a, &t);
        assert_eq!(t.total(), a.total());
    }

    #[test]
    fn elided_levels_match_reference() {
        for h in 0..=3 {
            let config = DdcConfig::dynamic().with_elision(h);
            let (a, t) = reference_and_tree(16, 2, config, &dense_updates(16, 2));
            assert_all_prefixes(&a, &t);
            assert_eq!(t.check_invariants(), a.total());
        }
    }

    #[test]
    fn elision_shrinks_storage() {
        let updates = dense_updates(32, 2);
        let sizes: Vec<usize> = (0..=3)
            .map(|h| {
                let config = DdcConfig::dynamic().with_elision(h);
                let (_, t) = reference_and_tree(32, 2, config, &updates);
                t.heap_bytes()
            })
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[1] < w[0]),
            "heap bytes should fall as h grows: {sizes:?}"
        );
    }

    #[test]
    fn fenwick_and_seg_bases_match() {
        for base in [
            BaseStore::Fenwick,
            BaseStore::SparseSeg,
            BaseStore::Bc { fanout: 4 },
        ] {
            let config = DdcConfig::dynamic().with_base(base);
            let (a, t) = reference_and_tree(16, 2, config, &dense_updates(16, 2));
            assert_all_prefixes(&a, &t);
        }
    }

    #[test]
    fn empty_tree_reads_zero_everywhere() {
        let t = DdcTree::<i64>::new(3, 16, DdcConfig::dynamic());
        assert_eq!(t.prefix_sum(&[15, 15, 15]), 0);
        assert_eq!(t.cell(&[3, 4, 5]), 0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.populated_cells(), 0);
    }

    #[test]
    fn cell_reads_match_updates() {
        let updates = dense_updates(8, 2);
        let (a, t) = reference_and_tree(8, 2, DdcConfig::dynamic(), &updates);
        for p in a.shape().iter_points() {
            assert_eq!(t.cell(&p), a.get(&p), "cell {p:?}");
        }
    }

    #[test]
    fn sparse_population_costs_little_memory() {
        let mut dense = DdcTree::<i64>::new(2, 1024, DdcConfig::sparse());
        dense.apply_delta(&[3, 900], 5);
        dense.apply_delta(&[800, 2], -9);
        let sparse_bytes = dense.heap_bytes();
        // The dense space would be 1024² cells = 8 MiB of i64 alone.
        assert!(
            sparse_bytes < 200_000,
            "sparse cube used {sparse_bytes} bytes"
        );
        assert_eq!(dense.prefix_sum(&[1023, 1023]), -4);
        assert_eq!(dense.populated_cells(), 2);
    }

    #[test]
    fn growth_high_preserves_content() {
        let mut t = DdcTree::<i64>::new(2, 8, DdcConfig::dynamic());
        let updates = dense_updates(8, 2);
        let mut a = NdArray::<i64>::zeroed(Shape::cube(2, 16));
        for (p, delta) in &updates {
            t.apply_delta(p, *delta);
            a.add_assign(p, *delta);
        }
        t.grow(&[false, false]);
        assert_eq!(t.side(), 16);
        t.apply_delta(&[12, 15], 100);
        a.add_assign(&[12, 15], 100);
        assert_all_prefixes(&a, &t);
        assert_eq!(t.check_invariants(), a.total());
    }

    #[test]
    fn growth_low_shifts_content() {
        let mut t = DdcTree::<i64>::new(2, 4, DdcConfig::dynamic());
        t.apply_delta(&[0, 0], 7);
        t.apply_delta(&[3, 3], 2);
        t.grow(&[true, false]); // dim 0 grows low: content shifts up by 4
        assert_eq!(t.cell(&[4, 0]), 7);
        assert_eq!(t.cell(&[7, 3]), 2);
        assert_eq!(t.cell(&[0, 0]), 0);
        assert_eq!(t.prefix_sum(&[7, 7]), 9);
        assert_eq!(t.check_invariants(), 9);
    }

    #[test]
    fn growth_of_empty_tree_is_free() {
        let mut t = DdcTree::<i64>::new(3, 4, DdcConfig::dynamic());
        t.grow(&[true, true, true]);
        assert_eq!(t.side(), 8);
        assert_eq!(t.total(), 0);
        t.apply_delta(&[7, 7, 7], 1);
        assert_eq!(t.prefix_sum(&[7, 7, 7]), 1);
    }

    #[test]
    fn repeated_growth_stays_consistent() {
        let mut t = DdcTree::<i64>::new(2, 4, DdcConfig::sparse());
        t.apply_delta(&[1, 1], 10);
        for step in 0..4 {
            t.grow(&[step % 2 == 0, step % 2 == 1]);
        }
        assert_eq!(t.side(), 64);
        // Shifts: dim0 grew low at steps 0,2 (+4, +16); dim1 at 1,3 (+8, +32).
        assert_eq!(t.cell(&[1 + 4 + 16, 1 + 8 + 32]), 10);
        assert_eq!(t.total(), 10);
        assert_eq!(t.check_invariants(), 10);
    }

    #[test]
    fn for_each_nonzero_reports_cells() {
        let mut t = DdcTree::<i64>::new(2, 16, DdcConfig::dynamic());
        t.apply_delta(&[2, 3], 5);
        t.apply_delta(&[10, 0], -1);
        let mut seen = Vec::new();
        t.for_each_nonzero(&mut |p, v| seen.push((p.to_vec(), v)));
        seen.sort();
        assert_eq!(seen, vec![(vec![2, 3], 5), (vec![10, 0], -1)]);
    }

    #[test]
    fn cancelling_update_keeps_queries_correct() {
        let mut t = DdcTree::<i64>::new(2, 8, DdcConfig::dynamic());
        t.apply_delta(&[4, 4], 5);
        t.apply_delta(&[4, 4], -5);
        assert_eq!(t.prefix_sum(&[7, 7]), 0);
        assert_eq!(t.cell(&[4, 4]), 0);
    }

    #[test]
    fn update_cost_is_polylogarithmic() {
        let mut t = DdcTree::<i64>::new(2, 256, DdcConfig::dynamic());
        // Warm the path so materialization costs are excluded.
        t.apply_delta(&[0, 0], 1);
        t.counter().reset();
        t.apply_delta(&[0, 0], 1);
        let w = t.ops().writes;
        // log2(256) = 8 levels × (1 subtotal + 2 B^c paths of ≤ ~2·log k).
        assert!(w <= 8 * 40, "update wrote {w} values");
        // …versus the Basic tree, which cascades O(n) at the root.
        let mut b = DdcTree::<i64>::new(2, 256, DdcConfig::basic());
        b.apply_delta(&[0, 0], 1);
        b.counter().reset();
        b.apply_delta(&[0, 0], 1);
        assert!(
            b.ops().writes > w,
            "basic ({}) should exceed dynamic ({w})",
            b.ops().writes
        );
    }

    #[test]
    fn query_cost_is_polylogarithmic() {
        let mut t = DdcTree::<i64>::new(2, 256, DdcConfig::dynamic());
        for (p, v) in dense_updates(16, 2) {
            t.apply_delta(&[p[0] * 16, p[1] * 16], v);
        }
        t.counter().reset();
        let _ = t.prefix_sum(&[255, 255]);
        let r = t.ops().reads;
        assert!(r <= 8 * 3 * 20, "query read {r} values");
    }
}
