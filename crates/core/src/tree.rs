//! The primary tree of the Dynamic Data Cube (§3.2, §4.2), stored in
//! flat arenas.
//!
//! A [`DdcTree`] recursively bisects the (power-of-two) data space. Each
//! node holds `2^d` **overlay boxes** of side `k` (half the node's side);
//! a box stores the **subtotal** of its region and `d` row-sum groups,
//! each `(d−1)`-dimensional (§3.1), held in a [`Secondary`] structure.
//!
//! Queries ([`DdcTree::prefix_sum`]) implement Figure 10: at each node,
//! every overlay box contributes at most one value —
//!
//! * nothing, if the target cell precedes the box in some dimension;
//! * its subtotal, if the target region covers the box entirely;
//! * one row-sum group value, if the target region cuts the box; or
//! * a recursive descent, for the single box that covers the target cell.
//!
//! Updates ([`DdcTree::apply_delta`]) implement Figure 12 bottom-up with
//! the difference value: one box per level absorbs the delta into its
//! subtotal and its `d` row-sum groups.
//!
//! ## Arena layout (DESIGN §43)
//!
//! Nodes are not heap objects: the tree is four parallel `Vec`s indexed
//! by a packed u32 [`ChildRef`]. Node `n` owns the `2^d` consecutive
//! slots `[n·2^d, (n+1)·2^d)` of `children` (packed child references)
//! and `boxes` (inline overlay boxes); dense leaf blocks live in the
//! separate `leaves` arena. Descent is an index walk over contiguous
//! memory — no pointer chasing — and box classification is branchless:
//! the boxes contributing to a prefix query at a node are exactly the
//! submasks of the "high-half" bitmask of the target coordinates, so
//! the query enumerates submasks and mask-selects the cross coordinates
//! instead of testing per-dimension statuses.
//!
//! [`DdcTree::prune`] returns dead slots to per-arena free lists;
//! allocation pops a free slot before growing the arena, and when free
//! slots outnumber live ones the whole tree is compacted into fresh
//! exactly-sized arenas, releasing the memory. [`DdcTree::check_arena`]
//! audits this bookkeeping (reachability ∪ free lists = all slots, with
//! no overlap and no dangling or duplicated references).
//!
//! Additional paper features carried by this type:
//!
//! * **Level elision (§4.4)** — the `h` lowest levels are replaced by
//!   dense [`LeafBlock`]s of side `2^{h+1}`, shrinking storage toward
//!   `|A|` at the cost of summing at most `2^{(h+1)d}` leaf cells per
//!   query.
//! * **Sparsity (§5)** — nodes, boxes, and secondary structures
//!   materialize lazily; an all-zero region costs nothing.
//! * **Growth (§5)** — [`DdcTree::grow`] doubles the space in one step by
//!   re-rooting: the old root becomes one child of a fresh root, and only
//!   the new root-level overlay box is rebuilt (cost proportional to the
//!   populated cells, not the space).

use ddc_array::{AbelianGroup, NdArray, OpCounter, OpSnapshot, Region, Shape};

use crate::config::{DdcConfig, LeafBackend};
use crate::pager::{PoolStats, WalBarrier};
use crate::persist::ValueCodec;
use crate::secondary::Secondary;
use crate::store::{MemStore, NodeStore, PagedStore, RecordCodec};

/// Tag bit distinguishing leaf-arena from node-arena references.
const LEAF_BIT: u32 = 1 << 31;

/// Packed reference to a child: empty, a node-arena id, or a
/// leaf-arena id (tagged with [`LEAF_BIT`]). `u32::MAX` is the empty
/// sentinel — it has the leaf bit set, so emptiness must be checked
/// before the leaf tag.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct ChildRef(u32);

impl ChildRef {
    const EMPTY: ChildRef = ChildRef(u32::MAX);

    fn node(ix: u32) -> Self {
        assert!(ix < LEAF_BIT, "node arena overflow");
        ChildRef(ix)
    }

    fn leaf(ix: u32) -> Self {
        assert!(ix < LEAF_BIT - 1, "leaf arena overflow");
        ChildRef(ix | LEAF_BIT)
    }

    #[inline]
    fn is_empty(self) -> bool {
        self.0 == u32::MAX
    }

    #[inline]
    fn is_leaf(self) -> bool {
        !self.is_empty() && self.0 & LEAF_BIT != 0
    }

    /// Arena index, valid for non-empty references only.
    #[inline]
    fn index(self) -> usize {
        (self.0 & !LEAF_BIT) as usize
    }
}

/// One overlay box: subtotal plus `d` row-sum groups (§3.1). Stored
/// inline in the node arena, parallel to the child slot it covers.
#[derive(Debug)]
pub(crate) struct OverlayBox<G: AbelianGroup> {
    /// Sum of every cell of `A` covered by the box.
    subtotal: G,
    /// Row-sum group per dimension; group `j` is indexed by the box-local
    /// coordinates of the other `d − 1` dimensions and accumulates whole
    /// rows along dimension `j`.
    faces: Box<[Secondary<G>]>,
}

impl<G: AbelianGroup> OverlayBox<G> {
    fn new(d: usize) -> Self {
        let faces: Vec<Secondary<G>> = (0..d).map(|_| Secondary::Empty).collect();
        Self {
            subtotal: G::ZERO,
            faces: faces.into_boxed_slice(),
        }
    }

    /// Heap bytes owned *behind* the box (the arena slot itself is
    /// billed by capacity in [`DdcTree::heap_bytes`]).
    fn inner_heap_bytes(&self) -> usize {
        self.faces.len() * std::mem::size_of::<Secondary<G>>()
            + self.faces.iter().map(Secondary::heap_bytes).sum::<usize>()
    }
}

/// Dense block of raw `A` cells standing in for the elided subtree
/// (§4.4); with `h = 0` blocks have side 2 and hold exactly the cells the
/// paper's leaf-level (`k = 1`) overlay boxes would.
#[derive(Debug)]
pub(crate) struct LeafBlock<G: AbelianGroup> {
    cells: NdArray<G>,
}

impl<G: AbelianGroup> LeafBlock<G> {
    fn zeroed(d: usize, side: usize) -> Self {
        Self {
            cells: NdArray::zeroed(Shape::cube(d, side)),
        }
    }

    /// Sum of the block-local prefix region ending at `rel` — the "sum the
    /// appropriate leaf cells" step of §4.4.
    fn prefix(&self, rel: &[usize], counter: &OpCounter) -> G {
        let region = Region::prefix(rel);
        counter.read(region.cells() as u64);
        self.cells.region_sum(&region)
    }

    fn total(&self) -> G {
        self.cells.total()
    }
}

impl<G: AbelianGroup + ValueCodec> LeafBlock<G> {
    /// Upper bound on a block's encoded size for trees of the given
    /// config: side header plus a full dense block of values. Every
    /// block a tree allocates has side ≤ `leaf_block_side()` (smaller
    /// only while the whole space is one degenerate leaf).
    fn record_cap(d: usize, leaf_block_side: usize) -> usize {
        4 + leaf_block_side.pow(d as u32) * G::WIDTH
    }

    /// Serializes as `side: u32 LE` + row-major cells ([`ValueCodec`]).
    fn encode_into(&self, out: &mut Vec<u8>) {
        let side = self.cells.shape().dims()[0] as u32;
        out.extend_from_slice(&side.to_le_bytes());
        for v in self.cells.as_slice() {
            if let Err(e) = v.encode(out) {
                panic!("leaf block encode failed: {e}");
            }
        }
    }

    fn decode_from(d: usize, bytes: &[u8]) -> Self {
        assert!(bytes.len() >= 4, "truncated leaf record");
        let side = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let shape = Shape::cube(d, side);
        let mut input = &bytes[4..];
        let data: Vec<G> = (0..shape.cells())
            .map(|_| match G::decode(&mut input) {
                Ok(v) => v,
                Err(e) => panic!("leaf block decode failed: {e}"),
            })
            .collect();
        Self {
            cells: NdArray::from_vec(shape, data),
        }
    }
}

/// The leaf-block arena behind a tree: the in-memory slab, or records
/// paged through a capped buffer pool (ROADMAP #1). Both expose the
/// same [`NodeStore`] contract, so every tree operation below is
/// backend-agnostic.
#[derive(Debug)]
pub(crate) enum LeafArena<G: AbelianGroup> {
    Mem(MemStore<LeafBlock<G>>),
    // Boxed: the pool + slot directory are much bigger than the slab's
    // two Vec headers, and Mem is the overwhelmingly common variant.
    Paged(Box<PagedStore<LeafBlock<G>>>),
}

impl<G: AbelianGroup> LeafArena<G> {
    fn insert(&mut self, block: LeafBlock<G>) -> u32 {
        match self {
            Self::Mem(m) => m.insert(block),
            Self::Paged(p) => p.insert(block),
        }
    }

    fn remove(&mut self, id: u32) {
        match self {
            Self::Mem(m) => m.remove(id),
            Self::Paged(p) => p.remove(id),
        }
    }

    fn slots(&self) -> usize {
        match self {
            Self::Mem(m) => m.slots(),
            Self::Paged(p) => p.slots(),
        }
    }

    fn free_len(&self) -> usize {
        match self {
            Self::Mem(m) => m.free_len(),
            Self::Paged(p) => p.free_len(),
        }
    }

    fn free_ids(&self) -> Vec<u32> {
        match self {
            Self::Mem(m) => m.free_ids(),
            Self::Paged(p) => p.free_ids(),
        }
    }

    fn is_occupied(&self, id: u32) -> bool {
        match self {
            Self::Mem(m) => m.is_occupied(id),
            Self::Paged(p) => p.is_occupied(id),
        }
    }

    fn with<R>(&self, id: u32, f: impl FnOnce(Option<&LeafBlock<G>>) -> R) -> R {
        match self {
            Self::Mem(m) => m.with(id, f),
            Self::Paged(p) => p.with(id, f),
        }
    }

    fn with_mut<R>(&mut self, id: u32, f: impl FnOnce(Option<&mut LeafBlock<G>>) -> R) -> R {
        match self {
            Self::Mem(m) => m.with_mut(id, f),
            Self::Paged(p) => p.with_mut(id, f),
        }
    }
}

/// How one overlay box contributed to a traced query (Figure 11's
/// per-box walkthrough, machine-readable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Contribution {
    /// Target region covers the box entirely: its subtotal was added.
    Subtotal,
    /// Target region cuts the box: a row-sum group value was added
    /// (the group's axis is recorded).
    RowSum {
        /// The dimension whose group answered.
        axis: usize,
    },
    /// The box covers the target cell: the query descended into it.
    Descend,
    /// Cells summed directly from a leaf block (§4.4 elided levels).
    LeafCells {
        /// Number of raw cells added.
        cells: usize,
    },
}

/// One step of a traced prefix query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep<G> {
    /// Tree depth (0 = root node).
    pub level: usize,
    /// Anchor of the overlay box (or leaf block) that contributed.
    pub box_anchor: Vec<usize>,
    /// Side `k` of the box.
    pub box_side: usize,
    /// What the box contributed.
    pub kind: Contribution,
    /// The value added to the running total (zero for `Descend`).
    pub value: G,
}

/// Structural statistics of one tree (see [`DdcTree::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Materialized interior nodes.
    pub nodes: usize,
    /// Materialized overlay boxes.
    pub boxes: usize,
    /// Materialized dense leaf blocks.
    pub leaf_blocks: usize,
    /// Raw cells held by leaf blocks.
    pub leaf_cells: usize,
    /// Heap bytes attributable to secondary (row-sum) structures.
    pub secondary_bytes: usize,
    /// Total heap bytes of the tree.
    pub total_bytes: usize,
    /// Deepest materialized level (root node = 0).
    pub depth: usize,
    /// Per-level breakdown, index = level.
    pub per_level: Vec<LevelStats>,
    /// Node-arena slots (live + free-listed).
    pub node_slots: usize,
    /// Node-arena slots on the free list.
    pub free_node_slots: usize,
    /// Leaf-arena slots (live + free-listed).
    pub leaf_slots: usize,
    /// Leaf-arena slots on the free list.
    pub free_leaf_slots: usize,
}

/// One level's slice of [`TreeStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Region side covered by children at this level.
    pub side: usize,
    /// Interior nodes at this level.
    pub nodes: usize,
    /// Overlay boxes at this level.
    pub boxes: usize,
    /// Dense leaf blocks at this level.
    pub leaf_blocks: usize,
}

/// The Dynamic Data Cube's primary tree over a `d`-dimensional space of
/// power-of-two side.
#[derive(Debug)]
pub struct DdcTree<G: AbelianGroup> {
    d: usize,
    side: usize,
    config: DdcConfig,
    root: ChildRef,
    /// Node arena: node `n` owns slots `[n·2^d, (n+1)·2^d)`.
    children: Vec<ChildRef>,
    /// Overlay boxes, parallel to `children` slot for slot.
    boxes: Vec<Option<OverlayBox<G>>>,
    /// Leaf-block arena, indexed by [`ChildRef::leaf`] ids — in-memory
    /// slab by default, paged once `enable_paging` has run.
    leaves: LeafArena<G>,
    /// Free node ids awaiting reuse (slots cleared).
    node_free: Vec<u32>,
    /// Reused coordinate buffer for the update path.
    scratch: Vec<usize>,
    counter: OpCounter,
}

impl<G: AbelianGroup> DdcTree<G> {
    /// An empty (all-zero) tree covering `[0, side)^d`.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not a power of two or `d == 0`.
    pub fn new(d: usize, side: usize, config: DdcConfig) -> Self {
        assert!(d >= 1, "dimensionality must be at least 1");
        assert!(side.is_power_of_two(), "side {side} must be a power of two");
        Self {
            d,
            side,
            config,
            root: ChildRef::EMPTY,
            children: Vec::new(),
            boxes: Vec::new(),
            leaves: LeafArena::Mem(MemStore::new()),
            node_free: Vec::new(),
            scratch: Vec::new(),
            counter: OpCounter::new(),
        }
    }

    /// Box slots per node.
    #[inline]
    fn stride(&self) -> usize {
        1 << self.d
    }

    /// Allocates a node id, preferring the free list; fresh slots are
    /// already cleared (children empty, boxes vacant).
    fn alloc_node(&mut self) -> u32 {
        if let Some(id) = self.node_free.pop() {
            return id;
        }
        let stride = self.stride();
        let id = (self.children.len() / stride) as u32;
        assert!(id < LEAF_BIT, "node arena overflow");
        self.children
            .resize(self.children.len() + stride, ChildRef::EMPTY);
        self.boxes.resize_with(self.boxes.len() + stride, || None);
        id
    }

    /// Stores a leaf block, preferring a free slot.
    fn alloc_leaf(&mut self, block: LeafBlock<G>) -> u32 {
        let id = self.leaves.insert(block);
        assert!(id < LEAF_BIT - 1, "leaf arena overflow");
        id
    }

    /// Clears one node's slots (dropping its boxes) and free-lists it.
    fn free_node(&mut self, id: u32) {
        let base = (id as usize) << self.d;
        for s in 0..self.stride() {
            self.children[base + s] = ChildRef::EMPTY;
            self.boxes[base + s] = None;
        }
        self.node_free.push(id);
    }

    /// Vacates one leaf slot and free-lists it.
    fn free_leaf(&mut self, id: u32) {
        self.leaves.remove(id);
    }

    /// Returns a whole subtree's slots to the free lists.
    fn free_subtree(&mut self, c: ChildRef) {
        if c.is_empty() {
            return;
        }
        if c.is_leaf() {
            self.free_leaf(c.index() as u32);
            return;
        }
        let base = c.index() << self.d;
        for s in 0..self.stride() {
            self.free_subtree(self.children[base + s]);
        }
        self.free_node(c.index() as u32);
    }

    /// Bulk-builds a tree over `a` (padded with zeros up to `side`) in one
    /// bottom-up pass: each overlay box's subtotal and raw row-sum groups
    /// are accumulated by a single scan of its region and handed to the
    /// secondary structures' `from_values` constructors — `O(d · N log n)`
    /// cell visits in total, with none of the per-cell structure descents
    /// the incremental path pays.
    pub fn from_array_sized(a: &NdArray<G>, side: usize, config: DdcConfig) -> Self {
        let d = a.shape().ndim();
        assert!(side.is_power_of_two());
        assert!(
            a.shape().dims().iter().all(|&n| n <= side),
            "array {} exceeds side {side}",
            a.shape()
        );
        let mut tree = Self::new(d, side, config);
        let lo = vec![0usize; d];
        tree.root = tree.build_child(a, side, &lo);
        tree
    }

    /// Builds the subtree covering `[lo, lo + side)` into the arenas;
    /// `EMPTY` when the region holds no non-zero cells.
    fn build_child(&mut self, a: &NdArray<G>, side: usize, lo: &[usize]) -> ChildRef {
        let d = self.d;
        for (&l, &n) in lo.iter().zip(a.shape().dims()) {
            if l >= n {
                return ChildRef::EMPTY; // fully in the zero padding
            }
        }
        if side <= self.leaf_side() {
            // Intersection of the covered region with the array's extent.
            let mut hi = Vec::with_capacity(d);
            for (&l, &n) in lo.iter().zip(a.shape().dims()) {
                hi.push((l + side - 1).min(n - 1));
            }
            let region = Region::new(lo, &hi);
            let mut block = LeafBlock::zeroed(d, side);
            let mut any = false;
            let mut buf = vec![0usize; d];
            let mut rel = vec![0usize; d];
            let mut iter = region.iter_points();
            while iter.next_into(&mut buf) {
                let v = a.get(&buf);
                if !v.is_zero() {
                    any = true;
                    for (r, (&c, &l)) in rel.iter_mut().zip(buf.iter().zip(lo.iter())) {
                        *r = c - l;
                    }
                    block.cells.add_assign(&rel, v);
                }
            }
            return if any {
                ChildRef::leaf(self.alloc_leaf(block))
            } else {
                ChildRef::EMPTY
            };
        }

        let k = side / 2;
        let id = self.alloc_node();
        let mut any_box = false;
        let mut box_lo = vec![0usize; d];
        for bi in 0..self.stride() {
            for i in 0..d {
                box_lo[i] = lo[i] + if bi & (1 << i) != 0 { k } else { 0 };
            }
            if let Some(obox) = Self::scan_box(a, k, &box_lo, d, &self.config) {
                any_box = true;
                let child = self.build_child(a, k, &box_lo);
                let base = (id as usize) << d;
                self.boxes[base + bi] = Some(obox);
                self.children[base + bi] = child;
            }
        }
        if any_box {
            ChildRef::node(id)
        } else {
            self.free_node(id);
            ChildRef::EMPTY
        }
    }

    /// Scans region `[box_lo, box_lo + k)` of `a`, accumulating one
    /// overlay box (subtotal + row-sum groups); `None` when the region
    /// holds no non-zero cells.
    fn scan_box(
        a: &NdArray<G>,
        k: usize,
        box_lo: &[usize],
        d: usize,
        config: &DdcConfig,
    ) -> Option<OverlayBox<G>> {
        let mut hi = Vec::with_capacity(d);
        for (&l, &n) in box_lo.iter().zip(a.shape().dims()) {
            if l >= n {
                return None;
            }
            hi.push((l + k - 1).min(n - 1));
        }
        let box_region = Region::new(box_lo, &hi);
        let mut subtotal = G::ZERO;
        let mut any = false;
        let mut raws: Vec<NdArray<G>> = if d >= 2 {
            (0..d)
                .map(|_| NdArray::zeroed(Shape::cube(d - 1, k)))
                .collect()
        } else {
            Vec::new()
        };
        let mut buf = vec![0usize; d];
        let mut cross = vec![0usize; d.saturating_sub(1)];
        let mut iter = box_region.iter_points();
        while iter.next_into(&mut buf) {
            let v = a.get(&buf);
            if v.is_zero() {
                continue;
            }
            any = true;
            subtotal = subtotal.add(v);
            for (j, raw) in raws.iter_mut().enumerate() {
                let mut w = 0;
                for i in 0..d {
                    if i != j {
                        cross[w] = buf[i] - box_lo[i];
                        w += 1;
                    }
                }
                raw.add_assign(&cross, v);
            }
        }
        if !any {
            return None;
        }
        let faces: Vec<Secondary<G>> = raws
            .iter()
            .map(|raw| Secondary::build_from_raw(raw, config))
            .collect();
        Some(OverlayBox {
            subtotal,
            faces: faces.into_boxed_slice(),
        })
    }

    /// Like [`DdcTree::from_array_sized`], but builds the `2^d` root
    /// subtrees on separate threads. Each thread builds a standalone
    /// fragment tree (arena indices are fragment-local); the main thread
    /// grafts the fragments onto the final arenas with an index remap.
    /// The subtrees are disjoint, so this is a straightforward
    /// fork-join; speedup approaches the number of *populated* root
    /// quadrants.
    pub fn from_array_parallel(a: &NdArray<G>, side: usize, config: DdcConfig) -> Self {
        let d = a.shape().ndim();
        assert!(side.is_power_of_two());
        assert!(
            a.shape().dims().iter().all(|&n| n <= side),
            "array {} exceeds side {side}",
            a.shape()
        );
        let mut tree = Self::new(d, side, config);
        if side <= tree.leaf_side() {
            let lo = vec![0usize; d];
            tree.root = tree.build_child(a, side, &lo);
            return tree;
        }
        let k = side / 2;
        let results: Vec<Option<(OverlayBox<G>, DdcTree<G>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..(1usize << d))
                .map(|bi| {
                    let config = &config;
                    scope.spawn(move || {
                        let box_lo: Vec<usize> = (0..d)
                            .map(|i| if bi & (1 << i) != 0 { k } else { 0 })
                            .collect();
                        let obox = Self::scan_box(a, k, &box_lo, d, config)?;
                        let mut frag = Self::new(d, k, *config);
                        frag.root = frag.build_child(a, k, &box_lo);
                        Some((obox, frag))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("builder thread panicked"))
                .collect()
        });
        let id = tree.alloc_node();
        let base = (id as usize) << d;
        let mut any = false;
        for (bi, r) in results.into_iter().enumerate() {
            if let Some((obox, frag)) = r {
                any = true;
                let child = tree.graft(frag);
                tree.boxes[base + bi] = Some(obox);
                tree.children[base + bi] = child;
            }
        }
        if any {
            tree.root = ChildRef::node(id);
        } else {
            tree.free_node(id);
        }
        tree
    }

    /// Appends a fragment tree's arenas onto ours, remapping every
    /// reference by the arena offsets; returns the fragment's re-based
    /// root. The fragment must share our dimensionality.
    fn graft(&mut self, frag: DdcTree<G>) -> ChildRef {
        debug_assert_eq!(frag.d, self.d);
        let stride = self.stride();
        let node_off = (self.children.len() / stride) as u32;
        let leaf_off = self.leaves.slots() as u32;
        let remap = |c: ChildRef| -> ChildRef {
            if c.is_empty() {
                c
            } else if c.is_leaf() {
                ChildRef::leaf(c.index() as u32 + leaf_off)
            } else {
                ChildRef::node(c.index() as u32 + node_off)
            }
        };
        let root = remap(frag.root);
        self.children
            .extend(frag.children.iter().map(|&c| remap(c)));
        self.boxes.extend(frag.boxes);
        // Fragments are freshly built, hence always on the slab; grafting
        // targets freshly built trees too (paging is enabled only after
        // construction), so the wholesale slab append is the only arm.
        match (&mut self.leaves, frag.leaves) {
            (LeafArena::Mem(dst), LeafArena::Mem(src)) => {
                dst.absorb(src);
            }
            _ => panic!("graft requires slab leaf arenas on both sides"),
        }
        self.node_free
            .extend(frag.node_free.iter().map(|&id| id + node_off));
        root
    }

    /// Dimensionality `d`.
    pub fn ndim(&self) -> usize {
        self.d
    }

    /// Covered side length (power of two).
    pub fn side(&self) -> usize {
        self.side
    }

    /// The construction configuration.
    pub fn config(&self) -> &DdcConfig {
        &self.config
    }

    /// The tree's operation counter.
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }

    /// Snapshot of the operation counter.
    pub fn ops(&self) -> OpSnapshot {
        self.counter.snapshot()
    }

    fn leaf_side(&self) -> usize {
        // Boxes of this side hold dense leaf blocks instead of child
        // nodes; see §4.4 and the module docs.
        self.config.leaf_block_side().min(self.side)
    }

    /// `SUM(A[0,…,0] : A[x])` — Figure 10's `CalculateRegionSum`, as an
    /// iterative arena walk. At a node of half-side `k`, let `h` be the
    /// bitmask of dimensions whose (node-local) target coordinate is in
    /// the high half; the contributing boxes are exactly the submasks
    /// `s ⊆ h` — the box covers the target region fully in the
    /// dimensions `h \ s`, so it contributes its subtotal when
    /// `h \ s` is every dimension, a row-sum value otherwise, and the
    /// query descends into the `s = h` box. Cross coordinates are
    /// mask-selected (full → `k−1`, cut → `x & (k−1)`) with no
    /// per-dimension branching.
    pub fn prefix_sum(&self, x: &[usize]) -> G {
        let d = self.d;
        assert_eq!(x.len(), d);
        debug_assert!(x.iter().all(|&c| c < self.side));
        let all_mask = (1usize << d) - 1;
        let mut buf = vec![0usize; 2 * d];
        let (rel, cross) = buf.split_at_mut(d);
        rel.copy_from_slice(x);
        let mut cur = self.root;
        let mut side = self.side;
        let mut acc = G::ZERO;
        loop {
            if cur.is_empty() {
                return acc;
            }
            if cur.is_leaf() {
                let counter = &self.counter;
                acc = acc.add(self.leaves.with(cur.index() as u32, |b| match b {
                    Some(block) => block.prefix(rel, counter),
                    None => G::ZERO,
                }));
                return acc;
            }
            let k = side >> 1;
            let base = cur.index() << d;
            let mut h_mask = 0usize;
            for (i, r) in rel.iter().enumerate() {
                h_mask |= usize::from(*r >= k) << i;
            }
            // Ascending submask enumeration of h_mask; the final
            // submask (h_mask itself) is the descend box, handled
            // after the loop so its subtotal never contributes.
            let mut s = 0usize;
            while s != h_mask {
                if let Some(b) = &self.boxes[base + s] {
                    let full = h_mask & !s;
                    if full == all_mask {
                        self.counter.read(1);
                        acc = acc.add(b.subtotal);
                    } else {
                        let j = full.trailing_zeros() as usize;
                        let mut w = 0;
                        for (i, r) in rel.iter().enumerate() {
                            if i == j {
                                continue;
                            }
                            let f = ((full >> i) & 1).wrapping_neg();
                            cross[w] = ((k - 1) & f) | (*r & (k - 1) & !f);
                            w += 1;
                        }
                        acc = acc.add(b.faces[j].prefix(&cross[..w], &self.counter));
                    }
                }
                s = s.wrapping_sub(h_mask) & h_mask;
            }
            cur = self.children[base + h_mask];
            for r in rel.iter_mut() {
                *r &= k - 1;
            }
            side = k;
        }
    }

    /// Like [`DdcTree::prefix_sum`], additionally recording which overlay
    /// box contributed what — the paper's Figure 11 walkthrough as data.
    /// Returns the steps in visit order (box index ascending, descent
    /// last at each node); the sum of their values is the prefix sum.
    pub fn trace_prefix(&self, x: &[usize]) -> Vec<TraceStep<G>> {
        assert_eq!(x.len(), self.d);
        let mut steps = Vec::new();
        if self.root.is_empty() {
            return steps;
        }
        if self.root.is_leaf() {
            self.leaves.with(self.root.index() as u32, |b| {
                if let Some(block) = b {
                    let cells = Region::prefix(x).cells();
                    steps.push(TraceStep {
                        level: 0,
                        box_anchor: vec![0; self.d],
                        box_side: self.side,
                        kind: Contribution::LeafCells { cells },
                        value: block.prefix(x, &self.counter),
                    });
                }
            });
            return steps;
        }
        let lo = vec![0usize; self.d];
        self.trace_node(self.root.index(), self.side, &lo, x, 0, &mut steps);
        steps
    }

    fn trace_node(
        &self,
        node_ix: usize,
        side: usize,
        lo: &[usize],
        x: &[usize],
        level: usize,
        steps: &mut Vec<TraceStep<G>>,
    ) {
        let d = self.d;
        let k = side / 2;
        let base = node_ix << d;
        let all_mask = (1usize << d) - 1;
        let mut h_mask = 0usize;
        for i in 0..d {
            h_mask |= usize::from(x[i] >= lo[i] + k) << i;
        }
        let mut s = 0usize;
        loop {
            let box_lo: Vec<usize> = (0..d)
                .map(|i| lo[i] + if s & (1 << i) != 0 { k } else { 0 })
                .collect();
            if s == h_mask {
                // The box covering the target cell: descend.
                steps.push(TraceStep {
                    level,
                    box_anchor: box_lo.clone(),
                    box_side: k,
                    kind: Contribution::Descend,
                    value: G::ZERO,
                });
                let c = self.children[base + s];
                if c.is_leaf() {
                    self.leaves.with(c.index() as u32, |b| {
                        if let Some(block) = b {
                            let rel: Vec<usize> =
                                x.iter().zip(box_lo.iter()).map(|(&c, &l)| c - l).collect();
                            let cells = Region::prefix(&rel).cells();
                            steps.push(TraceStep {
                                level: level + 1,
                                box_anchor: box_lo,
                                box_side: k,
                                kind: Contribution::LeafCells { cells },
                                value: block.prefix(&rel, &self.counter),
                            });
                        }
                    });
                } else if !c.is_empty() {
                    self.trace_node(c.index(), k, &box_lo, x, level + 1, steps);
                }
                return;
            }
            if let Some(b) = &self.boxes[base + s] {
                let full = h_mask & !s;
                if full == all_mask {
                    steps.push(TraceStep {
                        level,
                        box_anchor: box_lo,
                        box_side: k,
                        kind: Contribution::Subtotal,
                        value: b.subtotal,
                    });
                } else {
                    let j = full.trailing_zeros() as usize;
                    let mut cross = Vec::with_capacity(d - 1);
                    for i in 0..d {
                        if i == j {
                            continue;
                        }
                        cross.push(if (full >> i) & 1 != 0 {
                            k - 1
                        } else {
                            x[i] - box_lo[i]
                        });
                    }
                    steps.push(TraceStep {
                        level,
                        box_anchor: box_lo,
                        box_side: k,
                        kind: Contribution::RowSum { axis: j },
                        value: b.faces[j].prefix(&cross, &self.counter),
                    });
                }
            }
            s = s.wrapping_sub(h_mask) & h_mask;
        }
    }

    /// Adds `delta` to cell `x` — Figure 12's `UpdateCell`, expressed with
    /// the difference value directly. Iterative: one box per level
    /// absorbs the delta, then the walk descends to the leaf cell,
    /// materializing arena slots on demand.
    pub fn apply_delta(&mut self, x: &[usize], delta: G) {
        let d = self.d;
        assert_eq!(x.len(), d);
        assert!(
            x.iter().all(|&c| c < self.side),
            "{x:?} outside side {}",
            self.side
        );
        if delta.is_zero() {
            return;
        }
        let leaf_side = self.leaf_side();
        if self.side <= leaf_side {
            // Degenerate: the whole space is one leaf block.
            if self.root.is_empty() {
                let block = LeafBlock::zeroed(d, self.side);
                self.root = ChildRef::leaf(self.alloc_leaf(block));
            }
            let ix = self.root.index() as u32;
            let counter = &self.counter;
            self.leaves.with_mut(ix, |b| {
                if let Some(block) = b {
                    block.cells.add_assign(x, delta);
                    counter.write(1);
                }
            });
            return;
        }
        if self.root.is_empty() {
            let id = self.alloc_node();
            self.root = ChildRef::node(id);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.resize(2 * d, 0);
        let (rel, cross) = scratch.split_at_mut(d);
        rel.copy_from_slice(x);
        let mut cur = self.root.index();
        let mut k = self.side >> 1;
        loop {
            let base = cur << d;
            // Exactly one box covers the cell (§3.2): its index comes
            // from the coordinate high bits; rel becomes box-local.
            let mut bi = 0usize;
            for (i, r) in rel.iter_mut().enumerate() {
                bi |= usize::from(*r >= k) << i;
                *r &= k - 1;
            }
            let bix = base + bi;
            if self.boxes[bix].is_none() {
                self.boxes[bix] = Some(OverlayBox::new(d));
            }
            // Disjoint field borrows: boxes mutably, config/counter shared.
            let config = &self.config;
            let counter = &self.counter;
            if let Some(obox) = self.boxes[bix].as_mut() {
                obox.subtotal = obox.subtotal.add(delta);
                counter.write(1);
                // "for each set of row sum values (d sets): add
                // difference" — group j is indexed by the box-local
                // offsets of the other dims.
                if d >= 2 {
                    for j in 0..d {
                        let mut w = 0;
                        for (i, r) in rel.iter().enumerate() {
                            if i != j {
                                cross[w] = *r;
                                w += 1;
                            }
                        }
                        obox.faces[j].add(&cross[..w], delta, k, config, counter);
                    }
                }
            }
            // Descend to the leaf holding the raw cell.
            debug_assert!(k >= leaf_side, "box side {k} below leaf side {leaf_side}");
            let child = self.children[bix];
            if k == leaf_side {
                let leaf_ix = if child.is_empty() {
                    let id = self.alloc_leaf(LeafBlock::zeroed(d, k));
                    self.children[bix] = ChildRef::leaf(id);
                    id
                } else {
                    child.index() as u32
                };
                let counter = &self.counter;
                self.leaves.with_mut(leaf_ix, |b| {
                    if let Some(block) = b {
                        block.cells.add_assign(rel, delta);
                        counter.write(1);
                    }
                });
                break;
            }
            cur = if child.is_empty() {
                let id = self.alloc_node();
                self.children[bix] = ChildRef::node(id);
                id as usize
            } else {
                child.index()
            };
            k >>= 1;
        }
        scratch.clear();
        self.scratch = scratch;
    }

    /// Reads one raw cell by direct descent (`O(log n)`).
    pub fn cell(&self, x: &[usize]) -> G {
        assert_eq!(x.len(), self.d);
        assert!(x.iter().all(|&c| c < self.side));
        let mut cur = self.root;
        let mut side = self.side;
        let mut rel = x.to_vec();
        loop {
            if cur.is_empty() {
                return G::ZERO;
            }
            if cur.is_leaf() {
                self.counter.read(1);
                return self.leaves.with(cur.index() as u32, |b| match b {
                    Some(block) => block.cells.get(&rel),
                    None => G::ZERO,
                });
            }
            let k = side / 2;
            let base = cur.index() << self.d;
            let mut bi = 0usize;
            for (i, r) in rel.iter_mut().enumerate() {
                if *r >= k {
                    bi |= 1 << i;
                    *r -= k;
                }
            }
            cur = self.children[base + bi];
            side = k;
        }
    }

    /// Sum of the whole space.
    pub fn total(&self) -> G {
        if self.root.is_empty() {
            return G::ZERO;
        }
        if self.root.is_leaf() {
            return self.leaves.with(self.root.index() as u32, |b| match b {
                Some(block) => block.total(),
                None => G::ZERO,
            });
        }
        let base = self.root.index() << self.d;
        self.boxes[base..base + self.stride()]
            .iter()
            .flatten()
            .fold(G::ZERO, |acc, b| acc.add(b.subtotal))
    }

    /// Invokes `f` for every non-zero raw cell with its coordinates.
    pub fn for_each_nonzero(&self, f: &mut impl FnMut(&[usize], G)) {
        let lo = vec![0usize; self.d];
        self.walk_nonzero(self.root, self.side, &lo, f);
    }

    fn walk_nonzero(
        &self,
        c: ChildRef,
        side: usize,
        lo: &[usize],
        f: &mut impl FnMut(&[usize], G),
    ) {
        if c.is_empty() {
            return;
        }
        if c.is_leaf() {
            self.leaves.with(c.index() as u32, |b| {
                if let Some(block) = b {
                    let mut abs = lo.to_vec();
                    for rel in block.cells.shape().iter_points() {
                        let v = block.cells.get(&rel);
                        if !v.is_zero() {
                            for (a, (&l, &r)) in abs.iter_mut().zip(lo.iter().zip(rel.iter())) {
                                *a = l + r;
                            }
                            f(&abs, v);
                        }
                    }
                }
            });
            return;
        }
        let d = self.d;
        let k = side / 2;
        let base = c.index() << d;
        let mut box_lo = vec![0usize; d];
        for bi in 0..self.stride() {
            for i in 0..d {
                box_lo[i] = lo[i] + if bi & (1 << i) != 0 { k } else { 0 };
            }
            self.walk_nonzero(self.children[base + bi], k, &box_lo, f);
        }
    }

    /// Number of non-zero raw cells.
    pub fn populated_cells(&self) -> usize {
        let mut n = 0;
        self.for_each_nonzero(&mut |_, _| n += 1);
        n
    }

    /// Doubles the covered side. Dimensions flagged `true` in `low` grow
    /// toward smaller coordinates: existing content shifts up by the old
    /// side in those dimensions (callers track the logical origin with
    /// [`ddc_array::CoordMap`]). Other dimensions grow append-style.
    ///
    /// The old root becomes one child of the new root; only the new
    /// root-level overlay box is rebuilt, by replaying the populated cells
    /// into its subtotal and row-sum groups.
    pub fn grow(&mut self, low: &[bool]) {
        assert_eq!(low.len(), self.d);
        let old_side = self.side;
        self.side = old_side.checked_mul(2).expect("side overflow");
        let old_root = self.root;
        self.root = ChildRef::EMPTY;
        if old_root.is_empty() {
            return;
        }
        let d = self.d;
        if self.side <= self.config.leaf_block_side() {
            // The grown space still fits in one dense leaf block: rebuild
            // it with the content shifted in the lowered dimensions.
            let mut block = LeafBlock::zeroed(d, self.side);
            let shift: Vec<usize> = low.iter().map(|&l| if l { old_side } else { 0 }).collect();
            let mut q = vec![0usize; d];
            self.walk_nonzero(old_root, old_side, &vec![0usize; d], &mut |p, v| {
                for (qi, (&pi, &s)) in q.iter_mut().zip(p.iter().zip(shift.iter())) {
                    *qi = pi + s;
                }
                block.cells.add_assign(&q, v);
            });
            self.free_subtree(old_root);
            self.root = ChildRef::leaf(self.alloc_leaf(block));
            return;
        }
        // The old region lands in the high half of every lowered dim.
        let mut bi = 0usize;
        for (i, &l) in low.iter().enumerate() {
            if l {
                bi |= 1 << i;
            }
        }
        let mut obox = OverlayBox::<G>::new(d);
        // Rebuild this box's values from the populated cells of the old
        // space (coordinates are already box-local).
        let k = old_side;
        let config = self.config;
        {
            let counter = &self.counter;
            let mut cross = vec![0usize; d.saturating_sub(1)];
            self.walk_nonzero(old_root, old_side, &vec![0usize; d], &mut |p, v| {
                obox.subtotal = obox.subtotal.add(v);
                counter.write(1);
                if d >= 2 {
                    for j in 0..d {
                        let mut w = 0;
                        for (i, &c) in p.iter().enumerate() {
                            if i != j {
                                cross[w] = c;
                                w += 1;
                            }
                        }
                        obox.faces[j].add(&cross[..w], v, k, &config, counter);
                    }
                }
            });
        }
        let id = self.alloc_node();
        let base = (id as usize) << d;
        self.boxes[base + bi] = Some(obox);
        self.children[base + bi] = old_root;
        self.root = ChildRef::node(id);
    }

    /// Reclaims storage left behind by cancelling updates: all-zero leaf
    /// blocks and subtrees whose every cell returned to zero go back to
    /// the arena free lists (with their overlay boxes and secondary
    /// structures), and when free slots outnumber live ones the arenas
    /// are compacted into exactly-sized replacements, releasing the
    /// memory. Returns the number of heap bytes released.
    ///
    /// Lazily materialized structures never free themselves on the update
    /// path (a cell may go through zero transiently); churn-heavy
    /// workloads call this at their own cadence.
    pub fn prune(&mut self) -> usize {
        let before = self.heap_bytes();
        let root = self.root;
        if !self.prune_live(root) {
            self.free_subtree(root);
            self.root = ChildRef::EMPTY;
        }
        self.maybe_compact();
        before.saturating_sub(self.heap_bytes())
    }

    /// Returns whether the child still holds any non-zero content; dead
    /// descendants are freed and their slots cleared.
    fn prune_live(&mut self, c: ChildRef) -> bool {
        if c.is_empty() {
            return false;
        }
        if c.is_leaf() {
            return self.leaves.with(c.index() as u32, |b| match b {
                Some(block) => block.cells.populated_cells() > 0,
                None => false,
            });
        }
        let base = c.index() << self.d;
        let mut any = false;
        for s in 0..self.stride() {
            let child = self.children[base + s];
            if self.prune_live(child) {
                any = true;
            } else {
                self.free_subtree(child);
                self.children[base + s] = ChildRef::EMPTY;
                // A box over an empty region contributes only zeros;
                // drop it with its secondary structures.
                if let Some(b) = &self.boxes[base + s] {
                    debug_assert!(b.subtotal.is_zero());
                }
                self.boxes[base + s] = None;
            }
        }
        any
    }

    /// Compacts when free slots outnumber live ones in either arena.
    /// Paged leaf slots are excluded from the trigger: compaction cannot
    /// renumber them (ids are stable on pages), so they must not be able
    /// to force it either.
    fn maybe_compact(&mut self) {
        let live_nodes = self.children.len() / self.stride() - self.node_free.len();
        let leaf_free = match &self.leaves {
            LeafArena::Mem(m) => m.free_len(),
            LeafArena::Paged(_) => 0,
        };
        let live_leaves = self.leaves.slots() - self.leaves.free_len();
        if self.node_free.len() + leaf_free > live_nodes + live_leaves {
            self.compact();
        }
    }

    /// Rewrites the arenas to hold exactly the reachable slots (pre-order
    /// renumbering), dropping all free-list capacity. A paged leaf arena
    /// keeps its slot ids — its records live on pages, not in a `Vec`
    /// whose capacity could be returned, so only the node arena (and a
    /// slab leaf arena, when present) is rebuilt.
    fn compact(&mut self) {
        let stride = self.stride();
        let live_nodes = self.children.len() / stride - self.node_free.len();
        let mut children = Vec::with_capacity(live_nodes * stride);
        let mut boxes = Vec::with_capacity(live_nodes * stride);
        let mut leaves = match self.leaves {
            LeafArena::Mem(_) => Some(MemStore::new()),
            LeafArena::Paged(_) => None,
        };
        let root = self.root;
        let new_root = self.move_child(root, &mut children, &mut boxes, &mut leaves);
        self.children = children;
        self.boxes = boxes;
        if let Some(store) = leaves {
            self.leaves = LeafArena::Mem(store);
        }
        self.node_free = Vec::new();
        self.root = new_root;
    }

    /// Moves one subtree into the replacement arenas, reserving the
    /// parent's slot block before recursing so ids are pre-order.
    /// `leaves` is `None` when the leaf arena is paged and keeps its ids.
    fn move_child(
        &mut self,
        c: ChildRef,
        children: &mut Vec<ChildRef>,
        boxes: &mut Vec<Option<OverlayBox<G>>>,
        leaves: &mut Option<MemStore<LeafBlock<G>>>,
    ) -> ChildRef {
        if c.is_empty() {
            return ChildRef::EMPTY;
        }
        if c.is_leaf() {
            let Some(store) = leaves else {
                return c; // paged arena: leaf ids are stable
            };
            let block = match &mut self.leaves {
                LeafArena::Mem(m) => m.take(c.index() as u32),
                LeafArena::Paged(_) => unreachable!("slab replacement built for slab arena"),
            };
            let Some(block) = block else {
                panic!("reachable leaf slot {} is vacant", c.index());
            };
            return ChildRef::leaf(store.insert(block));
        }
        let stride = self.stride();
        let old_base = c.index() << self.d;
        let id = (children.len() / stride) as u32;
        let new_base = children.len();
        children.resize(new_base + stride, ChildRef::EMPTY);
        boxes.resize_with(new_base + stride, || None);
        for s in 0..stride {
            boxes[new_base + s] = self.boxes[old_base + s].take();
            let moved = self.move_child(self.children[old_base + s], children, boxes, leaves);
            children[new_base + s] = moved;
        }
        ChildRef::node(id)
    }

    /// Collects structural statistics by one traversal — the storage
    /// profile behind Table 2 and §4.4 ("most of the additional storage
    /// … is found in the lowest levels of the tree") plus the arena
    /// occupancy counters.
    pub fn stats(&self) -> TreeStats {
        let mut stats = TreeStats {
            node_slots: self.children.len() / self.stride(),
            free_node_slots: self.node_free.len(),
            leaf_slots: self.leaves.slots(),
            free_leaf_slots: self.leaves.free_len(),
            ..TreeStats::default()
        };
        self.collect_stats(self.root, self.side, 0, &mut stats);
        stats.total_bytes = self.heap_bytes();
        stats
    }

    fn collect_stats(&self, c: ChildRef, side: usize, level: usize, stats: &mut TreeStats) {
        while stats.per_level.len() <= level {
            stats.per_level.push(LevelStats::default());
        }
        stats.per_level[level].side = side;
        if c.is_empty() {
            return;
        }
        if c.is_leaf() {
            self.leaves.with(c.index() as u32, |b| {
                if let Some(block) = b {
                    stats.leaf_blocks += 1;
                    stats.leaf_cells += block.cells.shape().cells();
                    stats.depth = stats.depth.max(level);
                    stats.per_level[level].leaf_blocks += 1;
                }
            });
            return;
        }
        stats.nodes += 1;
        stats.depth = stats.depth.max(level);
        stats.per_level[level].nodes += 1;
        let k = side / 2;
        let base = c.index() << self.d;
        for s in 0..self.stride() {
            if let Some(b) = &self.boxes[base + s] {
                stats.boxes += 1;
                stats.per_level[level].boxes += 1;
                stats.secondary_bytes += b.faces.iter().map(Secondary::heap_bytes).sum::<usize>();
            }
            self.collect_stats(self.children[base + s], k, level + 1, stats);
        }
    }

    /// Approximate heap bytes held by the whole structure: arena
    /// capacities plus the heap behind live boxes and leaf blocks.
    pub fn heap_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>()
            + self.children.capacity() * std::mem::size_of::<ChildRef>()
            + self.boxes.capacity() * std::mem::size_of::<Option<OverlayBox<G>>>()
            + self.node_free.capacity() * std::mem::size_of::<u32>()
            + self.scratch.capacity() * std::mem::size_of::<usize>();
        for b in self.boxes.iter().flatten() {
            bytes += b.inner_heap_bytes();
        }
        bytes += match &self.leaves {
            LeafArena::Mem(m) => {
                m.slab_bytes()
                    + m.iter_occupied()
                        .map(|(_, block)| block.cells.heap_bytes())
                        .sum::<usize>()
            }
            // Paged: only *resident* bytes count — spilled pages are the
            // whole point of the backend.
            LeafArena::Paged(p) => p.heap_bytes(),
        };
        bytes
    }

    /// Validates structural invariants, returning the tree total:
    /// every overlay box's subtotal equals its child's content sum, and
    /// every row-sum group's full-prefix equals the subtotal.
    ///
    /// # Panics
    ///
    /// Panics on any violation (test/diagnostic use).
    pub fn check_invariants(&self) -> G {
        self.check_child(self.root, self.side)
    }

    fn check_child(&self, c: ChildRef, side: usize) -> G {
        let d = self.d;
        if c.is_empty() {
            return G::ZERO;
        }
        if c.is_leaf() {
            return self.leaves.with(c.index() as u32, |b| {
                let Some(block) = b else {
                    panic!("leaf ref {} points at a vacant slot", c.index());
                };
                assert_eq!(
                    block.cells.shape().dims(),
                    &vec![side; d][..],
                    "leaf block shape mismatch"
                );
                block.total()
            });
        }
        let k = side / 2;
        let base = c.index() << d;
        let mut total = G::ZERO;
        for bi in 0..self.stride() {
            let child_total = self.check_child(self.children[base + bi], k);
            match &self.boxes[base + bi] {
                None => assert!(
                    child_total.is_zero(),
                    "missing box over non-empty child (sum {child_total:?})"
                ),
                Some(b) => {
                    assert_eq!(
                        b.subtotal, child_total,
                        "subtotal does not match child content"
                    );
                    if d >= 2 {
                        let full = vec![k - 1; d - 1];
                        for (j, face) in b.faces.iter().enumerate() {
                            if matches!(face, Secondary::Empty) {
                                assert!(b.subtotal.is_zero(), "empty face under non-zero subtotal");
                                continue;
                            }
                            let fp = face.prefix(&full, &self.counter);
                            assert_eq!(
                                fp, b.subtotal,
                                "face {j} full prefix disagrees with subtotal"
                            );
                        }
                    }
                    total = total.add(b.subtotal);
                }
            }
        }
        total
    }

    /// Audits the arena bookkeeping: every reachable reference is in
    /// bounds and occupied, no slot is reached twice, free-list entries
    /// are valid, unique, cleared, and disjoint from the reachable set,
    /// and every slot is either reachable or free (no leaks). Returns
    /// `(reachable_nodes, reachable_leaves)`.
    ///
    /// # Panics
    ///
    /// Panics on any violation (test/diagnostic use).
    pub fn check_arena(&self) -> (usize, usize) {
        let stride = self.stride();
        assert_eq!(
            self.children.len() % stride,
            0,
            "node arena length not a slot multiple"
        );
        assert_eq!(
            self.children.len(),
            self.boxes.len(),
            "children/boxes arenas out of step"
        );
        let node_slots = self.children.len() / stride;
        let mut node_seen = vec![false; node_slots];
        let mut leaf_seen = vec![false; self.leaves.slots()];
        self.mark_reachable(self.root, &mut node_seen, &mut leaf_seen);
        let mut node_freed = vec![false; node_slots];
        for &id in &self.node_free {
            let ix = id as usize;
            assert!(ix < node_slots, "free node id {id} out of bounds");
            assert!(!node_freed[ix], "node id {id} twice on the free list");
            node_freed[ix] = true;
            assert!(!node_seen[ix], "node id {id} both free and reachable");
            let base = ix * stride;
            for s in 0..stride {
                assert!(
                    self.children[base + s].is_empty(),
                    "free node {id} still has a child"
                );
                assert!(
                    self.boxes[base + s].is_none(),
                    "free node {id} still holds a box"
                );
            }
        }
        let mut leaf_freed = vec![false; self.leaves.slots()];
        for id in self.leaves.free_ids() {
            let ix = id as usize;
            assert!(ix < self.leaves.slots(), "free leaf id {id} out of bounds");
            assert!(!leaf_freed[ix], "leaf id {id} twice on the free list");
            leaf_freed[ix] = true;
            assert!(!leaf_seen[ix], "leaf id {id} both free and reachable");
            assert!(
                !self.leaves.is_occupied(id),
                "free leaf slot {id} still holds a block"
            );
        }
        for ix in 0..node_slots {
            assert!(node_seen[ix] || node_freed[ix], "node slot {ix} leaked");
        }
        for ix in 0..self.leaves.slots() {
            assert!(leaf_seen[ix] || leaf_freed[ix], "leaf slot {ix} leaked");
        }
        if let LeafArena::Paged(p) = &self.leaves {
            p.audit();
        }
        (
            node_seen.iter().filter(|&&v| v).count(),
            leaf_seen.iter().filter(|&&v| v).count(),
        )
    }

    fn mark_reachable(&self, c: ChildRef, node_seen: &mut [bool], leaf_seen: &mut [bool]) {
        if c.is_empty() {
            return;
        }
        if c.is_leaf() {
            let ix = c.index();
            assert!(ix < leaf_seen.len(), "dangling leaf ref {ix}");
            assert!(!leaf_seen[ix], "leaf slot {ix} referenced twice");
            assert!(
                self.leaves.is_occupied(ix as u32),
                "reachable leaf slot {ix} is vacant"
            );
            leaf_seen[ix] = true;
            return;
        }
        let ix = c.index();
        assert!(ix < node_seen.len(), "dangling node ref {ix}");
        assert!(!node_seen[ix], "node slot {ix} referenced twice");
        node_seen[ix] = true;
        let base = ix << self.d;
        for s in 0..self.stride() {
            self.mark_reachable(self.children[base + s], node_seen, leaf_seen);
        }
    }

    /// True once `enable_paging` has moved the leaf arena onto pages.
    pub fn is_paged(&self) -> bool {
        matches!(self.leaves, LeafArena::Paged(_))
    }

    /// Buffer-pool counters of the paged leaf arena (`None` on the slab).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        match &self.leaves {
            LeafArena::Mem(_) => None,
            LeafArena::Paged(p) => Some(p.pool_stats()),
        }
    }

    /// The WAL barrier gating dirty-page write-back (`None` on the
    /// slab). Created on first call; the log writer advances it after
    /// each synced append so eviction never writes a page whose update
    /// is not yet durable.
    pub fn pager_barrier(&self) -> Option<WalBarrier> {
        match &self.leaves {
            LeafArena::Mem(_) => None,
            LeafArena::Paged(p) => Some(p.ensure_barrier()),
        }
    }
}

impl<G: AbelianGroup + ValueCodec> DdcTree<G> {
    /// Activates the paged leaf backend requested by
    /// [`crate::LeafBackend::Paged`], converting the slab arena in place
    /// (slot ids are preserved, so every [`ChildRef`] stays valid).
    ///
    /// Lives in a [`ValueCodec`]-bounded impl because the pager needs a
    /// serialization for leaf blocks; the codec is captured as plain
    /// `fn` pointers, so once enabled, every unbounded code path (grow,
    /// prune, updates) keeps working. Returns whether the tree is paged
    /// afterwards: `Ok(false)` means the config never asked for paging.
    /// Idempotent.
    pub fn enable_paging(&mut self) -> std::io::Result<bool> {
        let LeafBackend::Paged(pager) = self.config.leaf_backend else {
            return Ok(false);
        };
        if matches!(self.leaves, LeafArena::Paged(_)) {
            return Ok(true);
        }
        let codec = RecordCodec::<LeafBlock<G>> {
            encode: |block, out| block.encode_into(out),
            decode: LeafBlock::<G>::decode_from,
        };
        let record_cap = LeafBlock::<G>::record_cap(self.d, self.config.leaf_block_side());
        let slab = match std::mem::replace(&mut self.leaves, LeafArena::Mem(MemStore::new())) {
            LeafArena::Mem(m) => m,
            LeafArena::Paged(_) => unreachable!("checked above"),
        };
        self.leaves = LeafArena::Paged(Box::new(PagedStore::from_mem(
            slab, pager, self.d, record_cap, codec,
        )?));
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BaseStore, DdcConfig};

    fn reference_and_tree(
        side: usize,
        d: usize,
        config: DdcConfig,
        updates: &[(Vec<usize>, i64)],
    ) -> (NdArray<i64>, DdcTree<i64>) {
        let mut a = NdArray::<i64>::zeroed(Shape::cube(d, side));
        let mut t = DdcTree::<i64>::new(d, side, config);
        for (p, delta) in updates {
            a.add_assign(p, *delta);
            t.apply_delta(p, *delta);
        }
        (a, t)
    }

    fn assert_all_prefixes(a: &NdArray<i64>, t: &DdcTree<i64>) {
        for p in a.shape().iter_points() {
            assert_eq!(t.prefix_sum(&p), a.prefix_sum(&p), "prefix {p:?}");
        }
    }

    fn dense_updates(side: usize, d: usize) -> Vec<(Vec<usize>, i64)> {
        Shape::cube(d, side)
            .iter_points()
            .enumerate()
            .map(|(i, p)| (p, (i as i64 * 31 % 17) - 8))
            .collect()
    }

    #[test]
    fn dense_2d_dynamic_matches_reference() {
        let (a, t) = reference_and_tree(8, 2, DdcConfig::dynamic(), &dense_updates(8, 2));
        assert_all_prefixes(&a, &t);
        assert_eq!(t.check_invariants(), a.total());
    }

    #[test]
    fn dense_2d_basic_matches_reference() {
        let (a, t) = reference_and_tree(8, 2, DdcConfig::basic(), &dense_updates(8, 2));
        assert_all_prefixes(&a, &t);
    }

    #[test]
    fn dense_3d_matches_reference() {
        for config in [
            DdcConfig::dynamic(),
            DdcConfig::basic(),
            DdcConfig::sparse(),
        ] {
            let (a, t) = reference_and_tree(8, 3, config, &dense_updates(8, 3));
            assert_all_prefixes(&a, &t);
            assert_eq!(t.check_invariants(), a.total());
        }
    }

    #[test]
    fn dense_4d_matches_reference() {
        let (a, t) = reference_and_tree(4, 4, DdcConfig::dynamic(), &dense_updates(4, 4));
        assert_all_prefixes(&a, &t);
    }

    #[test]
    fn prune_reclaims_cancelled_subtrees() {
        let mut t = DdcTree::<i64>::new(2, 256, DdcConfig::dynamic());
        // Populate a diagonal, then cancel it all.
        for i in 0..256usize {
            t.apply_delta(&[i, i], 7);
        }
        let populated_bytes = t.heap_bytes();
        for i in 0..256usize {
            t.apply_delta(&[i, i], -7);
        }
        assert_eq!(t.total(), 0);
        // Structures linger until pruned…
        assert!(t.heap_bytes() > populated_bytes / 2);
        let released = t.prune();
        assert!(released > 0);
        assert!(
            t.heap_bytes() < populated_bytes / 10,
            "{} bytes left",
            t.heap_bytes()
        );
        assert_eq!(t.prefix_sum(&[255, 255]), 0);
        // The tree stays fully usable afterwards.
        t.apply_delta(&[100, 100], 3);
        assert_eq!(t.prefix_sum(&[255, 255]), 3);
        t.check_invariants();
    }

    #[test]
    fn prune_keeps_live_content_intact() {
        let mut t = DdcTree::<i64>::new(2, 64, DdcConfig::sparse());
        for (p, v) in dense_updates(8, 2) {
            t.apply_delta(&[p[0] * 8, p[1] * 8], v);
        }
        t.apply_delta(&[5, 5], 9);
        t.apply_delta(&[5, 5], -9); // one cancelled cell
        let reference_total = t.total();
        t.prune();
        assert_eq!(t.total(), reference_total);
        assert_eq!(t.cell(&[5, 5]), 0);
        assert_eq!(t.cell(&[8, 8]), t.cell(&[8, 8]));
        t.check_invariants();
    }

    #[test]
    fn stats_profile_matches_structure() {
        let (a, t) = reference_and_tree(16, 2, DdcConfig::dynamic(), &dense_updates(16, 2));
        let s = t.stats();
        // Dense 16² tree, h = 0: nodes at sides 16, 8, 4; leaf blocks of
        // side 2 under the side-4 nodes.
        assert_eq!(s.per_level[0].nodes, 1);
        assert_eq!(s.per_level[0].side, 16);
        assert_eq!(s.per_level[1].nodes, 4);
        assert_eq!(s.per_level[2].nodes, 16);
        assert_eq!(s.per_level[3].leaf_blocks, 64);
        assert_eq!(s.leaf_cells, 256);
        assert_eq!(s.nodes, 21);
        assert_eq!(s.boxes, 21 * 4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.total_bytes, t.heap_bytes());
        assert!(s.secondary_bytes > 0 && s.secondary_bytes < s.total_bytes);
        // Arena occupancy: no frees have happened, so every slot is live.
        assert_eq!(s.node_slots, s.nodes);
        assert_eq!(s.leaf_slots, s.leaf_blocks);
        assert_eq!(s.free_node_slots, 0);
        assert_eq!(s.free_leaf_slots, 0);
        let _ = a;
        // Sparse tree: statistics shrink to the populated paths.
        let mut sparse = DdcTree::<i64>::new(2, 16, DdcConfig::sparse());
        sparse.apply_delta(&[0, 0], 1);
        let ss = sparse.stats();
        assert_eq!(ss.nodes, 3);
        assert_eq!(ss.boxes, 3);
        assert_eq!(ss.leaf_blocks, 1);
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let shape = Shape::cube(2, 64);
        let a = NdArray::from_fn(shape, |p| ((p[0] * 31 + p[1] * 7) % 23) as i64 - 11);
        let seq = DdcTree::from_array_sized(&a, 64, DdcConfig::dynamic());
        let par = DdcTree::from_array_parallel(&a, 64, DdcConfig::dynamic());
        for p in a.shape().iter_points() {
            assert_eq!(par.prefix_sum(&p), seq.prefix_sum(&p), "{p:?}");
        }
        assert_eq!(par.check_invariants(), a.total());
        par.check_arena();
        // Degenerate: tiny array below the leaf-block side.
        let tiny = NdArray::from_rows(&[vec![1i64, 2], vec![3, 4]]);
        let par_tiny = DdcTree::from_array_parallel(&tiny, 2, DdcConfig::dynamic());
        assert_eq!(par_tiny.prefix_sum(&[1, 1]), 10);
    }

    #[test]
    fn five_dimensional_recursion() {
        // d = 5 exercises four levels of secondary-tree recursion
        // (4-D → 3-D → 2-D → 1-D B^c trees).
        let (a, t) = reference_and_tree(4, 5, DdcConfig::dynamic(), &dense_updates(4, 5));
        for p in [[0usize; 5], [3; 5], [1, 2, 3, 0, 2], [3, 0, 3, 0, 3]] {
            assert_eq!(t.prefix_sum(&p), a.prefix_sum(&p), "{p:?}");
        }
        assert_eq!(t.check_invariants(), a.total());
    }

    #[test]
    fn one_dimensional_tree() {
        let (a, t) = reference_and_tree(16, 1, DdcConfig::dynamic(), &dense_updates(16, 1));
        assert_all_prefixes(&a, &t);
        assert_eq!(t.total(), a.total());
    }

    #[test]
    fn elided_levels_match_reference() {
        for h in 0..=3 {
            let config = DdcConfig::dynamic().with_elision(h);
            let (a, t) = reference_and_tree(16, 2, config, &dense_updates(16, 2));
            assert_all_prefixes(&a, &t);
            assert_eq!(t.check_invariants(), a.total());
        }
    }

    #[test]
    fn elision_shrinks_storage() {
        let updates = dense_updates(32, 2);
        let sizes: Vec<usize> = (0..=3)
            .map(|h| {
                let config = DdcConfig::dynamic().with_elision(h);
                let (_, t) = reference_and_tree(32, 2, config, &updates);
                t.heap_bytes()
            })
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[1] < w[0]),
            "heap bytes should fall as h grows: {sizes:?}"
        );
    }

    #[test]
    fn fenwick_and_seg_bases_match() {
        for base in [
            BaseStore::Blocked,
            BaseStore::Fenwick,
            BaseStore::SparseSeg,
            BaseStore::Bc { fanout: 4 },
        ] {
            let config = DdcConfig::dynamic().with_base(base);
            let (a, t) = reference_and_tree(16, 2, config, &dense_updates(16, 2));
            assert_all_prefixes(&a, &t);
        }
    }

    #[test]
    fn empty_tree_reads_zero_everywhere() {
        let t = DdcTree::<i64>::new(3, 16, DdcConfig::dynamic());
        assert_eq!(t.prefix_sum(&[15, 15, 15]), 0);
        assert_eq!(t.cell(&[3, 4, 5]), 0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.populated_cells(), 0);
    }

    #[test]
    fn cell_reads_match_updates() {
        let updates = dense_updates(8, 2);
        let (a, t) = reference_and_tree(8, 2, DdcConfig::dynamic(), &updates);
        for p in a.shape().iter_points() {
            assert_eq!(t.cell(&p), a.get(&p), "cell {p:?}");
        }
    }

    #[test]
    fn sparse_population_costs_little_memory() {
        let mut dense = DdcTree::<i64>::new(2, 1024, DdcConfig::sparse());
        dense.apply_delta(&[3, 900], 5);
        dense.apply_delta(&[800, 2], -9);
        let sparse_bytes = dense.heap_bytes();
        // The dense space would be 1024² cells = 8 MiB of i64 alone.
        assert!(
            sparse_bytes < 200_000,
            "sparse cube used {sparse_bytes} bytes"
        );
        assert_eq!(dense.prefix_sum(&[1023, 1023]), -4);
        assert_eq!(dense.populated_cells(), 2);
    }

    #[test]
    fn growth_high_preserves_content() {
        let mut t = DdcTree::<i64>::new(2, 8, DdcConfig::dynamic());
        let updates = dense_updates(8, 2);
        let mut a = NdArray::<i64>::zeroed(Shape::cube(2, 16));
        for (p, delta) in &updates {
            t.apply_delta(p, *delta);
            a.add_assign(p, *delta);
        }
        t.grow(&[false, false]);
        assert_eq!(t.side(), 16);
        t.apply_delta(&[12, 15], 100);
        a.add_assign(&[12, 15], 100);
        assert_all_prefixes(&a, &t);
        assert_eq!(t.check_invariants(), a.total());
    }

    #[test]
    fn growth_low_shifts_content() {
        let mut t = DdcTree::<i64>::new(2, 4, DdcConfig::dynamic());
        t.apply_delta(&[0, 0], 7);
        t.apply_delta(&[3, 3], 2);
        t.grow(&[true, false]); // dim 0 grows low: content shifts up by 4
        assert_eq!(t.cell(&[4, 0]), 7);
        assert_eq!(t.cell(&[7, 3]), 2);
        assert_eq!(t.cell(&[0, 0]), 0);
        assert_eq!(t.prefix_sum(&[7, 7]), 9);
        assert_eq!(t.check_invariants(), 9);
    }

    #[test]
    fn growth_of_empty_tree_is_free() {
        let mut t = DdcTree::<i64>::new(3, 4, DdcConfig::dynamic());
        t.grow(&[true, true, true]);
        assert_eq!(t.side(), 8);
        assert_eq!(t.total(), 0);
        t.apply_delta(&[7, 7, 7], 1);
        assert_eq!(t.prefix_sum(&[7, 7, 7]), 1);
    }

    #[test]
    fn repeated_growth_stays_consistent() {
        let mut t = DdcTree::<i64>::new(2, 4, DdcConfig::sparse());
        t.apply_delta(&[1, 1], 10);
        for step in 0..4 {
            t.grow(&[step % 2 == 0, step % 2 == 1]);
        }
        assert_eq!(t.side(), 64);
        // Shifts: dim0 grew low at steps 0,2 (+4, +16); dim1 at 1,3 (+8, +32).
        assert_eq!(t.cell(&[1 + 4 + 16, 1 + 8 + 32]), 10);
        assert_eq!(t.total(), 10);
        assert_eq!(t.check_invariants(), 10);
    }

    #[test]
    fn for_each_nonzero_reports_cells() {
        let mut t = DdcTree::<i64>::new(2, 16, DdcConfig::dynamic());
        t.apply_delta(&[2, 3], 5);
        t.apply_delta(&[10, 0], -1);
        let mut seen = Vec::new();
        t.for_each_nonzero(&mut |p, v| seen.push((p.to_vec(), v)));
        seen.sort();
        assert_eq!(seen, vec![(vec![2, 3], 5), (vec![10, 0], -1)]);
    }

    #[test]
    fn cancelling_update_keeps_queries_correct() {
        let mut t = DdcTree::<i64>::new(2, 8, DdcConfig::dynamic());
        t.apply_delta(&[4, 4], 5);
        t.apply_delta(&[4, 4], -5);
        assert_eq!(t.prefix_sum(&[7, 7]), 0);
        assert_eq!(t.cell(&[4, 4]), 0);
    }

    #[test]
    fn update_cost_is_polylogarithmic() {
        let mut t = DdcTree::<i64>::new(2, 256, DdcConfig::dynamic());
        // Warm the path so materialization costs are excluded.
        t.apply_delta(&[0, 0], 1);
        t.counter().reset();
        t.apply_delta(&[0, 0], 1);
        let w = t.ops().writes;
        // log2(256) = 8 levels × (1 subtotal + 2 B^c paths of ≤ ~2·log k).
        assert!(w <= 8 * 40, "update wrote {w} values");
        // …versus the Basic tree, which cascades O(n) at the root.
        let mut b = DdcTree::<i64>::new(2, 256, DdcConfig::basic());
        b.apply_delta(&[0, 0], 1);
        b.counter().reset();
        b.apply_delta(&[0, 0], 1);
        assert!(
            b.ops().writes > w,
            "basic ({}) should exceed dynamic ({w})",
            b.ops().writes
        );
    }

    #[test]
    fn query_cost_is_polylogarithmic() {
        let mut t = DdcTree::<i64>::new(2, 256, DdcConfig::dynamic());
        for (p, v) in dense_updates(16, 2) {
            t.apply_delta(&[p[0] * 16, p[1] * 16], v);
        }
        t.counter().reset();
        let _ = t.prefix_sum(&[255, 255]);
        let r = t.ops().reads;
        assert!(r <= 8 * 3 * 20, "query read {r} values");
    }

    #[test]
    fn arena_free_list_is_reused_after_prune() {
        let mut t = DdcTree::<i64>::new(2, 64, DdcConfig::dynamic());
        for i in 0..64usize {
            t.apply_delta(&[i, i], 3);
        }
        t.check_arena();
        // Materialize one off-diagonal path, then cancel it so prune
        // frees part of the tree without compacting everything away.
        t.apply_delta(&[0, 63], 5);
        let slots_before = t.stats().node_slots;
        t.apply_delta(&[0, 63], -5);
        t.prune();
        t.check_arena();
        let s = t.stats();
        assert_eq!(s.node_slots - s.free_node_slots, s.nodes);
        assert_eq!(s.leaf_slots - s.free_leaf_slots, s.leaf_blocks);
        // Repopulating pops free slots (or reuses the compacted arena)
        // instead of growing past the original footprint.
        t.apply_delta(&[0, 63], 5);
        t.check_arena();
        assert!(
            t.stats().node_slots <= slots_before,
            "arena grew past its pre-prune footprint"
        );
        assert_eq!(t.check_invariants(), 64 * 3 + 5);
    }

    #[test]
    fn arena_stays_sound_through_grow_update_prune_cycles() {
        let mut t = DdcTree::<i64>::new(2, 8, DdcConfig::dynamic());
        let mut a = NdArray::<i64>::zeroed(Shape::cube(2, 32));
        for (step, (p, v)) in dense_updates(8, 2).into_iter().enumerate() {
            t.apply_delta(&p, v);
            a.add_assign(&p, v);
            if step % 17 == 0 {
                t.prune();
                t.check_arena();
            }
        }
        t.grow(&[false, false]);
        t.check_arena();
        t.grow(&[true, true]);
        t.check_arena();
        // One high grow then one low grow shifts content by 16 (the
        // side at the low grow) in both dims.
        for p in [[0usize, 0], [31, 31], [16, 16], [23, 8]] {
            let shifted = [p[0].wrapping_sub(16), p[1].wrapping_sub(16)];
            let expect = if shifted[0] < 32 && shifted[1] < 32 {
                a.get(&shifted)
            } else {
                0
            };
            assert_eq!(t.cell(&p), expect, "cell {p:?}");
        }
        assert_eq!(t.check_invariants(), a.total());
        // Cancel everything: prune must return the tree to (near) empty
        // with a fully consistent arena.
        let mut cells = Vec::new();
        t.for_each_nonzero(&mut |p, v| cells.push((p.to_vec(), v)));
        for (p, v) in cells {
            t.apply_delta(&p, -v);
        }
        t.prune();
        t.check_arena();
        assert_eq!(t.total(), 0);
        let s = t.stats();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.leaf_blocks, 0);
    }

    #[test]
    fn compaction_triggers_when_free_slots_dominate() {
        let mut t = DdcTree::<i64>::new(2, 128, DdcConfig::dynamic());
        for i in 0..128usize {
            t.apply_delta(&[i, i], 2);
        }
        // Keep one corner live; cancel the rest.
        for i in 1..128usize {
            t.apply_delta(&[i, i], -2);
        }
        t.prune();
        t.check_arena();
        let s = t.stats();
        // Free slots may not outnumber live ones after a compaction.
        assert!(
            s.free_node_slots + s.free_leaf_slots
                <= (s.node_slots - s.free_node_slots) + (s.leaf_slots - s.free_leaf_slots),
            "compaction left {} free vs {} live slots",
            s.free_node_slots + s.free_leaf_slots,
            (s.node_slots - s.free_node_slots) + (s.leaf_slots - s.free_leaf_slots)
        );
        assert_eq!(t.cell(&[0, 0]), 2);
        assert_eq!(t.check_invariants(), 2);
    }

    #[test]
    fn paged_tree_matches_slab_through_full_lifecycle() {
        use crate::config::PagerConfig;
        // Cap far below the leaf data so the walk below churns through
        // real evictions, with a tiny page size to multiply traffic.
        let pager = PagerConfig::in_mem(2048).with_page_bytes(128);
        let config = DdcConfig::dynamic()
            .with_elision(1)
            .with_paged_leaves(pager);
        let mut paged = DdcTree::<i64>::new(2, 32, config);
        assert!(paged.enable_paging().unwrap());
        assert!(paged.is_paged());
        assert!(paged.enable_paging().unwrap(), "must be idempotent");
        let mut slab = DdcTree::<i64>::new(2, 32, DdcConfig::dynamic().with_elision(1));
        let mut a = NdArray::<i64>::zeroed(Shape::cube(2, 32));
        for i in 0..600usize {
            let p = [(i * 7) % 32, (i * 13) % 32];
            let v = (i as i64 % 9) - 4;
            paged.apply_delta(&p, v);
            slab.apply_delta(&p, v);
            a.add_assign(&p, v);
        }
        for p in [[0usize, 0], [31, 31], [15, 16], [7, 29]] {
            assert_eq!(paged.prefix_sum(&p), a.prefix_sum(&p), "prefix {p:?}");
            assert_eq!(paged.cell(&p), slab.cell(&p), "cell {p:?}");
        }
        assert_eq!(paged.check_invariants(), a.total());
        paged.check_arena();
        let stats = paged.pool_stats().expect("paged tree has pool stats");
        assert!(
            stats.evictions > 0,
            "cap too generous to exercise eviction: {stats:?}"
        );
        // Growth re-roots in place, so the paged arena must survive it.
        paged.grow(&[false, false]);
        slab.grow(&[false, false]);
        assert!(paged.is_paged(), "growth must not drop the paged arena");
        paged.apply_delta(&[40, 40], 11);
        slab.apply_delta(&[40, 40], 11);
        assert_eq!(paged.total(), slab.total());
        assert_eq!(paged.prefix_sum(&[63, 63]), slab.prefix_sum(&[63, 63]));
        // Cancel and prune: free-listing + node compaction on pages.
        let mut cells = Vec::new();
        paged.for_each_nonzero(&mut |p, v| cells.push((p.to_vec(), v)));
        for (p, v) in cells {
            paged.apply_delta(&p, -v);
        }
        paged.prune();
        paged.check_arena();
        assert_eq!(paged.total(), 0);
        assert_eq!(paged.stats().leaf_blocks, 0);
    }
}
