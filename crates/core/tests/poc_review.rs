use ddc_core::{DdcConfig, DdcEngine};

#[test]
fn huge_single_dim_header_should_error_not_panic() {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"DDC1");
    buf.push(0);
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.extend_from_slice(&u64::MAX.to_le_bytes()); // one dim = usize::MAX
    buf.extend_from_slice(&0u64.to_le_bytes()); // zero entries
    let r = std::panic::catch_unwind(|| {
        DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).map(|_| ())
    });
    match r {
        Ok(inner) => assert!(inner.is_err(), "corrupt header silently accepted"),
        Err(_) => panic!("load PANICKED on corrupt header"),
    }
}
