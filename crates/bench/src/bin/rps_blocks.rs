//! Relative Prefix Sum block-size ablation: \[GAES99\] picks block side
//! `k = √n` to balance the in-block cascade (`k^d`) against the overlay
//! cascade (`(n/k)^{|S|} · k^{d-|S|}`). Sweeping `k` shows `√n` sitting
//! at the trough — the analysis behind the paper's `O(n^{d/2})` row in
//! Table 1.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin rps_blocks
//! ```

use ddc_array::{RangeSumEngine, Shape};
use ddc_baselines::RelativePrefixEngine;
use ddc_bench::print_row;
use ddc_workload::{rng, uniform_array, uniform_updates};

fn main() {
    let n = 256usize;
    let d = 2usize;
    let shape = Shape::cube(d, n);
    let mut r = rng(31);
    let base = uniform_array(&shape, -20, 20, &mut r);
    let stream = uniform_updates(&shape, 128, &mut r);

    println!(
        "RPS block-size sweep: d={d}, n={n} (√n = {})\n",
        (n as f64).sqrt() as usize
    );
    let widths = [6usize, 16, 16, 12];
    print_row(
        &[
            "k".into(),
            "mean upd cost".into(),
            "worst upd cost".into(),
            "heap KiB".into(),
        ],
        &widths,
    );
    for k in [2usize, 4, 8, 16, 32, 64, 128] {
        let mut e = RelativePrefixEngine::with_block_sides(&base, &[k, k]);
        e.reset_ops();
        for (p, delta) in &stream.updates {
            e.apply_delta(p, *delta);
        }
        let mean = e.ops().writes as f64 / stream.updates.len() as f64;
        e.reset_ops();
        e.apply_delta(&[0, 0], 1);
        let worst = e.ops().writes;
        print_row(
            &[
                format!("{k}"),
                format!("{mean:.1}"),
                format!("{worst}"),
                format!("{}", e.heap_bytes() / 1024),
            ],
            &widths,
        );
    }
    println!("\nThe trough sits at k = √n = 16, as [GAES99]'s analysis predicts.");
}
