//! **§5a reproduction**: dynamic growth of the data cube in any direction.
//! A star-catalog-style stream discovers points in all quadrants; the cube
//! re-roots on demand. We report per-phase growth cost (values written),
//! final coverage, and memory — all proportional to the data, never to the
//! bounding box.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin growth
//! ```

use ddc_baselines::GrowablePrefixSum;
use ddc_bench::print_row;
use ddc_core::{DdcConfig, GrowableCube};
use ddc_workload::{clustered_points, random_clusters, rng};

/// Head-to-head: DDC re-rooting growth vs the prefix-sum method's forced
/// materialization (§5, Figure 16) on the same outward point stream.
fn head_to_head() {
    println!("\n== forced materialization vs re-rooting (same stream) ==\n");
    let widths = [10usize, 16, 16, 16, 16];
    print_row(
        &[
            "reach".into(),
            "PS writes/pt".into(),
            "PS KiB".into(),
            "DDC writes/pt".into(),
            "DDC KiB".into(),
        ],
        &widths,
    );
    let mut ps = GrowablePrefixSum::<i64>::new(&[0, 0]);
    let mut ddc = GrowableCube::<i64>::new(2, DdcConfig::sparse());
    let mut r = rng(99);
    for wave in 0..4u32 {
        let reach = 16i64 << (2 * wave);
        let clusters = random_clusters(2, 3, reach, 3.0, &mut r);
        let pts = clustered_points(&clusters, 100, 50, &mut r);
        ps.counter().reset();
        ddc.counter().reset();
        for (p, v) in &pts {
            ps.add(p, *v);
            ddc.add(p, *v);
        }
        print_row(
            &[
                format!("±{reach}"),
                format!(
                    "{:.0}",
                    ps.counter().snapshot().writes as f64 / pts.len() as f64
                ),
                format!("{}", ps.heap_bytes() / 1024),
                format!(
                    "{:.0}",
                    ddc.counter().snapshot().writes as f64 / pts.len() as f64
                ),
                format!("{}", ddc.heap_bytes() / 1024),
            ],
            &widths,
        );
        // Answers agree the whole way.
        assert_eq!(
            ps.range_sum(&[-reach, -reach], &[reach, reach]),
            ddc.range_sum(&[-reach, -reach], &[reach, reach])
        );
    }
    println!(
        "\nEvery directional growth forces the prefix sum method to rebuild\n\
         its bounding box (cells written ∝ box); the DDC re-roots in\n\
         data-proportional work — §5's central claim, measured."
    );
}

fn main() {
    let d = 2usize;
    let mut cube = GrowableCube::<i64>::new(d, DdcConfig::sparse());
    let mut r = rng(2024);

    println!("§5 growth experiment: star catalog discovered outward in waves\n");
    let widths = [8usize, 12, 12, 14, 14, 12];
    print_row(
        &[
            "wave".into(),
            "extent".into(),
            "points".into(),
            "writes/pt".into(),
            "heap KiB".into(),
            "KiB/pt".into(),
        ],
        &widths,
    );

    let mut total_points = 0usize;
    for wave in 0..6u32 {
        // Each wave discovers clusters twice as far out, in all directions.
        let reach = 8i64 << (2 * wave);
        let clusters = random_clusters(d, 4, reach, (reach as f64 / 20.0).max(2.0), &mut r);
        let pts = clustered_points(&clusters, 250, 100, &mut r);
        cube.counter().reset();
        for (p, v) in &pts {
            cube.add(p, *v);
        }
        total_points += pts.len();
        let writes = cube.counter().snapshot().writes as f64 / pts.len() as f64;
        let kib = cube.heap_bytes() as f64 / 1024.0;
        print_row(
            &[
                format!("{wave}"),
                format!("{}", cube.extent()[0]),
                format!("{total_points}"),
                format!("{writes:.1}"),
                format!("{kib:.1}"),
                format!("{:.2}", kib / total_points as f64),
            ],
            &widths,
        );
    }

    let bbox: f64 = cube.extent().iter().map(|&e| e as f64).product();
    println!(
        "\nFinal coverage {}×{} = {bbox:.2e} cells; populated {}; heap {} KiB.",
        cube.extent()[0],
        cube.extent()[1],
        cube.populated_cells(),
        cube.heap_bytes() / 1024
    );
    println!(
        "A prefix-sum array over the same bounding box would need {:.2e} \
         cells\n({:.1} GiB of i64) and rebuild on every directional growth — \
         the §5 contrast.",
        bbox,
        bbox * 8.0 / (1024.0 * 1024.0 * 1024.0)
    );
    cube.check_invariants();
    println!("Invariants verified: total = {}.", cube.total());

    head_to_head();
}
