//! Orchestrator: runs every paper-reproduction binary in sequence,
//! mirroring the DESIGN.md experiment index — one command to regenerate
//! everything EXPERIMENTS.md reports.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin experiments
//! ```
//!
//! Each sub-experiment runs in this process (they are plain functions of
//! the same crate's binaries re-exposed through `std::process` would be
//! heavier); failures abort with the failing experiment's name.

use std::process::Command;

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "table1",
        "Table 1 / Figure 1 — update cost functions, d = 8",
    ),
    ("table2", "Table 2 — overlay storage vs covered region"),
    ("update_cost", "Table 1 empirical — measured update costs"),
    ("basic_vs_dynamic", "§3.3 — Basic O(n^{d-1}) vs Dynamic"),
    ("polylog_scaling", "§4.3 Theorem 2 — O(log^d n) scaling"),
    ("space_opt", "§4.4 — level elision sweep"),
    ("rps_blocks", "[GAES99] — RPS block-size ablation"),
    ("selectivity", "§2/Figure 4 — query cost vs selectivity"),
    (
        "growth",
        "§5 — growth in any direction + forced materialization",
    ),
    ("clustered_storage", "§5 — sparse and clustered storage"),
    ("replay", "mixed-workload trace replay"),
    (
        "fenwick_nd",
        "novelty ablation — DDC vs d-dimensional Fenwick tree",
    ),
    ("concurrent", "readers + writer throughput under one lock"),
];

fn main() {
    // Re-exec the sibling binaries from the same target directory.
    let this = std::env::current_exe().expect("current exe path");
    let dir = this.parent().expect("target dir").to_path_buf();
    let mut failed = Vec::new();
    for (bin, title) in EXPERIMENTS {
        println!("\n{}\n=== {title} ===\n{}", "=".repeat(72), "=".repeat(72));
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("experiment '{bin}' exited with {s}");
                failed.push(*bin);
            }
            Err(e) => {
                eprintln!(
                    "experiment '{bin}' could not start ({e}); build it with\n  \
                     cargo build --release -p ddc-bench --bins"
                );
                failed.push(*bin);
            }
        }
    }
    println!("\n{}", "=".repeat(72));
    if failed.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("failed: {failed:?}");
        std::process::exit(1);
    }
}
