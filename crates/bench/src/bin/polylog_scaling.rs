//! **Theorem 2 reproduction (§4.3)**: Dynamic Data Cube queries and
//! updates cost `O(log^d n)`. This binary doubles `n` and reports measured
//! operation counts next to `log2^d n`; the ratio column should stay
//! bounded (no polynomial growth).
//!
//! ```text
//! cargo run --release -p ddc-bench --bin polylog_scaling
//! cargo run --release -p ddc-bench --bin polylog_scaling -- --json
//! ```
//!
//! `--json` additionally writes `BENCH_polylog_scaling.json` (schema in
//! `ddc_bench::json`) with the deterministic op counts plus the
//! engine-latency quantiles the observability layer recorded.

use std::time::Instant;

use ddc_bench::json::{BenchReport, MetricKind};
use ddc_bench::{measure_prefix_query, measure_worst_case_update, print_row};
use ddc_olap::EngineKind;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let start = Instant::now();
    let mut report = BenchReport::new("polylog_scaling");
    for (d, sizes) in [
        (2usize, vec![16usize, 32, 64, 128, 256, 512]),
        (3, vec![8, 16, 32, 64]),
        (4, vec![4, 8, 16]),
    ] {
        println!("\n== d = {d}: Dynamic DDC cost vs log2^d n ==\n");
        let widths = [6usize, 12, 12, 12, 14, 14];
        print_row(
            &[
                "n".into(),
                "upd ops".into(),
                "qry reads".into(),
                "log2^d n".into(),
                "upd/log^d".into(),
                "qry/log^d".into(),
            ],
            &widths,
        );
        for &n in &sizes {
            let upd = measure_worst_case_update(EngineKind::DynamicDdc, d, n);
            let qry = measure_prefix_query(EngineKind::DynamicDdc, d, n);
            report.push(format!("upd_ops.d{d}.n{n}"), MetricKind::Count, upd as f64);
            report.push(
                format!("qry_reads.d{d}.n{n}"),
                MetricKind::Count,
                qry as f64,
            );
            let logd = (n as f64).log2().powi(d as i32);
            print_row(
                &[
                    format!("{n}"),
                    format!("{upd}"),
                    format!("{qry}"),
                    format!("{logd:.0}"),
                    format!("{:.2}", upd as f64 / logd),
                    format!("{:.2}", qry as f64 / logd),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nBounded ratio columns confirm Theorem 2: both operations scale\n\
         with log^d n, not with any power of n."
    );
    if json {
        report.push(
            "wall_time_s",
            MetricKind::Info,
            start.elapsed().as_secs_f64(),
        );
        report.push_obs_latencies(&["engine.update.dynamic_ddc", "engine.prefix_sum.dynamic_ddc"]);
        let path = report
            .write(std::path::Path::new("."))
            .expect("write BENCH_polylog_scaling.json");
        println!("\nwrote {}", path.display());
    }
}
