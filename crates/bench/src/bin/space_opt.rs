//! **§4.4 reproduction**: the level-elision space optimization. Sweeping
//! `h` shows storage shrinking toward `|A|` while queries pay at most
//! `2^{(h+1)d}` extra leaf-cell additions.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin space_opt
//! ```

use ddc_array::{RangeSumEngine, Shape};
use ddc_bench::print_row;
use ddc_core::{DdcConfig, DdcEngine};
use ddc_workload::{rng, uniform_array, uniform_regions};

fn main() {
    let d = 2usize;
    let n = 256usize;
    let shape = Shape::cube(d, n);
    let mut r = rng(1234);
    let base = uniform_array(&shape, -20, 20, &mut r);
    let raw_bytes = base.heap_bytes();
    let queries = uniform_regions(&shape, 64, &mut r);

    println!("§4.4 space optimization sweep: d={d}, n={n}, |A| = {raw_bytes} bytes\n");
    let widths = [4usize, 14, 12, 14, 16, 14];
    print_row(
        &[
            "h".into(),
            "heap bytes".into(),
            "vs |A|".into(),
            "qry reads".into(),
            "upd ops".into(),
            "2^((h+1)d)".into(),
        ],
        &widths,
    );

    for h in 0..=4usize {
        let config = DdcConfig::dynamic().with_elision(h);
        let mut e = DdcEngine::from_array_with(&base, config);
        // Mean query cost over the workload.
        e.reset_ops();
        let mut sink = 0i64;
        for q in &queries {
            sink = sink.wrapping_add(e.range_sum(q));
        }
        std::hint::black_box(sink);
        let qreads = e.ops().reads as f64 / queries.len() as f64;
        // Worst-case-ish update cost.
        e.reset_ops();
        e.apply_delta(&[0, 0], 1);
        let upd = e.ops().touched();
        let bytes = e.heap_bytes();
        print_row(
            &[
                format!("{h}"),
                format!("{bytes}"),
                format!("{:.2}x", bytes as f64 / raw_bytes as f64),
                format!("{qreads:.1}"),
                format!("{upd}"),
                format!("{}", 1u64 << ((h + 1) * d)),
            ],
            &widths,
        );
    }
    println!(
        "\nStorage falls toward |A| as h grows; query reads rise by at most\n\
         the final column (the worst-case leaf-cell additions of §4.4)."
    );

    // Base-store ablation: the B^c tree's pointer-rich nodes versus the
    // flat Fenwick array and the lazy segment tree, at two elision levels.
    println!("\nBase-store memory ablation (same cube):\n");
    let widths = [6usize, 14, 14, 14];
    print_row(
        &[
            "h".into(),
            "bc(f=16)".into(),
            "fenwick".into(),
            "sparse-seg".into(),
        ],
        &widths,
    );
    for h in [0usize, 2] {
        let mut cells = vec![format!("{h}")];
        for store in [
            ddc_core::BaseStore::Bc { fanout: 16 },
            ddc_core::BaseStore::Fenwick,
            ddc_core::BaseStore::SparseSeg,
        ] {
            let config = DdcConfig::dynamic().with_base(store).with_elision(h);
            let e = DdcEngine::from_array_with(&base, config);
            cells.push(format!("{} KiB", e.heap_bytes() / 1024));
        }
        print_row(&cells, &widths);
    }
    println!(
        "\nFenwick base stores pack row sums into flat arrays — the memory\n\
         remedy when the data is dense; B^c keeps §5 insertability."
    );
}
