//! Concurrent analysis throughput: readers sharing one cube while a
//! write feed applies updates — the paper's §1 interactive deployment.
//! The delta between engines is lock *hold time*: a prefix-sum update
//! holds the write lock for its `O(n^d)` cascade, starving readers; the
//! DDC's polylog updates keep it microscopic.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin concurrent
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use ddc_array::{RangeSumEngine, Shape};
use ddc_baselines::PrefixSumEngine;
use ddc_core::{DdcConfig, DdcEngine};
use ddc_workload::{rng, uniform_array, uniform_regions, uniform_updates};

const N: usize = 256;
const READERS: usize = 4;
const RUN: Duration = Duration::from_millis(500);

struct Scorecard {
    queries: AtomicU64,
    updates: AtomicU64,
}

fn drive<E: RangeSumEngine<i64> + Send + Sync>(label: &str, engine: E) {
    let shape = Shape::cube(2, N);
    let lock = Arc::new(RwLock::new(engine));
    let stop = Arc::new(AtomicBool::new(false));
    let score = Arc::new(Scorecard {
        queries: AtomicU64::new(0),
        updates: AtomicU64::new(0),
    });
    let regions = Arc::new(uniform_regions(&shape, 256, &mut rng(5)));
    let stream = Arc::new(uniform_updates(&shape, 4_096, &mut rng(6)));

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            let score = Arc::clone(&score);
            let regions = Arc::clone(&regions);
            s.spawn(move || {
                let mut i = 0usize;
                let mut sink = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let q = &regions[i % regions.len()];
                    i += 1;
                    sink = sink.wrapping_add(lock.read().expect("poisoned").range_sum(q));
                    score.queries.fetch_add(1, Ordering::Relaxed);
                }
                std::hint::black_box(sink);
            });
        }
        // Writer.
        {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            let score = Arc::clone(&score);
            let stream = Arc::clone(&stream);
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (p, delta) = &stream.updates[i % stream.updates.len()];
                    i += 1;
                    lock.write().expect("poisoned").apply_delta(p, *delta);
                    score.updates.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let t0 = Instant::now();
        while t0.elapsed() < RUN {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let secs = RUN.as_secs_f64();
    println!(
        "{label:<14} {:>12.0} queries/s   {:>10.0} updates/s",
        score.queries.load(Ordering::Relaxed) as f64 / secs,
        score.updates.load(Ordering::Relaxed) as f64 / secs,
    );
}

fn main() {
    let shape = Shape::cube(2, N);
    let base = uniform_array(&shape, -20, 20, &mut rng(4));
    println!("{READERS} readers + 1 writer over a {N}×{N} cube for {RUN:?} each:\n");
    drive(
        "dynamic-ddc",
        DdcEngine::from_array_with(&base, DdcConfig::dynamic()),
    );
    drive("prefix-sum", PrefixSumEngine::from_array(&base));
    println!(
        "\nSame lock, same workload: prefix-sum readers stream O(1) lookups,\n\
         but its writer sustains ~100× fewer updates — each O(n²) cascade\n\
         holds the write lock for milliseconds. The DDC trades some read\n\
         speed for a write rate that keeps the cube live (§1's thesis)."
    );
}
