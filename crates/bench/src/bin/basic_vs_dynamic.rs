//! **§3.3 reproduction**: the Basic Dynamic Data Cube's update cost is
//! `O(n^{d-1})` — measured worst-case update cost versus the paper's
//! closed form `d · (n^{d-1} − 1) / (2^{d-1} − 1)`, alongside the §4
//! Dynamic tree on identical workloads.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin basic_vs_dynamic
//! ```

use ddc_bench::{measure_worst_case_update, print_row};
use ddc_costmodel::complexity;
use ddc_olap::EngineKind;

fn main() {
    for (d, sizes) in [
        (2usize, vec![16usize, 32, 64, 128, 256]),
        (3, vec![8, 16, 32]),
    ] {
        println!("\n== d = {d}: worst-case update, Basic vs Dynamic ==\n");
        let widths = [6usize, 14, 16, 12, 14];
        print_row(
            &[
                "n".into(),
                "basic meas.".into(),
                "§3.3 formula".into(),
                "dyn meas.".into(),
                "basic/dyn".into(),
            ],
            &widths,
        );
        for &n in &sizes {
            let basic = measure_worst_case_update(EngineKind::BasicDdc, d, n);
            let dynamic = measure_worst_case_update(EngineKind::DynamicDdc, d, n);
            let formula = complexity::basic_update_cost(n as f64, d as u32);
            print_row(
                &[
                    format!("{n}"),
                    format!("{basic}"),
                    format!("{formula:.0}"),
                    format!("{dynamic}"),
                    format!("{:.1}x", basic as f64 / dynamic as f64),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nThe measured Basic cost tracks the §3.3 series (row-sum cascades\n\
         dominate); the Dynamic tree's secondary structures flatten it to\n\
         polylog, and the advantage grows with n — §4's motivation."
    );
}
