//! CI perf-smoke gate: compare a fresh `BENCH_<name>.json` against the
//! committed baseline in `bench/baselines/`.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin bench_gate -- BASELINE CURRENT \
//!     [--tolerance X] [--latency-tolerance Y]
//! ```
//!
//! Deterministic `count` metrics must match the baseline exactly;
//! machine-dependent `throughput` metrics must stay above
//! `baseline / tolerance` (default 3× — generous on purpose: the gate
//! exists to catch order-of-magnitude regressions and schema drift, not
//! to flake on shared CI runners). `latency_ns` metrics carrying a
//! per-metric `tol` (schema v2) are gated against `baseline × tol`;
//! the rest are printed but not gated unless `--latency-tolerance Y` is
//! given, in which case each must stay below `baseline × Y` (the
//! serve-latency p99 gate). A `throughput` metric's own `tol` overrides
//! the global divisor. Any metric present on one side only, a `tol`
//! mismatch, or a schema-version/bench-name mismatch, fails the gate.

use ddc_bench::json::{gate_with_latency, BenchReport, SCHEMA_VERSION};

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn flag_value(args: &[String], name: &str) -> Result<Option<f64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or(format!("{name} needs a value"))?
            .parse::<f64>()
            .map(Some)
            .map_err(|e| format!("{name}: {e}")),
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let value_flags = ["--tolerance", "--latency-tolerance"];
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--") && (*i == 0 || !value_flags.contains(&args[*i - 1].as_str()))
        })
        .map(|(_, a)| a)
        .collect();
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err(
            "usage: bench_gate BASELINE CURRENT [--tolerance X] [--latency-tolerance Y]"
                .to_string(),
        );
    };
    let tolerance = flag_value(args, "--tolerance")?.unwrap_or(3.0);
    let latency_tolerance = flag_value(args, "--latency-tolerance")?;
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    // On failure, name the exact baseline file and schema version the
    // comparison ran against — "regenerate which file?" should never
    // require reading the CI step definition.
    let detail =
        gate_with_latency(&baseline, &current, tolerance, latency_tolerance).map_err(|e| {
            format!(
                "{e}\ncompared against baseline {baseline_path} \
                 (bench {:?}, schema v{SCHEMA_VERSION}); \
                 current run: {current_path}",
                baseline.bench
            )
        })?;
    Ok(format!(
        "{detail}\nperf-smoke ok: {} metrics vs {baseline_path} (schema v{SCHEMA_VERSION}, \
         tolerance {tolerance}x)",
        baseline.metrics.len()
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(1);
        }
    }
}
