//! CI perf-smoke gate: compare a fresh `BENCH_<name>.json` against the
//! committed baseline in `bench/baselines/`.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin bench_gate -- BASELINE CURRENT [--tolerance X]
//! ```
//!
//! Deterministic `count` metrics must match the baseline exactly;
//! machine-dependent `throughput` metrics must stay above
//! `baseline / tolerance` (default 3× — generous on purpose: the gate
//! exists to catch order-of-magnitude regressions and schema drift, not
//! to flake on shared CI runners). Latency and info metrics are printed
//! but never gated. Any metric present on one side only, or a
//! schema-version/bench-name mismatch, fails the gate.

use ddc_bench::json::{gate, BenchReport};

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<String, String> {
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || args[*i - 1] != "--tolerance"))
        .map(|(_, a)| a)
        .collect();
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err("usage: bench_gate BASELINE CURRENT [--tolerance X]".to_string());
    };
    let tolerance = match args.iter().position(|a| a == "--tolerance") {
        None => 3.0,
        Some(i) => args
            .get(i + 1)
            .ok_or("--tolerance needs a value")?
            .parse::<f64>()
            .map_err(|e| format!("--tolerance: {e}"))?,
    };
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let detail = gate(&baseline, &current, tolerance)?;
    Ok(format!(
        "{detail}\nperf-smoke ok: {} metrics vs {baseline_path} (tolerance {tolerance}x)",
        baseline.metrics.len()
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(1);
        }
    }
}
