//! Trace replay: run a recorded update/query workload through every
//! engine, timing each and cross-checking the query checksums — the
//! harness for comparing methods on *identical* mixed workloads (the
//! paper's interactive-commerce regime, §1).
//!
//! ```text
//! cargo run --release -p ddc-bench --bin replay [trace-file]
//! ```
//!
//! Without a file, a default 256×256 trace of 5 000 operations (50 %
//! updates) is generated, printed to `target/replay-default.trace`, and
//! replayed.

use std::time::Instant;

use ddc_bench::print_row;
use ddc_olap::EngineKind;
use ddc_workload::{rng, Trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace = match args.first() {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("replay: cannot read {path}: {e}");
                std::process::exit(1);
            });
            Trace::parse(&text).unwrap_or_else(|e| {
                eprintln!("replay: {path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            let t = Trace::generate(&ddc_array::Shape::cube(2, 256), 5_000, 0.5, &mut rng(0xDDC));
            let path = "target/replay-default.trace";
            if std::fs::write(path, t.to_text()).is_ok() {
                println!("generated default trace → {path}\n");
            }
            t
        }
    };

    println!("trace: shape {:?}, {} ops\n", trace.dims, trace.ops.len());
    let widths = [14usize, 12, 12, 14, 20];
    print_row(
        &[
            "engine".into(),
            "updates".into(),
            "queries".into(),
            "wall time".into(),
            "checksum".into(),
        ],
        &widths,
    );
    let mut checksums = Vec::new();
    for kind in EngineKind::ALL {
        let mut engine = kind.build::<i64>(trace.shape());
        let start = Instant::now();
        let r = trace.replay(engine.as_mut());
        let elapsed = start.elapsed();
        print_row(
            &[
                kind.label().into(),
                format!("{}", r.updates),
                format!("{}", r.queries),
                format!("{elapsed:?}"),
                format!("{}", r.checksum),
            ],
            &widths,
        );
        checksums.push(r.checksum);
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "engines disagreed on the trace checksum: {checksums:?}"
    );
    println!("\nall engines agree on the checksum ✓");
}
