//! **§5b reproduction**: clustered and sparse data. The paper's EOSDIS
//! narrative — measurements concentrated around point sources with vast
//! unpopulated oceans — is generated synthetically; we compare the storage
//! each method needs for the same logical cube across a sparsity sweep.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin clustered_storage
//! ```

use ddc_array::{RangeSumEngine, Shape};
use ddc_baselines::{PrefixSumEngine, RelativePrefixEngine};
use ddc_bench::print_row;
use ddc_core::{DdcConfig, DdcEngine};
use ddc_workload::{clustered_points, random_clusters, rng, sparse_array};

fn main() {
    let n = 256usize;
    let shape = Shape::cube(2, n);

    println!("== Sparsity sweep: 256×256 cube, storage by method (KiB) ==\n");
    let widths = [10usize, 10, 12, 12, 12, 12];
    print_row(
        &[
            "density".into(),
            "cells".into(),
            "prefix-sum".into(),
            "rel-prefix".into(),
            "ddc(bc)".into(),
            "ddc(seg)".into(),
        ],
        &widths,
    );
    for density in [0.001f64, 0.01, 0.05, 0.25, 1.0] {
        let mut r = rng((density * 1e6) as u64);
        let a = sparse_array(&shape, density, 100, &mut r);
        let ps = PrefixSumEngine::from_array(&a);
        let rps = RelativePrefixEngine::from_array(&a);
        let ddc_bc = DdcEngine::from_array_with(&a, DdcConfig::dynamic().with_elision(1));
        let ddc_seg = DdcEngine::from_array_with(&a, DdcConfig::sparse().with_elision(1));
        print_row(
            &[
                format!("{density}"),
                format!("{}", a.populated_cells()),
                format!("{}", ps.heap_bytes() / 1024),
                format!("{}", rps.heap_bytes() / 1024),
                format!("{}", ddc_bc.heap_bytes() / 1024),
                format!("{}", ddc_seg.heap_bytes() / 1024),
            ],
            &widths,
        );
    }

    println!("\n== Clustered data (EOSDIS-style): 4 clusters in a 4096² space ==\n");
    let mut r = rng(777);
    let clusters = random_clusters(2, 4, 1800, 25.0, &mut r);
    let pts = clustered_points(&clusters, 4000, 100, &mut r);
    let mut cube = ddc_core::GrowableCube::<i64>::new(2, DdcConfig::sparse());
    for (p, v) in &pts {
        cube.add(p, *v);
    }
    let bbox: f64 = cube.extent().iter().map(|&e| e as f64).product();
    println!("populated cells : {}", cube.populated_cells());
    println!("covered space   : {:.2e} cells", bbox);
    println!("DDC heap        : {} KiB", cube.heap_bytes() / 1024);
    println!(
        "prefix-sum array over the same space: {:.0} KiB (dense, plus full\n\
         rebuild whenever a new point source appears outside the box)",
        bbox * 8.0 / 1024.0
    );
    println!(
        "\nThe DDC's storage tracks the populated region (§5); the prefix \
         sum\nmethods must materialize every cell of the bounding box."
    );
}
