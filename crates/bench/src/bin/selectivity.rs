//! Query cost versus selectivity: a range-sum structure's defining
//! property (§2, Figure 4) is that query cost is *independent of the
//! region's size* — the naive method degrades linearly with selectivity
//! while every prefix-based method stays flat.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin selectivity
//! ```

use ddc_array::{RangeSumEngine, Region, Shape};
use ddc_bench::print_row;
use ddc_olap::EngineKind;
use ddc_workload::{rng, uniform_array};

fn main() {
    let n = 256usize;
    let shape = Shape::cube(2, n);
    let mut r = rng(8);
    let base = uniform_array(&shape, -10, 10, &mut r);

    let mut engines: Vec<Box<dyn RangeSumEngine<i64>>> = EngineKind::ALL
        .iter()
        .map(|k| {
            let mut e = k.build(shape.clone());
            for p in shape.iter_points() {
                let v = base.get(&p);
                if v != 0 {
                    e.apply_delta(&p, v);
                }
            }
            e
        })
        .collect();

    println!("Values read per centered range query, 256² cube:\n");
    let widths = [10usize, 12, 12, 12, 12, 12];
    print_row(
        &[
            "extent".into(),
            "naive".into(),
            "prefix-sum".into(),
            "rel-prefix".into(),
            "basic-ddc".into(),
            "dyn-ddc".into(),
        ],
        &widths,
    );
    for extent in [1usize, 4, 16, 64, 128, 256] {
        let lo = (n - extent) / 2;
        let hi = lo + extent - 1;
        let q = Region::new(&[lo, lo], &[hi, hi]);
        let mut cells = vec![format!("{extent}²")];
        for e in engines.iter_mut() {
            e.reset_ops();
            std::hint::black_box(e.range_sum(&q));
            cells.push(format!("{}", e.ops().reads));
        }
        print_row(&cells, &widths);
    }
    println!(
        "\nNaive cost is the region size; every other method is flat in\n\
         selectivity — the Figure 4 inclusion–exclusion at work."
    );
}
