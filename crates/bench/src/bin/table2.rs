//! Regenerates **Table 2**: storage required by overlay boxes versus the
//! region of array `A` they cover, as `k` grows — plus our measured
//! per-box layout (DESIGN.md §5.2) for comparison.
//!
//! ```text
//! cargo run -p ddc-bench --bin table2 [--d <dims>]
//! ```

use ddc_bench::print_row;
use ddc_costmodel::table2;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let d: u32 = args
        .iter()
        .position(|a| a == "--d")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    println!("Table 2. Required storage, overlay boxes versus array A (d={d}).\n");
    let widths = [8, 24, 16, 12, 22];
    print_row(
        &[
            "k".into(),
            "Overlay k^d-(k-1)^d".into(),
            "Region k^d".into(),
            "O.B./A %".into(),
            "ours d*k^(d-1)+1".into(),
        ],
        &widths,
    );
    for exp in 1..=10u32 {
        let k = 2f64.powi(exp as i32);
        print_row(
            &[
                format!("{k:.0}"),
                format!("{:.0}", table2::overlay_cells(k, d)),
                format!("{:.0}", table2::covered_cells(k, d)),
                format!("{:.4}", table2::percentage(k, d)),
                format!("{:.0}", table2::implementation_cells(k, d)),
            ],
            &widths,
        );
    }
    println!(
        "\nAs k increases, overlay storage as a percentage of the covered \
         region\ndecreases dramatically (§4.4) — the basis for eliding the \
         dense lowest levels."
    );
}
