//! **Table 1, empirical counterpart** (experiment T1e in DESIGN.md):
//! measured stored-values touched per update for every method, at sizes a
//! laptop can hold. The paper's Table 1 is analytic; this binary verifies
//! the *shape* — who wins and by how much — on the real structures.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin update_cost
//! cargo run --release -p ddc-bench --bin update_cost -- --json
//! ```
//!
//! `--json` additionally writes `BENCH_update_cost.json` (schema in
//! `ddc_bench::json`) — op counts are seeded and deterministic, so the
//! CI perf-smoke gate compares them exactly against the committed
//! baseline.

use std::time::Instant;

use ddc_bench::json::{BenchReport, MetricKind};
use ddc_bench::{measure_engine, measure_worst_case_update, print_row};
use ddc_olap::EngineKind;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let start = Instant::now();
    let mut report = BenchReport::new("update_cost");
    for (d, sizes) in [(2usize, vec![16usize, 32, 64, 128]), (3, vec![8, 16, 32])] {
        println!("\n== d = {d}: mean values touched per update (uniform updates) ==\n");
        let widths = [6usize, 12, 12, 12, 12, 12];
        print_row(
            &[
                "n".into(),
                "naive".into(),
                "prefix-sum".into(),
                "rel-prefix".into(),
                "basic-ddc".into(),
                "dyn-ddc".into(),
            ],
            &widths,
        );
        for &n in &sizes {
            let mut cells = vec![format!("{n}")];
            for kind in EngineKind::ALL {
                let m = measure_engine(kind, d, n, 64, 0);
                cells.push(format!("{:.1}", m.update_touched));
                report.push(
                    format!("update_touched.d{d}.n{n}.{}", kind.label()),
                    MetricKind::Count,
                    m.update_touched,
                );
            }
            print_row(&cells, &widths);
        }

        println!("\n== d = {d}: worst-case update (cell A[0,…,0], Figure 5 corner) ==\n");
        print_row(
            &[
                "n".into(),
                "naive".into(),
                "prefix-sum".into(),
                "rel-prefix".into(),
                "basic-ddc".into(),
                "dyn-ddc".into(),
            ],
            &widths,
        );
        for &n in &sizes {
            let mut cells = vec![format!("{n}")];
            for kind in EngineKind::ALL {
                let worst = measure_worst_case_update(kind, d, n);
                cells.push(format!("{worst}"));
                report.push(
                    format!("worst_case_update.d{d}.n{n}.{}", kind.label()),
                    MetricKind::Count,
                    worst as f64,
                );
            }
            print_row(&cells, &widths);
        }
    }
    println!(
        "\nExpected shape (paper Table 1): naive O(1) < DDC polylog < Basic \
         O(n^(d-1))\n≈ RPS O(n^(d/2)) [d=2] < PS O(n^d); gaps widen with n."
    );
    if json {
        report.push(
            "wall_time_s",
            MetricKind::Info,
            start.elapsed().as_secs_f64(),
        );
        report.push_obs_latencies(&[
            "engine.update.basic_ddc",
            "engine.update.dynamic_ddc",
            "engine.prefix_sum.basic_ddc",
            "engine.prefix_sum.dynamic_ddc",
        ]);
        let path = report
            .write(std::path::Path::new("."))
            .expect("write BENCH_update_cost.json");
        println!("\nwrote {}", path.display());
    }
}
