//! **Table 1, empirical counterpart** (experiment T1e in DESIGN.md):
//! measured stored-values touched per update for every method, at sizes a
//! laptop can hold. The paper's Table 1 is analytic; this binary verifies
//! the *shape* — who wins and by how much — on the real structures.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin update_cost
//! ```

use ddc_bench::{measure_engine, measure_worst_case_update, print_row};
use ddc_olap::EngineKind;

fn main() {
    for (d, sizes) in [(2usize, vec![16usize, 32, 64, 128]), (3, vec![8, 16, 32])] {
        println!("\n== d = {d}: mean values touched per update (uniform updates) ==\n");
        let widths = [6usize, 12, 12, 12, 12, 12];
        print_row(
            &[
                "n".into(),
                "naive".into(),
                "prefix-sum".into(),
                "rel-prefix".into(),
                "basic-ddc".into(),
                "dyn-ddc".into(),
            ],
            &widths,
        );
        for &n in &sizes {
            let mut cells = vec![format!("{n}")];
            for kind in EngineKind::ALL {
                let m = measure_engine(kind, d, n, 64, 0);
                cells.push(format!("{:.1}", m.update_touched));
            }
            print_row(&cells, &widths);
        }

        println!("\n== d = {d}: worst-case update (cell A[0,…,0], Figure 5 corner) ==\n");
        print_row(
            &[
                "n".into(),
                "naive".into(),
                "prefix-sum".into(),
                "rel-prefix".into(),
                "basic-ddc".into(),
                "dyn-ddc".into(),
            ],
            &widths,
        );
        for &n in &sizes {
            let mut cells = vec![format!("{n}")];
            for kind in EngineKind::ALL {
                cells.push(format!("{}", measure_worst_case_update(kind, d, n)));
            }
            print_row(&cells, &widths);
        }
    }
    println!(
        "\nExpected shape (paper Table 1): naive O(1) < DDC polylog < Basic \
         O(n^(d-1))\n≈ RPS O(n^(d/2)) [d=2] < PS O(n^d); gaps widen with n."
    );
}
