//! Regenerates **Table 1** and the series behind **Figure 1**: update cost
//! functions by method at `d = 8`, `n = 10^1 … 10^9`.
//!
//! ```text
//! cargo run -p ddc-bench --bin table1 [--csv] [--d <dims>]
//! ```
//!
//! Default output is the paper's table (values rounded to the nearest
//! power of 10); `--csv` emits the exact values as the log/log series
//! plotted in Figure 1.

use ddc_bench::{pow10, print_row};
use ddc_costmodel::table1;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv = args.iter().any(|a| a == "--csv");
    let d: u32 = args
        .iter()
        .position(|a| a == "--d")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);

    let rows = table1::rows(d, 9);
    if csv {
        println!("n,full_cube,prefix_sum,relative_prefix,ddc");
        for r in &rows {
            println!(
                "{:.0},{:e},{:e},{:e},{:e}",
                r.n, r.full_cube, r.prefix_sum, r.relative_prefix, r.ddc
            );
        }
        return;
    }

    println!("Table 1. Update cost functions by method, d={d}.");
    println!("Values are rounded to the nearest power of 10.\n");
    let widths = [8, 20, 14, 14, 18];
    print_row(
        &[
            "n".into(),
            "Full Data Cube=n^d".into(),
            "PrefixSum=n^d".into(),
            "RelPS=n^(d/2)".into(),
            "DDC=(log2 n)^d".into(),
        ],
        &widths,
    );
    for r in &rows {
        print_row(
            &[
                pow10(r.n),
                pow10(r.full_cube),
                pow10(r.prefix_sum),
                pow10(r.relative_prefix),
                pow10(r.ddc),
            ],
            &widths,
        );
    }

    println!("\nHeadline claims (§1, hypothetical 500 MIPS processor):");
    let ps_100 = table1::seconds_at_mips(table1::prefix_sum_update(1e2, 8), 500.0);
    let ddc_100 = table1::seconds_at_mips(table1::ddc_update(1e2, 8), 500.0);
    let rps_1e4 = table1::seconds_at_mips(table1::relative_prefix_update(1e4, 8), 500.0);
    let ddc_1e4 = table1::seconds_at_mips(table1::ddc_update(1e4, 8), 500.0);
    println!(
        "  n=10^2: prefix sum  {:>12.1} days/update",
        ps_100 / 86_400.0
    );
    println!("  n=10^2: DDC         {:>12.6} seconds/update", ddc_100);
    println!(
        "  n=10^4: relative PS {:>12.1} days/update",
        rps_1e4 / 86_400.0
    );
    println!("  n=10^4: DDC         {:>12.3} seconds/update", ddc_1e4);
}
