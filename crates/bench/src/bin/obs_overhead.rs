//! Measures what the observability layer charges the engine hot paths
//! (the EXPERIMENTS.md "instrumentation overhead" entry, target <5%).
//!
//! ```text
//! cargo run --release -p ddc-bench --bin obs_overhead
//! ```
//!
//! Three variants of the same seeded update/query stream:
//!
//! * `raw tree` — [`DdcTree`] directly, no instrumentation in the path;
//! * `timing off` — [`DdcEngine`] with [`obs::set_timing_enabled`] off,
//!   so each op pays one relaxed atomic load and a branch;
//! * `timing on` — the default: two `Instant::now()` calls plus a
//!   histogram record per op.
//!
//! Each variant runs [`PASSES`] times and keeps its best pass (noise only
//! ever adds time).

use std::time::Instant;

use ddc_array::{RangeSumEngine, Shape};
use ddc_core::{obs, DdcConfig, DdcEngine, DdcTree};
use ddc_workload::DdcRng;

const SIDE: usize = 64;
const OPS: usize = 200_000;
const PASSES: usize = 3;

fn stream() -> Vec<([usize; 2], i64)> {
    let mut rng = DdcRng::seed_from_u64(0x0B5);
    (0..OPS)
        .map(|_| {
            (
                [rng.gen_range(0..SIDE), rng.gen_range(0..SIDE)],
                rng.gen_range(-100i64..=100),
            )
        })
        .collect()
}

/// Best-of-[`PASSES`] nanoseconds per op for `run` over a fresh state.
fn best_ns_per_op(mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_nanos() as f64 / OPS as f64);
    }
    best
}

fn main() {
    let ops = stream();

    let raw = best_ns_per_op(|| {
        let mut tree = DdcTree::<i64>::new(2, SIDE, DdcConfig::dynamic());
        for (p, delta) in &ops {
            tree.apply_delta(p, *delta);
        }
        std::hint::black_box(tree.prefix_sum(&[SIDE - 1, SIDE - 1]));
    });

    obs::set_timing_enabled(false);
    let off = best_ns_per_op(|| {
        let mut engine = DdcEngine::<i64>::dynamic(Shape::cube(2, SIDE));
        for (p, delta) in &ops {
            engine.apply_delta(p, *delta);
        }
        std::hint::black_box(engine.prefix_sum(&[SIDE - 1, SIDE - 1]));
    });

    obs::set_timing_enabled(true);
    let on = best_ns_per_op(|| {
        let mut engine = DdcEngine::<i64>::dynamic(Shape::cube(2, SIDE));
        for (p, delta) in &ops {
            engine.apply_delta(p, *delta);
        }
        std::hint::black_box(engine.prefix_sum(&[SIDE - 1, SIDE - 1]));
    });

    let pct = |num: f64, den: f64| (num / den - 1.0) * 100.0;
    println!(
        "{OPS} point updates over a {SIDE}x{SIDE} dynamic cube, best of {PASSES} passes:\n\
         raw tree (uninstrumented)   {raw:>8.1} ns/op\n\
         engine, timing off          {off:>8.1} ns/op  ({:+.2}% vs raw)\n\
         engine, timing on (default) {on:>8.1} ns/op  ({:+.2}% vs timing off, {:+.2}% vs raw)",
        pct(off, raw),
        pct(on, off),
        pct(on, raw),
    );
}
