//! CI paged-storage gate: build a cube whose leaf data exceeds the
//! buffer-pool cap, churn it, and fail if peak RSS breaks the budget.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin paged_rss -- \
//!     [--mem-cap BYTES] [--slack BYTES] [--side N] [--elide H]
//!     [--churn N] [--seed N] [--in-mem]
//! ```
//!
//! The workload materializes one dense leaf block per block-aligned
//! region of a `side × side` cube (elision `H` makes each block
//! `2^{H+1}` on a side), so total leaf bytes are known exactly and, by
//! construction, exceed `--mem-cap`. A seeded churn phase then mixes
//! random point updates with range sums to force eviction and
//! re-faulting, a correctness pass checks sampled cells plus the grand
//! total against an oracle, and the binary reads `VmHWM` from
//! `/proc/self/status`. Exit status:
//!
//! * `0` — cube exceeded the cap, answers matched, peak RSS stayed at
//!   or under `mem-cap + slack`.
//! * `1` — budget broken or the workload failed to exceed the cap
//!   (the gate would be vacuous).
//! * `2` — wrong answers (a paging bug, not a memory bug).
//!
//! A JSON summary goes to stdout either way so CI can archive it.

use ddc_array::{RangeSumEngine, Region, Shape};
use ddc_core::{DdcConfig, DdcEngine, PagerConfig};
use std::collections::HashMap;

fn flag(args: &[String], name: &str, default: u64) -> Result<u64, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or(format!("{name} needs a value"))?
            .parse::<u64>()
            .map_err(|e| format!("{name}: {e}")),
    }
}

/// Peak resident set size of this process, from `/proc/self/status`
/// (`VmHWM`, kibibytes). `None` off Linux or if the field is missing.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib = rest.trim().trim_end_matches("kB").trim();
            return kib.parse::<u64>().ok().map(|k| k * 1024);
        }
    }
    None
}

/// Splitmix-style seeded generator — deterministic across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn run(args: &[String]) -> Result<String, (i32, String)> {
    let bad = |e: String| (1, e);
    let mem_cap = flag(args, "--mem-cap", 64 * 1024 * 1024).map_err(bad)? as usize;
    let slack = flag(args, "--slack", 32 * 1024 * 1024).map_err(bad)? as usize;
    let side = flag(args, "--side", 4096).map_err(bad)? as usize;
    let elide = flag(args, "--elide", 5).map_err(bad)? as usize;
    let churn = flag(args, "--churn", 20_000).map_err(bad)?;
    let seed = flag(args, "--seed", 0x9A6E).map_err(bad)?;
    let in_mem = args.iter().any(|a| a == "--in-mem");

    let pager = if in_mem {
        PagerConfig::in_mem(mem_cap)
    } else {
        PagerConfig::disk(mem_cap)
    };
    let config = DdcConfig::dynamic()
        .with_elision(elide)
        .with_paged_leaves(pager);
    let block = config.leaf_block_side();
    if side % block != 0 {
        return Err((1, format!("--side must be a multiple of {block}")));
    }
    let blocks_per_axis = side / block;
    let leaf_bytes = blocks_per_axis * blocks_per_axis * (4 + block * block * 8);

    let mut engine = DdcEngine::<i64>::with_config(Shape::new(&[side, side]), config);
    engine
        .enable_paging()
        .map_err(|e| (1, format!("enable_paging: {e}")))?;

    // Phase 1: materialize every leaf block — one touched cell densifies
    // the whole `block × block` region, so the cube's leaf data hits
    // `leaf_bytes` while the pool stays under `mem_cap`.
    let mut oracle: HashMap<(usize, usize), i64> = HashMap::new();
    let mut total: i64 = 0;
    for bi in 0..blocks_per_axis {
        for bj in 0..blocks_per_axis {
            engine.apply_delta(&[bi * block, bj * block], 1);
            *oracle.entry((bi * block, bj * block)).or_insert(0) += 1;
            total += 1;
        }
    }

    // Phase 2: seeded churn — random updates force dirty write-backs,
    // interleaved range sums fault cold pages back in.
    let mut rng = Rng(seed);
    let mut sums_checked = 0u64;
    for i in 0..churn {
        let p = (
            rng.below(side as u64) as usize,
            rng.below(side as u64) as usize,
        );
        let delta = rng.below(7) as i64 - 3;
        engine.apply_delta(&[p.0, p.1], delta);
        *oracle.entry(p).or_insert(0) += delta;
        total += delta;
        if i % 256 == 0 {
            let lo = [
                rng.below(side as u64) as usize,
                rng.below(side as u64) as usize,
            ];
            let hi = [
                lo[0] + (rng.below((side - lo[0]) as u64) as usize),
                lo[1] + (rng.below((side - lo[1]) as u64) as usize),
            ];
            let _ = engine.range_sum(&Region::new(&lo, &hi));
            sums_checked += 1;
        }
    }

    // Correctness pass: the grand total plus a sample of touched cells
    // must match the oracle — a silently-corrupting pager must not be
    // able to pass the memory gate.
    let got_total = engine.range_sum(&Region::new(&[0, 0], &[side - 1, side - 1]));
    if got_total != total {
        return Err((
            2,
            format!("total diverged: engine {got_total}, oracle {total}"),
        ));
    }
    let sample: Vec<_> = oracle.iter().take(512).collect();
    for (&(x, y), &want) in sample {
        let got = engine.cell(&[x, y]);
        if got != want {
            return Err((
                2,
                format!("cell ({x},{y}) diverged: engine {got}, oracle {want}"),
            ));
        }
    }

    let stats = engine
        .tree()
        .pool_stats()
        .ok_or((1, "pool stats missing: tree is not paged".to_string()))?;
    let peak =
        peak_rss_bytes().ok_or((1, "cannot read VmHWM from /proc/self/status".to_string()))?;

    let exceeded = leaf_bytes > mem_cap;
    let within = peak as usize <= mem_cap + slack;
    let json = format!(
        "{{\n  \"bench\": \"paged_rss\",\n  \"mem_cap_bytes\": {mem_cap},\n  \
         \"slack_bytes\": {slack},\n  \"leaf_bytes_total\": {leaf_bytes},\n  \
         \"peak_rss_bytes\": {peak},\n  \"resident_pages\": {},\n  \
         \"evictions\": {},\n  \"write_backs\": {},\n  \"barrier_stalls\": {},\n  \
         \"range_sums\": {sums_checked},\n  \"cube_exceeds_cap\": {exceeded},\n  \
         \"rss_within_budget\": {within}\n}}",
        stats.resident_pages, stats.evictions, stats.write_backs, stats.barrier_stalls
    );
    if !exceeded {
        return Err((
            1,
            format!("{json}\nworkload too small: {leaf_bytes} leaf bytes <= {mem_cap} cap"),
        ));
    }
    if !within {
        return Err((
            1,
            format!(
                "{json}\npeak RSS {peak} bytes > budget {} (cap {mem_cap} + slack {slack})",
                mem_cap + slack
            ),
        ));
    }
    Ok(json)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(json) => println!("{json}"),
        Err((code, msg)) => {
            eprintln!("paged_rss: {msg}");
            std::process::exit(code);
        }
    }
}
