//! Per-operation core latency: p50/p99 wall-clock nanoseconds for point
//! updates and prefix-sum queries on the d=2 hot path, across engines
//! (experiment L1 in DESIGN.md §43).
//!
//! ```text
//! cargo run --release -p ddc-bench --bin latency_core
//! cargo run --release -p ddc-bench --bin latency_core -- --json
//! ```
//!
//! Each op is timed individually with `Instant`; quantiles come from the
//! sorted sample. `--json` writes `BENCH_latency_core.json` (schema v2):
//! latency metrics carry per-metric `tol` ceilings so the CI perf-smoke
//! gate catches order-of-magnitude regressions on the hot path without
//! flaking on shared-runner jitter, and the seeded stored-values-touched
//! counts ride along as exact-match `count` metrics — machine-independent
//! evidence of the algorithmic shape.

use std::time::Instant;

use ddc_array::{RangeSumEngine, Shape};
use ddc_bench::json::{BenchReport, MetricKind};
use ddc_bench::print_row;
use ddc_core::{BaseStore, DdcConfig};
use ddc_olap::EngineKind;
use ddc_workload::rng;

/// Side of the d=2 cube under test.
const SIDE: usize = 256;
/// Updates applied before measurement starts (structure warm-up).
const POPULATE: usize = 40_000;
/// Timed operations per op-kind per engine.
const OPS: usize = 30_000;

/// Latency ceilings (schema-v2 per-metric `tol`). p50 of 30k samples is
/// stable; p99 breathes more on shared runners.
const P50_TOL: f64 = 6.0;
const P99_TOL: f64 = 10.0;

struct Quantiles {
    p50: u64,
    p99: u64,
}

fn quantiles(mut samples: Vec<u64>) -> Quantiles {
    samples.sort_unstable();
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    Quantiles {
        p50: at(0.50),
        p99: at(0.99),
    }
}

struct EngineRow {
    label: &'static str,
    update: Quantiles,
    prefix: Quantiles,
    touched_per_update: f64,
    reads_per_prefix: f64,
}

fn measure(label: &'static str, kind: EngineKind) -> EngineRow {
    let shape = Shape::cube(2, SIDE);
    let mut r = rng(0xDDC_1A7E);
    let mut engine: Box<dyn RangeSumEngine<i64>> = kind.build(shape);

    let point = |r: &mut ddc_workload::DdcRng| vec![r.gen_range(0..SIDE), r.gen_range(0..SIDE)];

    for _ in 0..POPULATE {
        let p = point(&mut r);
        engine.apply_delta(&p, r.gen_range(-50i64..50));
    }

    // Pre-draw the op streams so RNG time is not billed to the engine.
    let updates: Vec<(Vec<usize>, i64)> = (0..OPS)
        .map(|_| (point(&mut r), r.gen_range(-50i64..50)))
        .collect();
    let queries: Vec<Vec<usize>> = (0..OPS).map(|_| point(&mut r)).collect();

    engine.reset_ops();
    let mut update_ns = Vec::with_capacity(OPS);
    for (p, delta) in &updates {
        let t = Instant::now();
        engine.apply_delta(p, *delta);
        update_ns.push(t.elapsed().as_nanos() as u64);
    }
    let touched_per_update = engine.ops().touched() as f64 / OPS as f64;

    engine.reset_ops();
    let mut prefix_ns = Vec::with_capacity(OPS);
    let mut sink = 0i64;
    for p in &queries {
        let t = Instant::now();
        let v = engine.prefix_sum(p);
        prefix_ns.push(t.elapsed().as_nanos() as u64);
        sink = sink.wrapping_add(v);
    }
    std::hint::black_box(sink);
    let reads_per_prefix = engine.ops().reads as f64 / OPS as f64;

    EngineRow {
        label,
        update: quantiles(update_ns),
        prefix: quantiles(prefix_ns),
        touched_per_update,
        reads_per_prefix,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let start = Instant::now();
    let engines: Vec<(&'static str, EngineKind)> = vec![
        ("dyn-ddc", EngineKind::DynamicDdc),
        (
            "ddc-bc",
            EngineKind::CustomDdc(DdcConfig::dynamic().with_base(BaseStore::Bc { fanout: 16 })),
        ),
        (
            "ddc-fenwick",
            EngineKind::CustomDdc(DdcConfig::dynamic().with_base(BaseStore::Fenwick)),
        ),
        ("fenwick-nd", EngineKind::FenwickNd),
    ];

    println!(
        "== d=2, side {SIDE}: per-op latency over {OPS} timed ops \
         ({POPULATE} warm-up updates) ==\n"
    );
    let widths = [12usize, 10, 10, 10, 10, 12, 12];
    print_row(
        &[
            "engine".into(),
            "upd p50".into(),
            "upd p99".into(),
            "pfx p50".into(),
            "pfx p99".into(),
            "touched/upd".into(),
            "reads/pfx".into(),
        ],
        &widths,
    );

    let mut report = BenchReport::new("latency_core");
    for (label, kind) in engines {
        let row = measure(label, kind);
        print_row(
            &[
                row.label.into(),
                format!("{}ns", row.update.p50),
                format!("{}ns", row.update.p99),
                format!("{}ns", row.prefix.p50),
                format!("{}ns", row.prefix.p99),
                format!("{:.1}", row.touched_per_update),
                format!("{:.1}", row.reads_per_prefix),
            ],
            &widths,
        );
        for (op, q) in [("update", &row.update), ("prefix", &row.prefix)] {
            report.push_gated(
                format!("{op}.d2.{}.p50_ns", row.label),
                MetricKind::LatencyNs,
                q.p50 as f64,
                P50_TOL,
            );
            report.push_gated(
                format!("{op}.d2.{}.p99_ns", row.label),
                MetricKind::LatencyNs,
                q.p99 as f64,
                P99_TOL,
            );
        }
        report.push(
            format!("touched_per_update.d2.{}", row.label),
            MetricKind::Count,
            row.touched_per_update,
        );
        report.push(
            format!("reads_per_prefix.d2.{}", row.label),
            MetricKind::Count,
            row.reads_per_prefix,
        );
    }
    report.push("config.side", MetricKind::Count, SIDE as f64);
    report.push("config.ops", MetricKind::Count, OPS as f64);
    report.push("config.populate", MetricKind::Count, POPULATE as f64);
    report.push(
        "wall_time_s",
        MetricKind::Info,
        start.elapsed().as_secs_f64(),
    );

    if json {
        let path = report
            .write(std::path::Path::new("."))
            .expect("write BENCH_latency_core.json");
        println!("\nwrote {}", path.display());
    }
}
