//! Trace generator: writes a replayable workload file for `replay`.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin gen_trace -- \
//!     --out trace.txt [--n 256] [--d 2] [--ops 5000] [--updates 0.5] [--seed 1]
//! ```

use ddc_array::Shape;
use ddc_workload::{rng, Trace};

fn arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out: String = arg(&args, "--out", "target/workload.trace".to_string());
    let n: usize = arg(&args, "--n", 256);
    let d: usize = arg(&args, "--d", 2);
    let ops: usize = arg(&args, "--ops", 5_000);
    let updates: f64 = arg(&args, "--updates", 0.5);
    let seed: u64 = arg(&args, "--seed", 1);

    let trace = Trace::generate(&Shape::cube(d, n), ops, updates, &mut rng(seed));
    match std::fs::write(&out, trace.to_text()) {
        Ok(()) => println!(
            "wrote {} ops over a {d}-dim side-{n} cube (updates {updates}) → {out}",
            trace.ops.len()
        ),
        Err(e) => {
            eprintln!("gen_trace: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
