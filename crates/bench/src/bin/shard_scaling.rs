//! Shard-scaling sweep: aggregate read throughput of the [`ShardedCube`]
//! against the single-lock [`SharedCube`] baseline under §1's deployment
//! mix — analysts issuing drill-down slice queries while a live feed
//! applies point updates.
//!
//! The feed is **open loop**: a paced stream of single records at a fixed
//! target rate that both engines must sustain, skewed toward a small hot
//! set (best-seller cells). The engines differ only in protocol:
//!
//! * `SharedCube` applies each record under the global write lock as it
//!   arrives (the S32 per-op protocol);
//! * `ShardedCube` enqueues each record on the owning shard and group
//!   commits at `batch_capacity`, so the hot-set records coalesce before
//!   ever touching a shard engine, and readers read through the queues.
//!
//! The feed has priority (a lagging feed backs up without bound), so the
//! readers run under admission control: while the writer is behind its
//! schedule they shed queries and yield the CPU. Whatever the commits do
//! not burn is what the four reader threads keep — cheaper commits buy
//! aggregate read throughput directly.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin shard_scaling
//! cargo run --release -p ddc-bench --bin shard_scaling -- --wal
//! cargo run --release -p ddc-bench --bin shard_scaling -- --json
//! ```
//!
//! `--wal` runs the durability-cost sweep instead: the same hot-skewed
//! feed applied closed-loop to a growable cube with and without the
//! write-ahead log, quantifying what crash safety charges per record.
//!
//! `--json` additionally writes `BENCH_shard_scaling.json` (schema in
//! `ddc_bench::json`) — throughputs are machine-dependent, so the CI
//! perf-smoke gate only enforces a generous floor against the committed
//! baseline; the shard/engine latency quantiles ride along.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ddc_array::{Region, Shape};
use ddc_bench::json::{BenchReport, MetricKind};
use ddc_core::{DdcConfig, DurableCube, GrowableCube, ShardConfig, ShardedCube, SharedCube};
use ddc_workload::{rng, uniform_updates, DdcRng};

const N: usize = 1024;
const READERS: usize = 4;
const RUN: Duration = Duration::from_millis(300);
/// Records per pacing tick of the open-loop feed.
const TICK: usize = 256;
/// Hot-set size and skew of the feed (most records hit a few cells).
const HOT_CELLS: usize = 32;
const HOT_PERCENT: usize = 95;
/// Feed rates swept per engine, records/s (0 = read-only).
const RATES: [u64; 3] = [0, 100_000, 250_000];
/// How long a shed reader sleeps before re-checking the lag flag.
const SHED: Duration = Duration::from_micros(200);

struct Score {
    queries_per_s: f64,
    updates_per_s: f64,
}

/// Runs [`drive_once`] twice and keeps the pass with the higher read
/// throughput — scheduling noise only ever subtracts.
fn drive(
    query: impl Fn(usize) + Sync,
    writer: impl Fn(&AtomicBool, &AtomicBool) -> u64 + Sync,
) -> Score {
    let a = drive_once(&query, &writer);
    let b = drive_once(&query, &writer);
    if a.queries_per_s >= b.queries_per_s {
        a
    } else {
        b
    }
}

/// Drives [`READERS`] closed-loop query threads plus one writer thread
/// (which runs `writer` to completion, returning records applied).
fn drive_once(
    query: impl Fn(usize) + Sync,
    writer: impl Fn(&AtomicBool, &AtomicBool) -> u64 + Sync,
) -> Score {
    let stop = AtomicBool::new(false);
    let lagging = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    let updates = AtomicU64::new(0);
    let (stop_r, lag_r, q_r, u_r) = (&stop, &lagging, &queries, &updates);
    let (query, writer) = (&query, &writer);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(move || {
                let mut i = 0usize;
                while !stop_r.load(Ordering::Relaxed) {
                    // Admission control: the feed must not back up, so
                    // queries are shed while the writer lags its schedule.
                    if lag_r.load(Ordering::Relaxed) {
                        std::thread::sleep(SHED);
                        continue;
                    }
                    query(i);
                    i += 1;
                    q_r.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        s.spawn(move || {
            u_r.store(writer(stop_r, lag_r), Ordering::Relaxed);
        });
        // Sleep, don't spin: on small machines a spinning coordinator
        // steals a whole core-share from the measured threads.
        std::thread::sleep(RUN);
        stop.store(true, Ordering::Relaxed);
    });

    let secs = RUN.as_secs_f64();
    Score {
        queries_per_s: queries.load(Ordering::Relaxed) as f64 / secs,
        updates_per_s: updates.load(Ordering::Relaxed) as f64 / secs,
    }
}

/// Paces `apply` at `rate` records/s in [`TICK`]-record bursts on an
/// absolute schedule (no drift); returns the records actually applied.
/// Raises `lagging` whenever the feed is behind schedule so the readers
/// shed load until it catches up.
fn paced_feed(
    stop: &AtomicBool,
    lagging: &AtomicBool,
    rate: u64,
    mut apply: impl FnMut(usize),
) -> u64 {
    if rate == 0 {
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(5));
        }
        return 0;
    }
    let period = Duration::from_secs_f64(TICK as f64 / rate as f64);
    let mut next = Instant::now() + period;
    let mut i = 0usize;
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..TICK {
            apply(i);
            i += 1;
        }
        let now = Instant::now();
        if now < next {
            lagging.store(false, Ordering::Relaxed);
            std::thread::sleep(next - now);
        } else {
            lagging.store(true, Ordering::Relaxed);
        }
        next += period;
    }
    lagging.store(false, Ordering::Relaxed);
    i as u64
}

/// A feed skewed toward a small hot set: [`HOT_PERCENT`]% of records hit
/// one of [`HOT_CELLS`] cells, the rest are uniform.
fn hot_feed(shape: &Shape, len: usize, r: &mut DdcRng) -> Vec<(Vec<usize>, i64)> {
    let dims = shape.dims().to_vec();
    let hot: Vec<Vec<usize>> = (0..HOT_CELLS)
        .map(|_| dims.iter().map(|&n| r.gen_range(0..n)).collect())
        .collect();
    (0..len)
        .map(|_| {
            let p = if r.gen_range(0usize..100) < HOT_PERCENT {
                hot[r.gen_range(0..HOT_CELLS)].clone()
            } else {
                dims.iter().map(|&n| r.gen_range(0..n)).collect()
            };
            (p, r.gen_range(-100i64..=100))
        })
        .collect()
}

/// Drill-down slices: a narrow dimension-0 range (≤ `max_span` rows) over
/// the full extent of dimension 1.
fn slice_regions(max_span: usize, count: usize, r: &mut DdcRng) -> Vec<Region> {
    (0..count)
        .map(|_| {
            let span = r.gen_range(1..=max_span);
            let lo = r.gen_range(0..N - span);
            Region::new(&[lo, 0], &[lo + span - 1, N - 1])
        })
        .collect()
}

fn print_row(label: &str, rate: u64, score: &Score) {
    let feed = if rate == 0 {
        "read-only ".to_string()
    } else {
        format!("{:>6}/s  ", rate)
    };
    println!(
        "{label:<16} feed {feed} {:>9.0} queries/s  {:>9.0} applied/s",
        score.queries_per_s, score.updates_per_s
    );
}

/// WAL-on vs WAL-off update throughput: the same 200k-record hot feed
/// applied to a growable cube, once in memory only and once with every
/// record appended and synced to a log file *before* the apply (the
/// acknowledgement protocol). Since the vfs seam, an acked append is a
/// real `sync_data` barrier on `std::fs::File` — `Ok` means the bytes
/// survive power loss, and the retry/degrade protocol above the format
/// (S44) assumes the barrier is honest.
fn wal_bench() {
    const WN: usize = 256;
    const OPS: usize = 200_000;
    let shape = Shape::cube(2, WN);
    let feed: Vec<(Vec<i64>, i64)> = hot_feed(&shape, OPS, &mut rng(9))
        .into_iter()
        .map(|(p, v)| (p.iter().map(|&c| c as i64).collect(), v))
        .collect();

    let start = Instant::now();
    let mut plain = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
    for (p, delta) in &feed {
        plain.add(p, *delta);
    }
    let off = start.elapsed();
    std::hint::black_box(plain.total());

    let path = std::env::temp_dir().join("ddc_shard_scaling_wal.bin");
    let file = std::fs::File::create(&path).expect("create wal file");
    let mut durable =
        DurableCube::<i64, std::fs::File>::new(2, DdcConfig::dynamic(), file).expect("wal header");
    let start = Instant::now();
    for (p, delta) in &feed {
        durable.add(p, *delta).expect("acked append");
    }
    let on = start.elapsed();
    let (bytes, records) = durable.wal_stats();
    std::hint::black_box(durable.cube().total());
    assert_eq!(plain.total(), durable.cube().total());
    std::fs::remove_file(&path).ok();

    let off_rate = OPS as f64 / off.as_secs_f64();
    let on_rate = OPS as f64 / on.as_secs_f64();
    println!(
        "{OPS} hot-skewed point updates over a {WN}×{WN} dynamic growable cube:\n\
         wal-off (memory only)   {off_rate:>10.0} updates/s\n\
         wal-on  (log + sync)    {on_rate:>10.0} updates/s\n\
         durability cost: {:.2}× slowdown; log {bytes} bytes / {records} records \
         ({:.1} bytes/record, sync_data per ack)",
        off_rate / on_rate,
        bytes as f64 / records.max(1) as f64,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--wal") {
        wal_bench();
        return;
    }
    let json = std::env::args().any(|a| a == "--json");
    let start = Instant::now();
    let mut report = BenchReport::new("shard_scaling");
    let shape = Shape::cube(2, N);
    let regions = slice_regions(16, 256, &mut rng(5));
    let feed = hot_feed(&shape, 1 << 16, &mut rng(6));
    let seed: Vec<(Vec<usize>, i64)> = uniform_updates(&shape, 8_192, &mut rng(7)).updates;

    println!(
        "{READERS} readers + 1 paced writer over a {N}×{N} dynamic cube, {RUN:?} per cell.\n\
         Feed: single records, {HOT_PERCENT}% on {HOT_CELLS} hot cells; the feed\n\
         has priority — readers shed queries while it lags its schedule.\n\
         Reads: ≤16-row dimension-0 slices.\n"
    );

    let mut shared_q = 0.0f64;
    let mut sharded4_q = 0.0f64;

    for &rate in &RATES {
        let cube = SharedCube::<i64>::new(shape.clone(), DdcConfig::dynamic());
        cube.apply_batch(&seed);
        let score = drive(
            |i| {
                std::hint::black_box(cube.range_sum(&regions[i % regions.len()]));
            },
            |stop, lagging| {
                paced_feed(stop, lagging, rate, |i| {
                    let (p, delta) = &feed[i % feed.len()];
                    cube.apply_delta(p, *delta);
                })
            },
        );
        print_row("shared (1 lock)", rate, &score);
        report.push(
            format!("queries_per_s.shared.rate{rate}"),
            MetricKind::Throughput,
            score.queries_per_s,
        );
        if rate == RATES[2] {
            shared_q = score.queries_per_s;
        }
    }
    println!();

    for shards in [1usize, 2, 4, 8] {
        for &rate in &RATES {
            let cube = ShardedCube::<i64>::new(
                shape.clone(),
                DdcConfig::dynamic(),
                ShardConfig::with_shards(shards),
            );
            cube.update_batch(&seed);
            cube.flush();
            let score = drive(
                |i| {
                    std::hint::black_box(cube.query(&regions[i % regions.len()]));
                },
                |stop, lagging| {
                    paced_feed(stop, lagging, rate, |i| {
                        let (p, delta) = &feed[i % feed.len()];
                        cube.update(p, *delta);
                    })
                },
            );
            print_row(&format!("sharded ×{shards}"), rate, &score);
            report.push(
                format!("queries_per_s.sharded{shards}.rate{rate}"),
                MetricKind::Throughput,
                score.queries_per_s,
            );
            if shards == 4 && rate == RATES[2] {
                sharded4_q = score.queries_per_s;
            }
        }
        println!();
    }

    println!(
        "headline: under the {READERS}-reader/1-writer mix at {} records/s,\n\
         sharded ×4 sustains {:.2}× the single-lock cube's aggregate read\n\
         throughput (group commit coalesces the hot set before it touches a\n\
         shard engine; the CPU the writer saves goes to the readers).",
        RATES[2],
        sharded4_q / shared_q,
    );
    if json {
        report.push(
            "wall_time_s",
            MetricKind::Info,
            start.elapsed().as_secs_f64(),
        );
        report.push_obs_latencies(&[
            "shard.queue_wait",
            "shard.commit",
            "engine.update.dynamic_ddc",
            "engine.prefix_sum.dynamic_ddc",
        ]);
        let path = report
            .write(std::path::Path::new("."))
            .expect("write BENCH_shard_scaling.json");
        println!("\nwrote {}", path.display());
    }
}
