//! The novelty-band ablation: Dynamic Data Cube vs the d-dimensional
//! Fenwick tree. Both are `O(log^d n)` for queries and updates; the
//! Fenwick tree wins on constants for *dense, fixed-size* cubes, while
//! the DDC's tree shape buys exactly what §5 claims — sparse storage and
//! growth in any direction, which a flat BIT cannot express.
//!
//! ```text
//! cargo run --release -p ddc-bench --bin fenwick_nd
//! ```

use ddc_array::{RangeSumEngine, Shape};
use ddc_baselines::MultiFenwick;
use ddc_bench::print_row;
use ddc_core::{DdcConfig, DdcEngine};
use ddc_workload::{rng, sparse_array, uniform_array, uniform_regions, uniform_updates};
use std::time::Instant;

fn main() {
    println!("== dense fixed-size cubes: constants (values touched / wall) ==\n");
    let widths = [6usize, 16, 16, 16, 16];
    print_row(
        &[
            "n".into(),
            "DDC upd".into(),
            "BIT upd".into(),
            "DDC qry".into(),
            "BIT qry".into(),
        ],
        &widths,
    );
    for n in [64usize, 256, 1024] {
        let shape = Shape::cube(2, n);
        let base = uniform_array(&shape, -20, 20, &mut rng(1));
        let mut ddc = DdcEngine::from_array_with(&base, DdcConfig::dynamic());
        let mut bit = MultiFenwick::from_array(&base);
        let stream = uniform_updates(&shape, 128, &mut rng(2));
        let regions = uniform_regions(&shape, 128, &mut rng(3));

        let mut cells = vec![format!("{n}")];
        for e in [&mut ddc as &mut dyn RangeSumEngine<i64>, &mut bit] {
            e.reset_ops();
            for (p, delta) in &stream.updates {
                e.apply_delta(p, *delta);
            }
            cells.push(format!(
                "{:.0}",
                e.ops().touched() as f64 / stream.updates.len() as f64
            ));
        }
        for e in [&ddc as &dyn RangeSumEngine<i64>, &bit] {
            e.reset_ops();
            let mut sink = 0i64;
            for q in &regions {
                sink = sink.wrapping_add(e.range_sum(q));
            }
            std::hint::black_box(sink);
            cells.push(format!(
                "{:.0}",
                e.ops().reads as f64 / regions.len() as f64
            ));
        }
        // Order the columns DDC-upd, BIT-upd, DDC-qry, BIT-qry.
        print_row(&cells, &widths);
    }

    println!("\n== where the tree shape pays: sparse storage (KiB) ==\n");
    let widths = [10usize, 12, 14, 14];
    print_row(
        &[
            "density".into(),
            "cells".into(),
            "DDC(seg,h1)".into(),
            "BIT".into(),
        ],
        &widths,
    );
    let shape = Shape::cube(2, 1024);
    for density in [0.0005f64, 0.005, 0.05] {
        let a = sparse_array(&shape, density, 100, &mut rng((density * 1e6) as u64));
        let ddc = DdcEngine::from_array_with(&a, DdcConfig::sparse().with_elision(1));
        let bit = MultiFenwick::from_array(&a);
        print_row(
            &[
                format!("{density}"),
                format!("{}", a.populated_cells()),
                format!("{}", ddc.heap_bytes() / 1024),
                format!("{}", bit.heap_bytes() / 1024),
            ],
            &widths,
        );
    }

    println!("\n== …and growth: a BIT must be rebuilt, the DDC re-roots ==\n");
    // Stream of points pushing the bounding box outward; the BIT has no
    // growth operation — rebuilding from scratch each time is its only
    // option, timed here honestly.
    let mut ddc = ddc_core::GrowableCube::<i64>::new(2, DdcConfig::sparse());
    let mut points: Vec<(Vec<i64>, i64)> = Vec::new();
    let mut r = rng(7);
    let pts = ddc_workload::clustered_points(
        &ddc_workload::random_clusters(2, 3, 2_000, 10.0, &mut r),
        500,
        50,
        &mut r,
    );
    let t0 = Instant::now();
    for (p, v) in &pts {
        ddc.add(p, *v);
        points.push((p.clone(), *v));
    }
    let ddc_time = t0.elapsed();

    let t0 = Instant::now();
    let mut bit: Option<MultiFenwick<i64>> = None;
    let mut bounds: Option<(Vec<i64>, Vec<i64>)> = None;
    for (p, v) in &points {
        let needs_rebuild = match &bounds {
            None => true,
            Some((lo, hi)) => {
                p.iter().zip(lo).any(|(c, l)| c < l) || p.iter().zip(hi).any(|(c, h)| c > h)
            }
        };
        if needs_rebuild {
            let (mut lo, mut hi) = bounds.take().unwrap_or((p.clone(), p.clone()));
            for (c, (l, h)) in p.iter().zip(lo.iter_mut().zip(hi.iter_mut())) {
                *l = (*l).min(*c);
                *h = (*h).max(*c);
            }
            let dims: Vec<usize> = lo
                .iter()
                .zip(&hi)
                .map(|(l, h)| (h - l + 1) as usize)
                .collect();
            let mut fresh = MultiFenwick::<i64>::zeroed(Shape::new(&dims));
            for (q, w) in points.iter().take_while(|(q, _)| !std::ptr::eq(q, p)) {
                let rel: Vec<usize> = q.iter().zip(&lo).map(|(c, l)| (c - l) as usize).collect();
                fresh.apply_delta(&rel, *w);
            }
            bit = Some(fresh);
            bounds = Some((lo, hi));
        }
        let (lo, _) = bounds.as_ref().expect("bounds set");
        let rel: Vec<usize> = p.iter().zip(lo).map(|(c, l)| (c - l) as usize).collect();
        bit.as_mut().expect("bit built").apply_delta(&rel, *v);
    }
    let bit_time = t0.elapsed();
    println!("500 outward points: DDC {ddc_time:?} vs rebuild-on-growth BIT {bit_time:?}");
    println!(
        "\nOn static dense cubes the BIT's constants win; §5's dynamic and\n\
         sparse regimes are where the paper's tree earns its structure."
    );
}
