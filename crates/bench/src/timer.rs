//! A minimal wall-clock micro-benchmark timer (the workspace vendors no
//! external benchmark harness so the tier-1 build stays hermetic).
//!
//! The protocol is the classic batched-sampling loop: calibrate a batch
//! size that runs for roughly a millisecond, warm up, then time whole
//! batches and report the **median** per-iteration latency — medians are
//! robust against scheduler hiccups that skew means.

use std::time::{Duration, Instant};

/// Result of timing one closure.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest observed batch, per iteration.
    pub min_ns: f64,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

impl Timing {
    /// `"123.4 ns"` / `"12.3 µs"` / `"4.5 ms"` — criterion-style units.
    pub fn human(&self) -> String {
        format_ns(self.median_ns)
    }
}

/// Formats a nanosecond latency with an adaptive unit.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

/// Times `f`, warming up for `warmup` and sampling for `measure`.
pub fn time(warmup: Duration, measure: Duration, mut f: impl FnMut()) -> Timing {
    // Calibrate: grow the batch until one batch costs ≥ ~1 ms (or a
    // single call already exceeds it).
    let mut batch: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let dt = t0.elapsed();
        if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 2;
    }

    let t0 = Instant::now();
    while t0.elapsed() < warmup {
        f();
    }

    let mut samples: Vec<f64> = Vec::new();
    let mut iters = 0u64;
    let t0 = Instant::now();
    while t0.elapsed() < measure || samples.len() < 3 {
        let s = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(s.elapsed().as_nanos() as f64 / batch as f64);
        iters += batch;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    Timing {
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        iters,
    }
}

/// Times `f` with the default budget (300 ms warm-up, 600 ms measure).
pub fn time_quick(f: impl FnMut()) -> Timing {
    time(Duration::from_millis(300), Duration::from_millis(600), f)
}

/// Prints one aligned result row: `group/label/param   123.4 ns/iter`.
pub fn report(group: &str, label: &str, param: impl std::fmt::Display, t: &Timing) {
    println!(
        "{:<40} {:>12}/iter",
        format!("{group}/{label}/{param}"),
        t.human()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_reports_positive_latency() {
        let mut x = 0u64;
        let t = time(Duration::ZERO, Duration::from_millis(5), || {
            x = x.wrapping_add(std::hint::black_box(17));
        });
        assert!(t.median_ns > 0.0);
        assert!(t.min_ns <= t.median_ns);
        assert!(t.iters > 0);
        std::hint::black_box(x);
    }

    #[test]
    fn units_scale() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
    }
}
