//! # ddc-bench
//!
//! Shared measurement harness for the paper-reproduction binaries (one per
//! table/figure, see DESIGN.md §3) and the wall-clock micro-benches
//! (`cargo bench -p ddc-bench --features bench-ext`, timed by the in-repo
//! [`timer`] so no external harness is needed).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod json;
pub mod timer;

use ddc_array::{RangeSumEngine, Region, Shape};
use ddc_olap::EngineKind;
use ddc_workload::{rng, uniform_array, uniform_updates};

/// Average operation counts measured over a workload.
#[derive(Copy, Clone, Debug, Default)]
pub struct Measured {
    /// Mean stored-values touched per update.
    pub update_touched: f64,
    /// Mean stored-values read per range query.
    pub query_reads: f64,
    /// Heap bytes after the workload.
    pub heap_bytes: usize,
}

/// Builds an engine of `kind` over a dense uniform `d`-cube of side `n`,
/// then measures per-operation costs: `updates` point updates followed by
/// `queries` random range queries (seeded, deterministic).
pub fn measure_engine(
    kind: EngineKind,
    d: usize,
    n: usize,
    updates: usize,
    queries: usize,
) -> Measured {
    let shape = Shape::cube(d, n);
    let mut r = rng(0xDDC0 + d as u64 * 1000 + n as u64);
    let base = uniform_array(&shape, -50, 50, &mut r);
    let mut engine: Box<dyn RangeSumEngine<i64>> = kind.build(shape.clone());
    // Load phase (excluded from measurement).
    for p in shape.iter_points() {
        let v = base.get(&p);
        if v != 0 {
            engine.apply_delta(&p, v);
        }
    }

    // Update phase.
    let stream = uniform_updates(&shape, updates, &mut r);
    engine.reset_ops();
    for (p, delta) in &stream.updates {
        engine.apply_delta(p, *delta);
    }
    let upd = engine.ops();
    let update_touched = upd.touched() as f64 / updates.max(1) as f64;

    // Query phase.
    let regions = ddc_workload::uniform_regions(&shape, queries, &mut r);
    engine.reset_ops();
    let mut sink = 0i64;
    for q in &regions {
        sink = sink.wrapping_add(engine.range_sum(q));
    }
    std::hint::black_box(sink);
    let qr = engine.ops();
    let query_reads = qr.reads as f64 / queries.max(1) as f64;

    Measured {
        update_touched,
        query_reads,
        heap_bytes: engine.heap_bytes(),
    }
}

/// Worst-case single-update cost (cell `A[0,…,0]`, the Figure 5 corner).
pub fn measure_worst_case_update(kind: EngineKind, d: usize, n: usize) -> u64 {
    let shape = Shape::cube(d, n);
    let mut engine: Box<dyn RangeSumEngine<i64>> = kind.build(shape);
    let origin = vec![0usize; d];
    // Materialize the structure along this path first so lazy allocation
    // is not billed to the measured update.
    engine.apply_delta(&origin, 1);
    engine.reset_ops();
    engine.apply_delta(&origin, 1);
    engine.ops().touched()
}

/// Cost of a full-extent prefix query after dense population.
pub fn measure_prefix_query(kind: EngineKind, d: usize, n: usize) -> u64 {
    let shape = Shape::cube(d, n);
    let mut r = rng(99);
    let base = uniform_array(&shape, 0, 9, &mut r);
    let mut engine: Box<dyn RangeSumEngine<i64>> = kind.build(shape.clone());
    for p in shape.iter_points() {
        let v = base.get(&p);
        if v != 0 {
            engine.apply_delta(&p, v);
        }
    }
    let corner: Vec<usize> = shape.dims().iter().map(|&m| m - 1).collect();
    engine.reset_ops();
    std::hint::black_box(engine.prefix_sum(&corner));
    engine.ops().reads
}

/// Formats a cell count the way Table 1 does: `1E+NN`.
pub fn pow10(v: f64) -> String {
    if v <= 0.0 {
        return "0".to_string();
    }
    format!("1E{:+03}", v.log10().round() as i32)
}

/// Simple fixed-width table printer.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Ground-truth check helper used by several binaries: engine vs naive on
/// a handful of random regions. Returns the number of regions checked.
pub fn sanity_check(engine: &dyn RangeSumEngine<i64>, truth: &ddc_array::NdArray<i64>) -> usize {
    let mut r = rng(7);
    let regions = ddc_workload::uniform_regions(truth.shape(), 16, &mut r);
    for q in &regions {
        assert_eq!(
            engine.range_sum(q),
            truth.region_sum(q),
            "{} disagrees with ground truth on {q:?}",
            engine.name()
        );
    }
    regions.len()
}

/// Re-export for binaries.
pub use ddc_array::OpSnapshot;

/// Convenience: a dense region covering everything.
pub fn full_region(shape: &Shape) -> Region {
    Region::full(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_engine_smoke() {
        let m = measure_engine(EngineKind::DynamicDdc, 2, 16, 10, 10);
        assert!(m.update_touched > 0.0);
        assert!(m.query_reads > 0.0);
        assert!(m.heap_bytes > 0);
    }

    #[test]
    fn worst_case_ordering_matches_paper() {
        let n = 32;
        let ps = measure_worst_case_update(EngineKind::PrefixSum, 2, n);
        let rps = measure_worst_case_update(EngineKind::RelativePrefix, 2, n);
        let basic = measure_worst_case_update(EngineKind::BasicDdc, 2, n);
        let ddc = measure_worst_case_update(EngineKind::DynamicDdc, 2, n);
        assert_eq!(ps, (n * n) as u64, "PS rewrites the whole cube");
        assert!(rps < ps, "RPS {rps} < PS {ps}");
        assert!(basic < ps, "Basic {basic} < PS {ps}");
        assert!(ddc < basic, "DDC {ddc} < Basic {basic}");
    }

    #[test]
    fn pow10_formatting() {
        assert_eq!(pow10(1e16), "1E+16");
        assert_eq!(pow10(9.6e3), "1E+04");
        assert_eq!(pow10(0.0), "0");
    }
}
