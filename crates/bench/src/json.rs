//! Machine-readable bench reports: a minimal JSON emit/parse layer plus
//! the `BENCH_<name>.json` schema and the perf-smoke gate that compares a
//! fresh report against a committed baseline.
//!
//! In-repo so the offline build stays dependency-free, and deliberately
//! only as general as the bench schema needs: objects, arrays, strings,
//! and finite numbers.

use std::fmt::Write as _;

/// Version stamped into every report; the gate refuses to compare
/// mismatched versions (schema drift must be an explicit failure, not a
/// silently ignored metric).
///
/// v2 adds the optional per-metric `tol` field: a tolerance carried by
/// the metric itself, so latency ceilings and throughput floors can be
/// tuned per quantile instead of one loose flag for the whole report.
pub const SCHEMA_VERSION: u64 = 2;

// ---------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------

/// A JSON value (the subset the bench reports use).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text (objects, arrays, strings, numbers).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (bytes are valid UTF-8:
                        // the input came from &str).
                        let rest =
                            std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                        let c = rest.chars().next().ok_or("unterminated string")?;
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        other => Err(format!("unexpected {other:?} at byte {pos}")),
    }
}

// ---------------------------------------------------------------------
// Bench report schema
// ---------------------------------------------------------------------

/// How the perf-smoke gate treats a metric.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Deterministic (seeded op counts): must match the baseline exactly.
    Count,
    /// Machine-dependent rate: must stay above `baseline / tolerance`.
    Throughput,
    /// Latency quantile in nanoseconds: gated against `baseline × tol`
    /// when the metric carries a `tol` (or the gate is given a global
    /// `--latency-tolerance`); informational otherwise.
    LatencyNs,
    /// Anything else worth recording: informational, never gated.
    Info,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Count => "count",
            MetricKind::Throughput => "throughput",
            MetricKind::LatencyNs => "latency_ns",
            MetricKind::Info => "info",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "count" => Ok(MetricKind::Count),
            "throughput" => Ok(MetricKind::Throughput),
            "latency_ns" => Ok(MetricKind::LatencyNs),
            "info" => Ok(MetricKind::Info),
            other => Err(format!("unknown metric kind {other:?}")),
        }
    }
}

/// One named measurement in a [`BenchReport`].
#[derive(Clone, Debug)]
pub struct Metric {
    /// Dotted metric name, e.g. `worst_case_update.d2.n64.dyn-ddc`.
    pub name: String,
    /// Gate treatment.
    pub kind: MetricKind,
    /// The measured value.
    pub value: f64,
    /// Per-metric gate tolerance (schema v2). For `LatencyNs` the gate
    /// enforces `current ≤ baseline × tol` even without a global
    /// latency tolerance; for `Throughput` it overrides the global
    /// floor divisor. `Count` and `Info` metrics ignore it. The
    /// tolerance lives in the metric (and therefore in the committed
    /// baseline) so every gated bound is reviewable in the diff.
    pub tol: Option<f64>,
}

/// The `BENCH_<name>.json` payload a `--json` bench run writes.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Which binary produced this (`shard_scaling`, `update_cost`, …).
    pub bench: String,
    /// All measurements, in emission order.
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// An empty report for bench `name`.
    pub fn new(name: &str) -> Self {
        Self {
            bench: name.to_string(),
            metrics: Vec::new(),
        }
    }

    /// Appends one measurement.
    pub fn push(&mut self, name: impl Into<String>, kind: MetricKind, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            kind,
            value,
            tol: None,
        });
    }

    /// Appends one measurement carrying its own gate tolerance
    /// (schema v2; see [`Metric::tol`]).
    pub fn push_gated(&mut self, name: impl Into<String>, kind: MetricKind, value: f64, tol: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            kind,
            value,
            tol: Some(tol),
        });
    }

    /// Appends the named observability histograms as count/p50/p99/max
    /// metrics, so bench JSON carries the quantiles `ddc stats` would
    /// show for the same run. The caller passes an explicit name list
    /// (not "whatever is registered") so the metric set — which the gate
    /// checks for schema drift — is deterministic. Latencies are
    /// informational; the sample counts ride along as `Info` too because
    /// they depend on wall-clock-paced loops on most benches.
    pub fn push_obs_latencies(&mut self, names: &[&'static str]) {
        for name in names {
            let snap = ddc_core::obs::histogram(name).snapshot();
            self.push(
                format!("obs.{name}.count"),
                MetricKind::Info,
                snap.count as f64,
            );
            for (suffix, v) in [
                ("p50_ns", snap.quantile(0.5)),
                ("p99_ns", snap.quantile(0.99)),
                ("max_ns", snap.max),
            ] {
                self.push(
                    format!("obs.{name}.{suffix}"),
                    MetricKind::LatencyNs,
                    v as f64,
                );
            }
        }
    }

    /// Serializes to pretty-enough JSON text (one metric per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(
            out,
            "  \"bench\": {},",
            Json::Str(self.bench.clone()).render()
        );
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let mut fields = vec![
                ("name".to_string(), Json::Str(m.name.clone())),
                ("kind".to_string(), Json::Str(m.kind.as_str().to_string())),
                ("value".to_string(), Json::Num(m.value)),
            ];
            if let Some(t) = m.tol {
                fields.push(("tol".to_string(), Json::Num(t)));
            }
            let row = Json::Obj(fields);
            let sep = if i + 1 == self.metrics.len() { "" } else { "," };
            let _ = writeln!(out, "    {}{sep}", row.render());
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses and validates a report, rejecting schema-version drift.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION as f64 {
            return Err(format!(
                "schema_version {version} != supported {SCHEMA_VERSION}"
            ));
        }
        let bench = root
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing bench name")?
            .to_string();
        let rows = match root.get("metrics") {
            Some(Json::Arr(rows)) => rows,
            _ => return Err("missing metrics array".to_string()),
        };
        let mut metrics = Vec::with_capacity(rows.len());
        for row in rows {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric missing name")?
                .to_string();
            let kind = MetricKind::parse(
                row.get("kind")
                    .and_then(Json::as_str)
                    .ok_or("metric missing kind")?,
            )?;
            let value = row
                .get("value")
                .and_then(Json::as_num)
                .ok_or("metric missing value")?;
            let tol = match row.get("tol") {
                None => None,
                Some(j) => {
                    let t = j.as_num().ok_or(format!("{name}: tol must be a number"))?;
                    if !t.is_finite() || t < 1.0 {
                        return Err(format!("{name}: tol {t} must be finite and ≥ 1"));
                    }
                    Some(t)
                }
            };
            metrics.push(Metric {
                name,
                kind,
                value,
                tol,
            });
        }
        Ok(Self { bench, metrics })
    }

    /// Writes `BENCH_<bench>.json` into `dir`, returning the path.
    pub fn write(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

// ---------------------------------------------------------------------
// Perf-smoke gate
// ---------------------------------------------------------------------

/// Compares `current` against `baseline`. Every baseline metric must be
/// present in the current report and vice versa (anything else is schema
/// drift); `Count` metrics must match exactly, `Throughput` metrics must
/// not fall below `baseline / tolerance`. Returns the per-metric report
/// text, or the list of violations.
pub fn gate(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> Result<String, String> {
    gate_with_latency(baseline, current, tolerance, None)
}

/// [`gate`] with an optional latency ceiling: a `LatencyNs` metric
/// whose baseline carries a per-metric `tol` fails if it exceeds
/// `baseline × tol`; otherwise, when `latency_tolerance` is `Some(t)`,
/// it fails above `baseline × t` (latencies stay informational when
/// neither is present, and a zero baseline — an unexercised histogram —
/// is never gated). A `Throughput` baseline with a `tol` uses it in
/// place of the global `tolerance` divisor. This is how latency-quantile
/// regressions fail perf-smoke without making noisy tails an
/// exact-match liability, and how each bound stays reviewable in the
/// committed baseline.
pub fn gate_with_latency(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
    latency_tolerance: Option<f64>,
) -> Result<String, String> {
    let mut failures = Vec::new();
    let mut lines = Vec::new();
    if baseline.bench != current.bench {
        failures.push(format!(
            "bench name drift: baseline {:?} vs current {:?}",
            baseline.bench, current.bench
        ));
    }
    for m in &current.metrics {
        if !baseline.metrics.iter().any(|b| b.name == m.name) {
            failures.push(format!(
                "schema drift: metric {:?} missing from baseline (re-generate bench/baselines)",
                m.name
            ));
        }
    }
    for base in &baseline.metrics {
        let Some(cur) = current.metrics.iter().find(|m| m.name == base.name) else {
            failures.push(format!(
                "schema drift: metric {:?} missing from current run",
                base.name
            ));
            continue;
        };
        if cur.kind != base.kind {
            failures.push(format!(
                "schema drift: {} kind {:?} vs baseline {:?}",
                base.name, cur.kind, base.kind
            ));
            continue;
        }
        if cur.tol != base.tol {
            failures.push(format!(
                "schema drift: {} tol {:?} vs baseline {:?} (the bench binary sets tol; \
                 re-generate bench/baselines)",
                base.name, cur.tol, base.tol
            ));
            continue;
        }
        match base.kind {
            MetricKind::Count => {
                let eps = 1e-6 * base.value.abs().max(1.0);
                if (cur.value - base.value).abs() > eps {
                    failures.push(format!(
                        "count drift: {} = {} (baseline {})",
                        base.name, cur.value, base.value
                    ));
                } else {
                    lines.push(format!("ok    {} = {}", base.name, cur.value));
                }
            }
            MetricKind::Throughput => {
                let floor = base.value / base.tol.unwrap_or(tolerance);
                if cur.value < floor {
                    failures.push(format!(
                        "throughput floor: {} = {:.0} < {:.0} (baseline {:.0} / {tolerance}x)",
                        base.name, cur.value, floor, base.value
                    ));
                } else {
                    lines.push(format!(
                        "ok    {} = {:.0} (floor {:.0})",
                        base.name, cur.value, floor
                    ));
                }
            }
            MetricKind::LatencyNs => match base.tol.or(latency_tolerance) {
                Some(t) if base.value > 0.0 => {
                    let ceiling = base.value * t;
                    if cur.value > ceiling {
                        failures.push(format!(
                            "latency ceiling: {} = {:.0}ns > {:.0}ns (baseline {:.0}ns × {t})",
                            base.name, cur.value, ceiling, base.value
                        ));
                    } else {
                        lines.push(format!(
                            "ok    {} = {:.0}ns (ceiling {:.0}ns)",
                            base.name, cur.value, ceiling
                        ));
                    }
                }
                _ => {
                    lines.push(format!(
                        "info  {} = {} (baseline {})",
                        base.name, cur.value, base.value
                    ));
                }
            },
            MetricKind::Info => {
                lines.push(format!(
                    "info  {} = {} (baseline {})",
                    base.name, cur.value, base.value
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(lines.join("\n"))
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, MetricKind, f64)]) -> BenchReport {
        let mut r = BenchReport::new("t");
        for (n, k, v) in pairs {
            r.push(*n, *k, *v);
        }
        r
    }

    #[test]
    fn json_roundtrip() {
        let r = report(&[
            ("a.count", MetricKind::Count, 42.0),
            ("b.rate", MetricKind::Throughput, 123456.789),
            ("c.p99", MetricKind::LatencyNs, 1e9),
        ]);
        let text = r.to_json();
        let back = BenchReport::parse(&text).unwrap();
        assert_eq!(back.bench, "t");
        assert_eq!(back.metrics.len(), 3);
        assert_eq!(back.metrics[0].kind, MetricKind::Count);
        assert_eq!(back.metrics[1].value, 123456.789);
    }

    #[test]
    fn json_escaping_and_nesting() {
        let v = Json::Obj(vec![(
            "k\"ey\n".to_string(),
            Json::Arr(vec![Json::Num(-1.5), Json::Str("v".to_string())]),
        )]);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_rejects_version_drift() {
        let text = "{\"schema_version\": 99, \"bench\": \"t\", \"metrics\": []}";
        assert!(BenchReport::parse(text)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn gate_passes_identical_reports() {
        let r = report(&[
            ("a", MetricKind::Count, 7.0),
            ("b", MetricKind::Throughput, 100.0),
        ]);
        assert!(gate(&r, &r, 3.0).is_ok());
    }

    #[test]
    fn gate_allows_throughput_within_tolerance() {
        let base = report(&[("q", MetricKind::Throughput, 300_000.0)]);
        let cur = report(&[("q", MetricKind::Throughput, 110_000.0)]);
        assert!(gate(&base, &cur, 3.0).is_ok());
        let slow = report(&[("q", MetricKind::Throughput, 90_000.0)]);
        assert!(gate(&base, &slow, 3.0).unwrap_err().contains("floor"));
    }

    #[test]
    fn latency_ceiling_gates_only_when_enabled() {
        let base = report(&[("p99", MetricKind::LatencyNs, 1_000.0)]);
        let slow = report(&[("p99", MetricKind::LatencyNs, 50_000.0)]);
        // Informational by default.
        assert!(gate(&base, &slow, 3.0).is_ok());
        // Gated with an explicit ceiling.
        let err = gate_with_latency(&base, &slow, 3.0, Some(10.0)).unwrap_err();
        assert!(err.contains("latency ceiling"), "{err}");
        let ok = report(&[("p99", MetricKind::LatencyNs, 9_000.0)]);
        assert!(gate_with_latency(&base, &ok, 3.0, Some(10.0)).is_ok());
        // A zero baseline (unexercised histogram) is never gated.
        let zero = report(&[("p99", MetricKind::LatencyNs, 0.0)]);
        assert!(gate_with_latency(&zero, &slow, 3.0, Some(10.0)).is_ok());
    }

    #[test]
    fn tol_roundtrips_through_json() {
        let mut r = BenchReport::new("lat");
        r.push_gated("prefix.d2.p50_ns", MetricKind::LatencyNs, 180.0, 5.0);
        r.push_gated("prefix.d2.p99_ns", MetricKind::LatencyNs, 420.0, 8.0);
        r.push("reads", MetricKind::Count, 37.0);
        let back = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(back.metrics[0].tol, Some(5.0));
        assert_eq!(back.metrics[1].tol, Some(8.0));
        assert_eq!(back.metrics[2].tol, None);
        assert_eq!(back.metrics[0].kind, MetricKind::LatencyNs);
        assert_eq!(back.metrics[0].value, 180.0);
    }

    #[test]
    fn parse_rejects_v1_reports_and_bad_tol() {
        // A v1 report (no tol fields, old version stamp) must be an
        // explicit failure, not a silently tolerated baseline.
        let v1 = "{\"schema_version\": 1, \"bench\": \"t\", \"metrics\": [\
                  {\"name\":\"a\",\"kind\":\"count\",\"value\":1}]}";
        assert!(BenchReport::parse(v1)
            .unwrap_err()
            .contains("schema_version"));
        // tol must be a finite number ≥ 1 (a sub-unity tolerance would
        // gate tighter than the baseline itself — always a typo).
        let bad = "{\"schema_version\": 2, \"bench\": \"t\", \"metrics\": [\
                   {\"name\":\"a\",\"kind\":\"latency_ns\",\"value\":10,\"tol\":0.5}]}";
        assert!(BenchReport::parse(bad).unwrap_err().contains("tol"));
        let nan = "{\"schema_version\": 2, \"bench\": \"t\", \"metrics\": [\
                   {\"name\":\"a\",\"kind\":\"latency_ns\",\"value\":10,\"tol\":\"x\"}]}";
        assert!(BenchReport::parse(nan).unwrap_err().contains("tol"));
    }

    #[test]
    fn per_metric_tol_gates_latency_without_global_flag() {
        let mut base = BenchReport::new("t");
        base.push_gated("p99", MetricKind::LatencyNs, 1_000.0, 5.0);
        let mut ok = BenchReport::new("t");
        ok.push_gated("p99", MetricKind::LatencyNs, 4_900.0, 5.0);
        assert!(gate(&base, &ok, 3.0).is_ok());
        // 6µs > 1µs × 5: out-of-tolerance p99 regression fails even
        // though no --latency-tolerance was passed.
        let mut slow = BenchReport::new("t");
        slow.push_gated("p99", MetricKind::LatencyNs, 6_000.0, 5.0);
        let err = gate(&base, &slow, 3.0).unwrap_err();
        assert!(err.contains("latency ceiling"), "{err}");
    }

    #[test]
    fn per_metric_tol_overrides_global_throughput_divisor() {
        let mut base = BenchReport::new("t");
        base.push_gated("rate", MetricKind::Throughput, 100.0, 1.5);
        let mut cur = BenchReport::new("t");
        // Within the loose global 3x but below the metric's own 1.5x
        // floor: must fail.
        cur.push_gated("rate", MetricKind::Throughput, 50.0, 1.5);
        assert!(gate(&base, &cur, 3.0).unwrap_err().contains("floor"));
        let mut fine = BenchReport::new("t");
        fine.push_gated("rate", MetricKind::Throughput, 70.0, 1.5);
        assert!(gate(&base, &fine, 3.0).is_ok());
    }

    #[test]
    fn tol_drift_is_schema_drift() {
        let mut base = BenchReport::new("t");
        base.push_gated("p99", MetricKind::LatencyNs, 1_000.0, 5.0);
        let mut cur = BenchReport::new("t");
        cur.push("p99", MetricKind::LatencyNs, 1_000.0);
        let err = gate(&base, &cur, 3.0).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
    }

    #[test]
    fn gate_fails_on_count_drift_and_schema_drift() {
        let base = report(&[("a", MetricKind::Count, 7.0)]);
        let drifted = report(&[("a", MetricKind::Count, 8.0)]);
        assert!(gate(&base, &drifted, 3.0)
            .unwrap_err()
            .contains("count drift"));
        let renamed = report(&[("z", MetricKind::Count, 7.0)]);
        let err = gate(&base, &renamed, 3.0).unwrap_err();
        assert!(err.contains("missing from baseline"));
        assert!(err.contains("missing from current"));
    }
}
