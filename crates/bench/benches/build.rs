//! Construction costs: bulk bottom-up build vs per-cell incremental
//! insertion vs the parallel fork-join builder, against the baselines'
//! build paths. Batch-load time is the paper's §1 "first batch load data"
//! phase — the one cost the prefix-sum family optimizes for.
//!
//! ```text
//! cargo bench -p ddc-bench --features bench-ext --bench build
//! ```

use ddc_baselines::{PrefixSumEngine, RelativePrefixEngine};
use ddc_bench::timer::{report, time_quick};
use ddc_core::{DdcConfig, DdcEngine, DdcTree};
use ddc_workload::{rng, uniform_array};

fn main() {
    for n in [64usize, 256] {
        let shape = ddc_array::Shape::cube(2, n);
        let base = uniform_array(&shape, -50, 50, &mut rng(21));
        let t = time_quick(|| {
            std::hint::black_box(DdcEngine::<i64>::from_array_with(
                &base,
                DdcConfig::dynamic(),
            ));
        });
        report("build", "ddc-bulk", n, &t);
        let t = time_quick(|| {
            std::hint::black_box(DdcTree::from_array_parallel(
                &base,
                n.next_power_of_two(),
                DdcConfig::dynamic(),
            ));
        });
        report("build", "ddc-parallel", n, &t);
        let t = time_quick(|| {
            std::hint::black_box(DdcEngine::<i64>::from_array_incremental(
                &base,
                DdcConfig::dynamic(),
            ));
        });
        report("build", "ddc-incremental", n, &t);
        let t = time_quick(|| {
            std::hint::black_box(PrefixSumEngine::from_array(&base));
        });
        report("build", "prefix-sum", n, &t);
        let t = time_quick(|| {
            std::hint::black_box(RelativePrefixEngine::from_array(&base));
        });
        report("build", "relative-prefix", n, &t);
    }
}
