//! Construction costs: bulk bottom-up build vs per-cell incremental
//! insertion vs the parallel fork-join builder, against the baselines'
//! build paths. Batch-load time is the paper's §1 "first batch load data"
//! phase — the one cost the prefix-sum family optimizes for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddc_baselines::{PrefixSumEngine, RelativePrefixEngine};
use ddc_core::{DdcConfig, DdcEngine, DdcTree};
use ddc_workload::{rng, uniform_array};
use std::time::Duration;

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300));
    for n in [64usize, 256] {
        let shape = ddc_array::Shape::cube(2, n);
        let base = uniform_array(&shape, -50, 50, &mut rng(21));
        group.bench_with_input(BenchmarkId::new("ddc-bulk", n), &n, |b, _| {
            b.iter(|| DdcEngine::from_array_with(&base, DdcConfig::dynamic()))
        });
        group.bench_with_input(BenchmarkId::new("ddc-parallel", n), &n, |b, _| {
            b.iter(|| {
                DdcTree::from_array_parallel(
                    &base,
                    n.next_power_of_two(),
                    DdcConfig::dynamic(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("ddc-incremental", n), &n, |b, _| {
            b.iter(|| DdcEngine::from_array_incremental(&base, DdcConfig::dynamic()))
        });
        group.bench_with_input(BenchmarkId::new("prefix-sum", n), &n, |b, _| {
            b.iter(|| PrefixSumEngine::from_array(&base))
        });
        group.bench_with_input(BenchmarkId::new("relative-prefix", n), &n, |b, _| {
            b.iter(|| RelativePrefixEngine::from_array(&base))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
