//! Theorem 2 in wall-clock form: Dynamic Data Cube update/query latency
//! as `n` doubles and `d` grows, plus the §4.4 elision ablation.
//!
//! ```text
//! cargo bench -p ddc-bench --features bench-ext --bench ddc_scaling
//! ```

use ddc_array::{RangeSumEngine, Shape};
use ddc_bench::timer::{report, time_quick};
use ddc_core::{DdcConfig, DdcEngine};
use ddc_workload::{rng, uniform_array, uniform_regions, uniform_updates};

fn engine(shape: &Shape, config: DdcConfig) -> DdcEngine<i64> {
    let mut r = rng(3);
    let base = uniform_array(shape, -9, 9, &mut r);
    DdcEngine::from_array_with(&base, config)
}

fn main() {
    for (d, ns) in [(2usize, vec![64usize, 256, 1024]), (3, vec![16, 64])] {
        for n in ns {
            let shape = Shape::cube(d, n);
            let mut e = engine(&shape, DdcConfig::dynamic());
            let stream = uniform_updates(&shape, 256, &mut rng(4));
            let mut i = 0usize;
            let t = time_quick(|| {
                let (p, delta) = &stream.updates[i % stream.updates.len()];
                e.apply_delta(p, *delta);
                i += 1;
            });
            report("ddc_update_scaling", &format!("d{d}"), n, &t);
        }
    }

    for (d, ns) in [(2usize, vec![64usize, 256, 1024]), (3, vec![16, 64])] {
        for n in ns {
            let shape = Shape::cube(d, n);
            let e = engine(&shape, DdcConfig::dynamic());
            let regions = uniform_regions(&shape, 128, &mut rng(5));
            let mut i = 0usize;
            let t = time_quick(|| {
                let q = &regions[i % regions.len()];
                i += 1;
                std::hint::black_box(e.range_sum(q));
            });
            report("ddc_query_scaling", &format!("d{d}"), n, &t);
        }
    }

    let shape = Shape::cube(2, 256);
    let regions = uniform_regions(&shape, 128, &mut rng(6));
    for h in [0usize, 1, 2, 3] {
        let e = engine(&shape, DdcConfig::dynamic().with_elision(h));
        let mut i = 0usize;
        let t = time_quick(|| {
            let q = &regions[i % regions.len()];
            i += 1;
            std::hint::black_box(e.range_sum(q));
        });
        report("ddc_elision", "query_h", h, &t);
    }
}
