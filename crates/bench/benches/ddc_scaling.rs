//! Theorem 2 in wall-clock form: Dynamic Data Cube update/query latency
//! as `n` doubles and `d` grows, plus the §4.4 elision ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddc_array::{RangeSumEngine, Shape};
use ddc_core::{DdcConfig, DdcEngine};
use ddc_workload::{rng, uniform_array, uniform_regions, uniform_updates};
use std::time::Duration;

fn engine(shape: &Shape, config: DdcConfig) -> DdcEngine<i64> {
    let mut r = rng(3);
    let base = uniform_array(shape, -9, 9, &mut r);
    DdcEngine::from_array_with(&base, config)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddc_update_scaling");
    group.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(300));
    for (d, ns) in [(2usize, vec![64usize, 256, 1024]), (3, vec![16, 64])] {
        for n in ns {
            let shape = Shape::cube(d, n);
            let mut e = engine(&shape, DdcConfig::dynamic());
            let mut r = rng(4);
            let stream = uniform_updates(&shape, 256, &mut r);
            let mut i = 0usize;
            group.bench_with_input(
                BenchmarkId::new(format!("d{d}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let (p, delta) = &stream.updates[i % stream.updates.len()];
                        e.apply_delta(p, *delta);
                        i += 1;
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("ddc_query_scaling");
    group.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(300));
    for (d, ns) in [(2usize, vec![64usize, 256, 1024]), (3, vec![16, 64])] {
        for n in ns {
            let shape = Shape::cube(d, n);
            let e = engine(&shape, DdcConfig::dynamic());
            let mut r = rng(5);
            let regions = uniform_regions(&shape, 128, &mut r);
            let mut i = 0usize;
            group.bench_with_input(
                BenchmarkId::new(format!("d{d}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let q = &regions[i % regions.len()];
                        i += 1;
                        std::hint::black_box(e.range_sum(q))
                    })
                },
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("ddc_elision");
    group.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(300));
    let shape = Shape::cube(2, 256);
    let mut r = rng(6);
    let regions = uniform_regions(&shape, 128, &mut r);
    for h in [0usize, 1, 2, 3] {
        let e = engine(&shape, DdcConfig::dynamic().with_elision(h));
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("query_h", h), &h, |b, _| {
            b.iter(|| {
                let q = &regions[i % regions.len()];
                i += 1;
                std::hint::black_box(e.range_sum(q))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
