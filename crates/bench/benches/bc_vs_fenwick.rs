//! Base-store ablation (§4.1 / novelty note): the paper's B^c tree versus
//! a Fenwick tree and a lazy segment tree on the one-dimensional
//! cumulative workload that forms the DDC's recursion base case.
//!
//! ```text
//! cargo bench -p ddc-bench --features bench-ext --bench bc_vs_fenwick
//! ```

use ddc_bench::timer::{report, time_quick};
use ddc_btree::{BcTree, CumulativeStore, Fenwick, SparseSegTree};
use ddc_workload::rng;

const SIZES: [usize; 2] = [1 << 10, 1 << 16];

fn stores(values: &[i64]) -> Vec<(&'static str, Box<dyn CumulativeStore<i64>>)> {
    vec![
        ("bc-f4", Box::new(BcTree::from_values(4, values))),
        ("bc-f16", Box::new(BcTree::from_values(16, values))),
        ("bc-f64", Box::new(BcTree::from_values(64, values))),
        ("fenwick", Box::new(Fenwick::from_values(values))),
        ("sparse-seg", Box::new(SparseSegTree::from_values(values))),
    ]
}

fn main() {
    for k in SIZES {
        let values: Vec<i64> = (0..k as i64).map(|i| i % 101 - 50).collect();
        let mut r = rng(17);
        let probes: Vec<usize> = (0..256).map(|_| r.gen_range(0..k)).collect();
        for (label, store) in &stores(&values) {
            let mut i = 0usize;
            let t = time_quick(|| {
                let idx = probes[i % probes.len()];
                i += 1;
                std::hint::black_box(store.prefix(idx));
            });
            report("store_prefix", label, k, &t);
        }
    }

    for k in SIZES {
        let values: Vec<i64> = (0..k as i64).map(|i| i % 101 - 50).collect();
        let mut r = rng(18);
        let probes: Vec<usize> = (0..256).map(|_| r.gen_range(0..k)).collect();
        for (label, store) in stores(&values).iter_mut() {
            let mut i = 0usize;
            let t = time_quick(|| {
                let idx = probes[i % probes.len()];
                i += 1;
                store.add(idx, 1);
            });
            report("store_update", label, k, &t);
        }
    }
}
