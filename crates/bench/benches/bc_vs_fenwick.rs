//! Base-store ablation (§4.1 / novelty note): the paper's B^c tree versus
//! a Fenwick tree and a lazy segment tree on the one-dimensional
//! cumulative workload that forms the DDC's recursion base case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddc_btree::{BcTree, CumulativeStore, Fenwick, SparseSegTree};
use ddc_workload::rng;
use rand::Rng;
use std::time::Duration;

const SIZES: [usize; 2] = [1 << 10, 1 << 16];

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_prefix");
    group.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(300));
    for k in SIZES {
        let values: Vec<i64> = (0..k as i64).map(|i| i % 101 - 50).collect();
        let stores: Vec<(&str, Box<dyn CumulativeStore<i64>>)> = vec![
            ("bc-f4", Box::new(BcTree::from_values(4, &values))),
            ("bc-f16", Box::new(BcTree::from_values(16, &values))),
            ("bc-f64", Box::new(BcTree::from_values(64, &values))),
            ("fenwick", Box::new(Fenwick::from_values(&values))),
            ("sparse-seg", Box::new(SparseSegTree::from_values(&values))),
        ];
        let mut r = rng(17);
        let probes: Vec<usize> = (0..256).map(|_| r.gen_range(0..k)).collect();
        for (label, store) in &stores {
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new(*label, k), &k, |b, _| {
                b.iter(|| {
                    let idx = probes[i % probes.len()];
                    i += 1;
                    std::hint::black_box(store.prefix(idx))
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("store_update");
    group.sample_size(20).measurement_time(Duration::from_millis(600)).warm_up_time(Duration::from_millis(300));
    for k in SIZES {
        let values: Vec<i64> = (0..k as i64).map(|i| i % 101 - 50).collect();
        let mut r = rng(18);
        let probes: Vec<usize> = (0..256).map(|_| r.gen_range(0..k)).collect();
        let mut stores: Vec<(&str, Box<dyn CumulativeStore<i64>>)> = vec![
            ("bc-f4", Box::new(BcTree::from_values(4, &values))),
            ("bc-f16", Box::new(BcTree::from_values(16, &values))),
            ("bc-f64", Box::new(BcTree::from_values(64, &values))),
            ("fenwick", Box::new(Fenwick::from_values(&values))),
            ("sparse-seg", Box::new(SparseSegTree::from_values(&values))),
        ];
        for (label, store) in stores.iter_mut() {
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new(*label, k), &k, |b, _| {
                b.iter(|| {
                    let idx = probes[i % probes.len()];
                    i += 1;
                    store.add(idx, 1);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stores);
criterion_main!(benches);
