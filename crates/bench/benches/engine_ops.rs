//! Wall-clock complement to Table 1: per-operation latency of every
//! range-sum method on identical cubes and workloads.
//!
//! ```text
//! cargo bench -p ddc-bench --features bench-ext --bench engine_ops
//! ```

use ddc_array::{RangeSumEngine, Shape};
use ddc_bench::timer::{report, time_quick};
use ddc_olap::EngineKind;
use ddc_workload::{rng, uniform_array, uniform_regions, uniform_updates};

fn build(kind: EngineKind, shape: &Shape) -> Box<dyn RangeSumEngine<i64>> {
    let mut r = rng(11);
    let base = uniform_array(shape, -50, 50, &mut r);
    let mut e = kind.build(shape.clone());
    for p in shape.iter_points() {
        let v = base.get(&p);
        if v != 0 {
            e.apply_delta(&p, v);
        }
    }
    e
}

fn bench_updates() {
    for n in [64usize, 256] {
        let shape = Shape::cube(2, n);
        let stream = uniform_updates(&shape, 512, &mut rng(5));
        for kind in EngineKind::ALL {
            // PS updates on 256² rewrite ~16k cells each; keep it — that
            // contrast is the point of the comparison.
            let mut engine = build(kind, &shape);
            let mut i = 0usize;
            let t = time_quick(|| {
                let (p, delta) = &stream.updates[i % stream.updates.len()];
                engine.apply_delta(p, *delta);
                i += 1;
            });
            report("update", kind.label(), n, &t);
        }
    }
}

fn bench_queries() {
    for n in [64usize, 256] {
        let shape = Shape::cube(2, n);
        let regions = uniform_regions(&shape, 256, &mut rng(6));
        for kind in EngineKind::ALL {
            let engine = build(kind, &shape);
            let mut i = 0usize;
            let t = time_quick(|| {
                let q = &regions[i % regions.len()];
                i += 1;
                std::hint::black_box(engine.range_sum(q));
            });
            report("range_query", kind.label(), n, &t);
        }
    }
}

fn main() {
    bench_updates();
    bench_queries();
}
