//! Wall-clock complement to Table 1: per-operation latency of every
//! range-sum method on identical cubes and workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddc_array::{RangeSumEngine, Shape};
use ddc_olap::EngineKind;
use ddc_workload::{rng, uniform_array, uniform_regions, uniform_updates};
use std::time::Duration;

fn build(kind: EngineKind, shape: &Shape) -> Box<dyn RangeSumEngine<i64>> {
    let mut r = rng(11);
    let base = uniform_array(shape, -50, 50, &mut r);
    let mut e = kind.build(shape.clone());
    for p in shape.iter_points() {
        let v = base.get(&p);
        if v != 0 {
            e.apply_delta(&p, v);
        }
    }
    e
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    group.sample_size(20).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(300));
    for n in [64usize, 256] {
        let shape = Shape::cube(2, n);
        let mut r = rng(5);
        let stream = uniform_updates(&shape, 512, &mut r);
        for kind in EngineKind::ALL {
            // PS updates on 256² rewrite ~16k cells each; keep it but it
            // is the point of the comparison.
            let mut engine = build(kind, &shape);
            let mut i = 0usize;
            group.bench_with_input(
                BenchmarkId::new(kind.label(), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let (p, delta) = &stream.updates[i % stream.updates.len()];
                        engine.apply_delta(p, *delta);
                        i += 1;
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query");
    group.sample_size(20).measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(300));
    for n in [64usize, 256] {
        let shape = Shape::cube(2, n);
        let mut r = rng(6);
        let regions = uniform_regions(&shape, 256, &mut r);
        for kind in EngineKind::ALL {
            let engine = build(kind, &shape);
            let mut i = 0usize;
            group.bench_with_input(
                BenchmarkId::new(kind.label(), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let q = &regions[i % regions.len()];
                        i += 1;
                        std::hint::black_box(engine.range_sum(q))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_queries);
criterion_main!(benches);
