//! `ddc model` — run the deterministic concurrency model checker over
//! the core's shard/WAL scenarios (built with `--features model`).
//!
//! ```text
//! ddc model                      # full sweep: green scenarios + buggy fixtures
//! ddc model --iterations 5000    # cap DFS iterations per scenario
//! ddc model --preemptions 3      # raise the preemption bound
//! ddc model --skip-buggy         # only the green ported models
//! ```
//!
//! Exit is non-zero (an `Err`) if any ported model fails or a seeded
//! buggy fixture goes undetected.

use std::fmt::Write as _;
use std::time::Instant;

use ddc_core::models;
use ddc_model::CheckerConfig;

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

/// Entry point for `ddc model`.
pub fn run(args: &[String]) -> Result<String, String> {
    // The CLI sweep digs one preemption deeper than the library
    // default: ~30k interleavings in seconds, still exhaustive on two
    // of the three ported models.
    let mut cfg = CheckerConfig {
        preemption_bound: 3,
        ..CheckerConfig::default()
    };
    let mut skip_buggy = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iterations" => {
                cfg.max_iterations = parse_num("--iterations", args.get(i + 1))?;
                i += 2;
            }
            "--preemptions" => {
                cfg.preemption_bound = parse_num("--preemptions", args.get(i + 1))?;
                i += 2;
            }
            "--skip-buggy" => {
                skip_buggy = true;
                i += 1;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --iterations N, --preemptions N, --skip-buggy)"
                ))
            }
        }
    }

    let mut out = String::new();
    let mut failed = false;
    let mut total_iterations = 0u64;
    let started = Instant::now();

    let _ = writeln!(
        out,
        "model checker: preemption bound {}, iteration cap {} per scenario",
        cfg.preemption_bound, cfg.max_iterations
    );
    type Scenario = fn(CheckerConfig) -> ddc_model::Report;
    let green: [(&str, Scenario); 3] = [
        ("shard_concurrent_updates", models::shard_concurrent_updates),
        ("shard_queue_drain", models::shard_queue_drain),
        ("wal_ack_after_append", models::wal_ack_after_append),
    ];
    let buggy: [(&str, Scenario); 2] = [
        ("buggy_counter", models::buggy_counter),
        ("buggy_handoff", models::buggy_handoff),
    ];

    let _ = writeln!(out, "\nported models (must pass):");
    for (name, scenario) in green {
        let t = Instant::now();
        let report = scenario(cfg.clone());
        total_iterations += report.iterations;
        let status = if report.passed() {
            if report.capped {
                "pass (capped)"
            } else {
                "pass (exhausted)"
            }
        } else {
            failed = true;
            "FAIL"
        };
        let _ = writeln!(
            out,
            "  {name:<28} {status:<16} {:>6} interleavings, {:>6} distinct states, {:>5} pruned, {:?}",
            report.iterations,
            report.distinct_states,
            report.pruned,
            t.elapsed()
        );
        if let Some(failure) = &report.failure {
            let _ = writeln!(out, "{failure}");
        }
    }

    if !skip_buggy {
        let _ = writeln!(out, "\nseeded buggy fixtures (must be detected):");
        for (name, scenario) in buggy {
            let t = Instant::now();
            let report = scenario(cfg.clone());
            total_iterations += report.iterations;
            match &report.failure {
                Some(failure) => {
                    let _ = writeln!(
                        out,
                        "  {name:<28} detected ({:?}) after {} interleavings in {:?}, minimal trace {} events / {} preemptions",
                        failure.kind,
                        failure.found_after,
                        t.elapsed(),
                        failure.trace.len(),
                        failure.preemptions,
                    );
                    let _ = writeln!(out, "{failure}");
                }
                None => {
                    failed = true;
                    let _ = writeln!(
                        out,
                        "  {name:<28} NOT DETECTED after {} interleavings",
                        report.iterations
                    );
                }
            }
        }
    }

    let _ = writeln!(
        out,
        "\ntotal: {total_iterations} interleavings in {:?}",
        started.elapsed()
    );
    if failed {
        Err(format!("model checking failed\n{out}"))
    } else {
        Ok(out)
    }
}
