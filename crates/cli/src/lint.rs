//! `ddc lint` — the repo-invariant semantic analyzer as a shell
//! subcommand (the same engine as the `ddc-lint` binary in
//! `ddc-check`).
//!
//! ```text
//! ddc lint [--root DIR] [--allow FILE] [--rule NAME] [--json FILE]
//! ddc lint --fixtures [--root DIR]
//! ```
//!
//! Errors (and so exits nonzero) on any blocking finding, stale
//! allowlist entry, or expired allowlist lease.

use std::path::PathBuf;

use ddc_check::lint;

/// Runs `ddc lint` with the given arguments, returning the report text.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut fixtures = false;
    let mut pr_override: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--allow" if i + 1 < args.len() => {
                allow_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--rule" if i + 1 < args.len() => {
                rule = Some(args[i + 1].clone());
                i += 2;
            }
            "--json" if i + 1 < args.len() => {
                json_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--pr" if i + 1 < args.len() => {
                pr_override = Some(
                    args[i + 1]
                        .parse()
                        .map_err(|_| format!("--pr expects a number, got `{}`", args[i + 1]))?,
                );
                i += 2;
            }
            "--fixtures" => {
                fixtures = true;
                i += 1;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --root DIR, --allow FILE, --rule NAME, \
                     --json FILE, --fixtures, --pr N)"
                ))
            }
        }
    }

    if fixtures {
        let r = lint::run_fixtures(&root.join("crates/check/tests/lint_fixtures"))?;
        let mut out = String::new();
        for (rule, (refound, total)) in &r.per_rule {
            out.push_str(&format!("fixtures [{rule}] {refound}/{total}\n"));
        }
        for (path, line, rule) in &r.missing {
            out.push_str(&format!("MISSED seeded violation {path}:{line} [{rule}]\n"));
        }
        for f in &r.unexpected {
            out.push_str(&format!("unexpected fixture finding {f}\n"));
        }
        out.push_str(&format!(
            "seeded violations re-found: {}/{}",
            r.refound, r.expected
        ));
        return if r.is_clean() { Ok(out) } else { Err(out) };
    }

    let allow_path = allow_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("cannot read {}: {e}", allow_path.display())),
    };
    let current_pr = pr_override.unwrap_or_else(|| lint::current_pr_from_changes(&root));
    let report = lint::run_lints(&root, &allowlist, current_pr, rule.as_deref())?;

    if let Some(p) = &json_path {
        std::fs::write(p, lint::report_json(&report))
            .map_err(|e| format!("cannot write {}: {e}", p.display()))?;
    }

    let mut out = String::new();
    for f in &report.blocking {
        out.push_str(&format!("{f}\n"));
    }
    for i in &report.stale {
        let a = &report.entries[*i];
        out.push_str(&format!(
            "stale allowlist entry (line {}, matched nothing — remove it): {} {} expires={} {}\n",
            a.line, a.rule, a.path, a.expires, a.needle
        ));
    }
    for i in &report.expired {
        let a = &report.entries[*i];
        out.push_str(&format!(
            "expired allowlist entry (line {}, lease ended at PR {}, now PR {current_pr}): \
             {} {} {}\n",
            a.line, a.expires, a.rule, a.path, a.needle
        ));
        if !a.rationale.is_empty() {
            out.push_str(&format!("  original rationale: {}\n", a.rationale));
        }
    }
    out.push_str(&format!(
        "{} blocking, {} waived, {} stale, {} expired (PR {current_pr})",
        report.blocking.len(),
        report.waived.len(),
        report.stale.len(),
        report.expired.len()
    ));
    if report.is_clean() {
        Ok(out)
    } else {
        Err(out)
    }
}
