//! `ddc stats` — exercise every instrumented subsystem with a seeded
//! workload, then dump the metrics registry.
//!
//! ```text
//! ddc stats [--seed N] [--ops N] [--json]
//! ```
//!
//! The workload touches each hot path the observability layer covers —
//! sharded updates (queue wait + commit), engine updates and prefix sums
//! for both engine kinds, WAL appends and recovery replay, cube growth,
//! and snapshot save/load — so the dump always shows live numbers. The
//! default output is Prometheus exposition text; `--json` switches to a
//! machine-readable object with the same content. Set `DDC_TRACE=1` to
//! also print the recent-span trace ring.

use ddc_array::{RangeSumEngine, Shape};
use ddc_core::{
    obs, wal, DdcConfig, DdcEngine, GrowableCube, ShardConfig, ShardedCube, WalOp, WalWriter,
};
use ddc_workload::DdcRng;

use crate::check::parse_flag;

/// Executes `ddc stats <args>`, returning the rendered registry.
pub fn run(args: &[String]) -> Result<String, String> {
    let seed = parse_flag(args, "--seed")?.unwrap_or(0x57A7);
    let ops = parse_flag(args, "--ops")?.unwrap_or(4096) as usize;
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| {
        a != "--json" && a != "--seed" && a != "--ops" && !a.chars().all(|c| c.is_ascii_digit())
    }) {
        return Err("usage: ddc stats [--seed N] [--ops N] [--json]".to_string());
    }

    workload(seed, ops).map_err(|e| format!("stats workload: {e}"))?;

    let mut out = if json {
        obs::render_json()
    } else {
        obs::prometheus_text()
    };
    if obs::trace_enabled() && !json {
        out.push('\n');
        out.push_str(&obs::trace_dump());
    }
    Ok(out)
}

/// Seeded workload hitting every instrumented subsystem.
fn workload(seed: u64, ops: usize) -> std::io::Result<()> {
    let mut rng = DdcRng::seed_from_u64(seed);
    let side = 64usize;

    // Sharded cube: queued updates (shard.queue_wait + shard.commit,
    // engine.update.dynamic_ddc) and fanned prefix queries
    // (engine.prefix_sum.dynamic_ddc).
    let cube = ShardedCube::<i64>::new(
        Shape::new(&[side, side]),
        DdcConfig::dynamic(),
        ShardConfig::with_shards(4),
    );
    for _ in 0..ops {
        let p = [rng.gen_range(0..side), rng.gen_range(0..side)];
        cube.update(&p, rng.gen_range(-100i64..=100));
    }
    cube.flush();
    for _ in 0..(ops / 8).max(16) {
        let p = [rng.gen_range(0..side), rng.gen_range(0..side)];
        let _ = cube.query_prefix(&p);
    }

    // Basic (§3) engine, so both engine kinds report.
    let mut basic = DdcEngine::<i64>::basic(Shape::new(&[side / 4, side / 4]));
    for _ in 0..(ops / 8).max(16) {
        let p = [rng.gen_range(0..side / 4), rng.gen_range(0..side / 4)];
        basic.apply_delta(&p, rng.gen_range(-10i64..=10));
        let _ = basic.prefix_sum(&p);
    }

    // WAL: append a log, then recover it (wal.append, wal.fsync,
    // wal.recover, and the record/byte counters).
    let mut writer = WalWriter::create(Vec::new())?;
    for _ in 0..(ops / 16).max(32) {
        writer.append(&WalOp::Update {
            point: vec![rng.gen_range(-32i64..32), rng.gen_range(-32i64..32)],
            delta: rng.gen_range(-100i64..=100),
        })?;
    }
    let log = writer.into_inner();
    let (recovered, _report) = wal::recover::<i64>(
        2,
        None,
        &log,
        DdcConfig::dynamic(),
        ddc_core::WalConfig::default(),
    )?;

    // Growth (growth.grow, growth.doublings) and persistence
    // (persist.save / persist.load / persist.save.bytes).
    let mut grown = GrowableCube::<i64>::new(2, DdcConfig::sparse());
    grown.add(&[0, 0], 1);
    grown.add(&[1 << 10, -(1 << 10)], 1);
    let mut snapshot = Vec::new();
    grown.save(&mut snapshot)?;
    let reloaded = GrowableCube::<i64>::load(&mut snapshot.as_slice(), DdcConfig::sparse())?;

    // Keep the cubes observable side effects (and the optimizer honest).
    assert_eq!(reloaded.total(), grown.total());
    assert_eq!(recovered.ndim(), 2);
    Ok(())
}
