//! # ddc-cli
//!
//! The `ddc` shell: an interactive / scriptable front end over the
//! workspace's data cubes. See [`Session`] for the interpreter and the
//! `command` module for the line language.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod check;
pub mod command;
pub mod lint;
#[cfg(feature = "model")]
pub mod model;
pub mod serve;
mod session;
pub mod stats;
pub mod wal;

pub use command::{Aggregate, Command, DimSpec, ParseError, RangeToken};
pub use session::{Output, Session};
