//! `ddc check` — the differential fuzzing harness on the command line.
//!
//! ```text
//! ddc check run [--seed N] [--cases N] [--ops N] [--out FILE]
//! ddc check replay FILE
//! ddc check faults [--seed N]
//! ddc check crash [--seed N] [--cases N] [--ops N] [--out FILE] [--paged]
//! ddc check serve [--seed N] [--iters N]
//! ddc check disk [--quick] [--seed N] [--schedules DIR] [--paged]
//! ```
//!
//! `run` fuzzes every engine against the oracle; on divergence the
//! shrunk repro is written to `--out` (default `ddc-divergence.trace`)
//! and the command fails. `replay` re-executes a repro file — the
//! round-trip that makes a shrunk trace an actionable bug report.
//! `faults` sweeps an injected I/O fault across every byte offset of a
//! randomized snapshot. `crash` simulates a process kill at every byte
//! offset of a trace's write-ahead log and verifies recovery restores
//! exactly the acknowledged prefix (shrinking any violation to a
//! replayable trace). `serve` fuzzes the network wire parser with
//! mutated/split/truncated requests and verifies both seeded parser
//! bugs are found. `disk` runs the disk-fault chaos sweep: seeded
//! traces against a fault-injecting VFS across a fault-probability
//! grid (no acked update lost; every run ends healthy or cleanly
//! degraded), then replays the committed `tests/faults/*.sched`
//! schedules with the retry protocol's tail truncation disabled and
//! verifies both seeded corruption classes are re-found.
//!
//! `--paged` (on `crash` and `disk`) runs the same sweep with the
//! out-of-core leaf backend: a buffer pool under a deliberately tiny
//! memory cap, so recovery replays the log onto evicting pages.

use ddc_check::{
    crash_sweep_with, disk_sweep_with, fault_sweep, fault_sweep_growable, fuzz, refind_seeded_bug,
    run_trace, DiskSweepConfig, FaultSchedule,
};
use ddc_core::{DdcConfig, DdcEngine, GrowableCube, PagerConfig};
use ddc_workload::{CheckTrace, CheckTraceConfig, DdcRng};

/// Engine config for `--paged` sweeps: leaf blocks (elision 1) behind
/// a buffer pool small enough that every nontrivial trace evicts.
fn paged_engine_config() -> DdcConfig {
    DdcConfig::dynamic()
        .with_elision(1)
        .with_paged_leaves(PagerConfig::in_mem(8 * 1024).with_page_bytes(256))
}

pub(crate) fn parse_flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("{name} needs a value"))?;
            return v
                .parse::<u64>()
                .map(Some)
                .map_err(|e| format!("{name}: {e}"));
        }
    }
    Ok(None)
}

fn parse_out(args: &[String]) -> Result<String, String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--out" {
            return args
                .get(i + 1)
                .cloned()
                .ok_or_else(|| "--out needs a path".to_string());
        }
    }
    Ok("ddc-divergence.trace".to_string())
}

/// Executes `ddc check <args>`, returning the report text or an error
/// (which the caller turns into a non-zero exit).
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("run") => {
            let rest = &args[1..];
            let seed = parse_flag(rest, "--seed")?.unwrap_or(0xDDC);
            let cases = parse_flag(rest, "--cases")?.unwrap_or(25) as usize;
            let ops = parse_flag(rest, "--ops")?.unwrap_or(200) as usize;
            let out_path = parse_out(rest)?;
            let outcome = fuzz(
                seed,
                cases,
                CheckTraceConfig {
                    ops,
                    max_cells: 2048,
                },
            );
            match outcome.failure {
                None => Ok(format!(
                    "ok: {} cases, {} ops, {} answers compared, 0 divergences (seed {seed})",
                    outcome.cases, outcome.ops_run, outcome.comparisons
                )),
                Some(f) => {
                    std::fs::write(&out_path, f.shrunk.to_text())
                        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
                    Err(format!(
                        "divergence in case {} (seed {}): {}\n\
                         shrunk to {} ops -> {out_path}\n\
                         replay with: ddc check replay {out_path}\n\
                         spans from the shrunk replay (tracing forced on):\n{}",
                        f.case,
                        f.seed,
                        f.divergence,
                        f.shrunk.ops.len(),
                        f.trace_dump
                    ))
                }
            }
        }
        Some("replay") => {
            let path = args
                .get(1)
                .ok_or_else(|| "usage: ddc check replay FILE".to_string())?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let trace = CheckTrace::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            replay_text(path, &trace)
        }
        Some("faults") => {
            let seed = parse_flag(&args[1..], "--seed")?.unwrap_or(0xFA17);
            let mut rng = DdcRng::seed_from_u64(seed);
            let mut fixed = DdcEngine::<i64>::dynamic(ddc_array::Shape::new(&[5, 4]));
            let mut growable = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
            for _ in 0..12 {
                let p = [rng.gen_range(0usize..5), rng.gen_range(0usize..4)];
                let v = rng.gen_range(-50i64..=50);
                use ddc_array::RangeSumEngine;
                fixed.apply_delta(&p, v);
                growable.add(&[p[0] as i64 - 2, p[1] as i64 - 2], v);
            }
            let a = fault_sweep(&fixed, DdcConfig::dynamic());
            let b = fault_sweep_growable(&growable, DdcConfig::dynamic());
            if a.is_clean() && b.is_clean() {
                Ok(format!(
                    "ok: fault sweep clean over {} + {} byte offsets (seed {seed})",
                    a.offsets, b.offsets
                ))
            } else {
                Err(format!(
                    "fault sweep found problems: fixed {{panics: {:?}, accepted: {:?}, \
                     roundtrip_ok: {}}}, growable {{panics: {:?}, accepted: {:?}, \
                     roundtrip_ok: {}}}",
                    a.panicked,
                    a.silently_accepted,
                    a.roundtrip_ok,
                    b.panicked,
                    b.silently_accepted,
                    b.roundtrip_ok
                ))
            }
        }
        Some("crash") => {
            let rest = &args[1..];
            let seed = parse_flag(rest, "--seed")?.unwrap_or(0xC4A5);
            let cases = parse_flag(rest, "--cases")?.unwrap_or(12) as usize;
            let ops = parse_flag(rest, "--ops")?.unwrap_or(120) as usize;
            let out_path = parse_out(rest)?;
            let paged = rest.iter().any(|a| a == "--paged");
            let engine = if paged {
                paged_engine_config()
            } else {
                DdcConfig::dynamic()
            };
            let fails =
                |t: &CheckTrace| crash_sweep_with(t, engine).map_or(true, |r| !r.is_clean());
            let mut offsets = 0usize;
            let mut recoveries = 0usize;
            for case in 0..cases {
                let case_seed = seed ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let mut rng = DdcRng::seed_from_u64(case_seed);
                let trace = CheckTrace::generate(
                    1 + case % 3,
                    CheckTraceConfig {
                        ops,
                        max_cells: 1024,
                    },
                    &mut rng,
                );
                let report =
                    crash_sweep_with(&trace, engine).map_err(|e| format!("case {case}: {e}"))?;
                if !report.is_clean() {
                    let shrunk = ddc_workload::shrink_trace(&trace, fails);
                    std::fs::write(&out_path, shrunk.to_text())
                        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
                    return Err(format!(
                        "crash-recovery violation in case {case} (seed {case_seed}): {}\n\
                         shrunk to {} ops -> {out_path}",
                        report
                            .failures
                            .first()
                            .cloned()
                            .unwrap_or_else(|| "corruption probe not caught".to_string()),
                        shrunk.ops.len()
                    ));
                }
                offsets += report.offsets;
                recoveries += report.recoveries;
            }
            let backend = if paged { "paged" } else { "slab" };
            Ok(format!(
                "ok: {cases} cases, {offsets} kill offsets, {recoveries} recoveries, \
                 0 violations ({backend} backend, seed {seed})"
            ))
        }
        Some("serve") => {
            let rest = &args[1..];
            let seed = parse_flag(rest, "--seed")?.unwrap_or(0xF022);
            let iters = parse_flag(rest, "--iters")?.unwrap_or(400);
            let report = ddc_check::fuzz_serve_parser(seed, iters).map_err(|f| f.to_string())?;
            // The harness must also FIND both seeded parser bugs — a
            // fuzzer that misses them is not covering header casing or
            // split boundaries, which is itself a regression.
            let mut found = Vec::new();
            for (name, quirk) in [
                (
                    "case-sensitive-content-length",
                    ddc_check::ParserQuirk::CaseSensitiveContentLength,
                ),
                (
                    "drop-split-carriage-return",
                    ddc_check::ParserQuirk::DropSplitCarriageReturn,
                ),
            ] {
                match ddc_check::find_parser_quirk(quirk, seed, iters) {
                    Some(i) => found.push(format!("{name} at iteration {i}")),
                    None => {
                        return Err(format!(
                            "seeded parser bug NOT found: {name} survived {iters} iterations \
                             (seed {seed}) — fuzzer coverage regressed"
                        ))
                    }
                }
            }
            Ok(format!(
                "ok: {} iterations, {} frames, {} mutations, {} truncations, {} chunks \
                 (seed {seed}); seeded bugs found: {}",
                report.iterations,
                report.frames,
                report.mutations,
                report.truncations,
                report.chunks,
                found.join(", ")
            ))
        }
        Some("disk") => {
            let rest = &args[1..];
            let seed = parse_flag(rest, "--seed")?.unwrap_or(0xD15C);
            let quick = rest.iter().any(|a| a == "--quick");
            let paged = rest.iter().any(|a| a == "--paged");
            let schedules_dir =
                parse_str(rest, "--schedules")?.unwrap_or_else(|| "tests/faults".to_string());
            let config = if quick {
                DiskSweepConfig::quick(seed)
            } else {
                DiskSweepConfig::full(seed)
            };
            let engine = if paged {
                paged_engine_config()
            } else {
                DdcConfig::dynamic()
            };
            let report = disk_sweep_with(&config, engine);
            if let Some(v) = report.violations.first() {
                return Err(format!(
                    "disk-fault violation (seed {seed}): {}\n\
                     schedule:\n{}\
                     shrunk to {} faults: {:?}",
                    v.detail,
                    v.schedule.to_text(),
                    v.shrunk.len(),
                    v.shrunk
                ));
            }
            // Regression teeth: every committed schedule must re-find a
            // violation when the tail-truncation protocol is disabled.
            let mut entries: Vec<_> = std::fs::read_dir(&schedules_dir)
                .map_err(|e| format!("cannot read schedule dir {schedules_dir}: {e}"))?
                .filter_map(Result::ok)
                .map(|d| d.path())
                .filter(|p| p.extension().is_some_and(|x| x == "sched"))
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(format!("no .sched schedules in {schedules_dir}"));
            }
            let mut refound = Vec::new();
            for path in &entries {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string());
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let schedule = FaultSchedule::parse(&text).map_err(|e| format!("{name}: {e}"))?;
                let r = refind_seeded_bug(&schedule).map_err(|e| format!("{name}: {e}"))?;
                refound.push(format!(
                    "{name} ({} faults, shrunk to {}): {}",
                    r.faults,
                    r.shrunk.len(),
                    r.violation
                ));
            }
            let backend = if paged { "paged" } else { "slab" };
            Ok(format!(
                "ok: disk sweep: {} runs, {} faults injected, {} acked ops, \
                 {} degraded runs, 0 violations ({backend} backend, seed {seed})\n\
                 seeded bugs re-found: {}/{}\n  {}",
                report.runs,
                report.faults_injected,
                report.acked,
                report.degraded_runs,
                refound.len(),
                entries.len(),
                refound.join("\n  ")
            ))
        }
        _ => Err("usage: ddc check run|replay|faults|crash|serve|disk …".to_string()),
    }
}

/// Parses a `--flag value` string option.
fn parse_str(args: &[String], name: &str) -> Result<Option<String>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{name} needs a value"));
        }
    }
    Ok(None)
}

/// Replays a parsed trace, reporting stats or the divergence.
pub fn replay_text(label: &str, trace: &CheckTrace) -> Result<String, String> {
    match run_trace(trace) {
        Ok(stats) => Ok(format!(
            "ok: {label}: {} ops replayed, {} answers compared, 0 divergences",
            stats.ops, stats.comparisons
        )),
        Err(d) => Err(format!("{label}: {d}")),
    }
}
