//! `ddc` — an interactive shell / batch runner for Dynamic Data Cubes.
//!
//! ```text
//! ddc                 # interactive REPL on stdin
//! ddc script.ddc …    # execute one or more scripts, then exit
//! ```

use std::io::{BufRead, Write};

use ddc_cli::{Output, Session};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `ddc model …` is the concurrency model checker; only binaries
    // built with `--features model` carry it.
    if args.first().map(String::as_str) == Some("model") {
        #[cfg(feature = "model")]
        match ddc_cli::model::run(&args[1..]) {
            Ok(report) => {
                println!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("ddc model: {e}");
                std::process::exit(1);
            }
        }
        #[cfg(not(feature = "model"))]
        {
            eprintln!(
                "ddc model: built without the `model` feature; rebuild with \
                 `cargo build -p ddc-cli --features model`"
            );
            std::process::exit(1);
        }
    }

    // `ddc check …` is the differential-fuzzing harness, `ddc lint`
    // the repo-invariant analyzer, `ddc wal …` the log-recovery
    // tooling, `ddc stats` the metrics dump, and `ddc serve` /
    // `ddc loadgen` the network front end — subcommands, not scripts.
    for (name, runner) in [
        (
            "check",
            ddc_cli::check::run as fn(&[String]) -> Result<String, String>,
        ),
        ("lint", ddc_cli::lint::run),
        ("wal", ddc_cli::wal::run),
        ("stats", ddc_cli::stats::run),
        ("serve", ddc_cli::serve::run),
        ("loadgen", ddc_cli::serve::run_loadgen),
    ] {
        if args.first().map(String::as_str) == Some(name) {
            match runner(&args[1..]) {
                Ok(report) => {
                    println!("{report}");
                    return;
                }
                Err(e) => {
                    eprintln!("ddc {name}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let mut session = Session::new();

    if !args.is_empty() {
        for path in &args {
            let script = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("ddc: cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            for (no, line) in script.lines().enumerate() {
                match session.execute_line(line) {
                    Ok(Output::Text(t)) => println!("{t}"),
                    Ok(Output::Quit) => return,
                    Ok(Output::Silent) => {}
                    Err(e) => {
                        eprintln!("ddc: {path}:{}: {e}", no + 1);
                        std::process::exit(1);
                    }
                }
            }
        }
        return;
    }

    println!("ddc — Dynamic Data Cube shell (type 'help')");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("ddc> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("ddc: {e}");
                break;
            }
        }
        match session.execute_line(&line) {
            Ok(Output::Text(t)) => println!("{t}"),
            Ok(Output::Quit) => break,
            Ok(Output::Silent) => {}
            Err(e) => println!("error: {e}"),
        }
    }
}
