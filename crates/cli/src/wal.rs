//! `ddc wal` — operator tooling for write-ahead logs.
//!
//! ```text
//! ddc wal recover --wal FILE [--snapshot FILE] [--dims D] [--out FILE [--rotate]]
//! ddc wal truncate-check --wal FILE [--fix]
//! ```
//!
//! `recover` rebuilds a cube from the last good snapshot plus the log,
//! truncating a torn tail instead of failing, and optionally writes the
//! recovered state as a fresh snapshot (`--out`). A snapshot that
//! *includes* the log's records must not be paired with that same log
//! again — recovery would apply every record twice — so `--out` warns
//! unless `--rotate` also resets the log to a bare header (the
//! checkpoint protocol, done after the snapshot is durably in place).
//! `truncate-check` inspects a log for a torn or corrupt tail; with
//! `--fix` it truncates the file to the last whole record, which is
//! exactly what recovery would ignore anyway.
//!
//! All file IO goes through the [`ddc_core::vfs`] seam: reads use
//! [`read_stable`] (two consecutive identical reads defeat a transient
//! read-back bit flip) and snapshot writes are atomic
//! (tmp + sync + rename), so a crash mid-`--out` or mid-`--fix` never
//! leaves a half-written file where a good one stood.

use ddc_core::vfs::{read_stable, StdVfs, Vfs};
use ddc_core::wal::{self, WAL_HEADER_BYTES};
use ddc_core::{DdcConfig, GrowableCube, WalConfig};

/// Read attempts for [`read_stable`] on operator paths.
const READ_ATTEMPTS: u32 = 4;

fn parse_path(args: &[String], name: &str) -> Result<Option<String>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{name} needs a path"));
        }
    }
    Ok(None)
}

fn parse_dims(args: &[String]) -> Result<Option<usize>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == "--dims" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--dims needs a value".to_string())?;
            return v
                .parse::<usize>()
                .map(Some)
                .map_err(|e| format!("--dims: {e}"));
        }
    }
    Ok(None)
}

/// Executes `ddc wal <args>`, returning the report text or an error
/// (which the caller turns into a non-zero exit).
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("recover") => recover(&args[1..]),
        Some("truncate-check") => truncate_check(&args[1..]),
        _ => Err("usage: ddc wal recover|truncate-check …".to_string()),
    }
}

fn recover(args: &[String]) -> Result<String, String> {
    let wal_path =
        parse_path(args, "--wal")?.ok_or_else(|| "recover requires --wal FILE".to_string())?;
    let snap_path = parse_path(args, "--snapshot")?;
    let out_path = parse_path(args, "--out")?;
    let vfs = StdVfs;
    let log = read_stable(&vfs, &wal_path, READ_ATTEMPTS)
        .map_err(|e| format!("cannot read {wal_path}: {e}"))?;
    let snapshot = match &snap_path {
        Some(p) => {
            Some(read_stable(&vfs, p, READ_ATTEMPTS).map_err(|e| format!("cannot read {p}: {e}"))?)
        }
        None => None,
    };

    // Dimensionality comes from --dims, or from the snapshot when one
    // is supplied (recovery re-checks the two agree).
    let d = match (parse_dims(args)?, &snapshot) {
        (Some(d), _) => d,
        (None, Some(bytes)) => {
            GrowableCube::<i64>::load(&mut bytes.as_slice(), DdcConfig::dynamic())
                .map_err(|e| format!("{}: {e}", snap_path.as_deref().unwrap_or("snapshot")))?
                .ndim()
        }
        (None, None) => return Err("recover needs --dims D (no snapshot to infer it from)".into()),
    };

    let (cube, report) = wal::recover::<i64>(
        d,
        snapshot.as_deref(),
        &log,
        DdcConfig::dynamic(),
        WalConfig::default(),
    )
    .map_err(|e| format!("recover: {e}"))?;

    let mut text = format!(
        "recovered {d}-dimensional cube: snapshot={}, {} records replayed, \
         {} valid log bytes, {} populated cells, total {}",
        if report.snapshot_loaded { "yes" } else { "no" },
        report.replayed,
        report.valid_bytes,
        cube.entries().len(),
        cube.total(),
    );
    match &report.truncated {
        Some(why) => text.push_str(&format!("\ntorn tail ignored: {why}")),
        None => text.push_str("\nlog was clean"),
    }
    if let Some(out) = out_path {
        let mut image = Vec::new();
        let bytes = cube
            .save(&mut image)
            .map_err(|e| format!("cannot encode snapshot: {e}"))?;
        vfs.write_atomic(&out, &image)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        text.push_str(&format!(
            "\nsnapshot written: {out} ({bytes} bytes, atomic)"
        ));
        if args.iter().any(|a| a == "--rotate") {
            // Checkpoint protocol: only after the snapshot is durably
            // renamed into place may the log it covers be reset.
            let mut header = [0u8; WAL_HEADER_BYTES];
            header[..4].copy_from_slice(wal::WAL_MAGIC);
            header[4] = wal::WAL_VERSION;
            vfs.write_atomic(&wal_path, &header)
                .map_err(|e| format!("cannot rotate {wal_path}: {e}"))?;
            text.push_str(&format!("\nlog rotated: {wal_path} reset to a bare header"));
        } else if report.replayed > 0 {
            text.push_str(&format!(
                "\nwarning: {wal_path} still holds the {} records baked into this snapshot; \
                 pairing the two replays them twice — rerun with --rotate (or rotate the log \
                 yourself) before serving from this snapshot + log",
                report.replayed
            ));
        }
    }
    Ok(text)
}

fn truncate_check(args: &[String]) -> Result<String, String> {
    let wal_path = parse_path(args, "--wal")?
        .ok_or_else(|| "truncate-check requires --wal FILE".to_string())?;
    let fix = args.iter().any(|a| a == "--fix");
    let vfs = StdVfs;
    let log = read_stable(&vfs, &wal_path, READ_ATTEMPTS)
        .map_err(|e| format!("cannot read {wal_path}: {e}"))?;

    let replay =
        wal::read_wal::<i64>(&log, WalConfig::default()).map_err(|e| format!("{wal_path}: {e}"))?;
    if replay.is_clean() {
        return Ok(format!(
            "ok: {wal_path}: {} records, {} bytes, no torn tail",
            replay.ops.len(),
            replay.valid_bytes
        ));
    }
    let why = replay.truncated.as_deref().unwrap_or("torn tail");
    let garbage = log.len() as u64 - replay.valid_bytes;
    if fix {
        // A log truncated below its header would stop being a log;
        // valid_bytes never falls under the header for a parsable file.
        debug_assert!(replay.valid_bytes >= WAL_HEADER_BYTES as u64);
        let mut keep = log;
        keep.truncate(replay.valid_bytes as usize);
        vfs.write_atomic(&wal_path, &keep)
            .map_err(|e| format!("cannot rewrite {wal_path}: {e}"))?;
        Ok(format!(
            "fixed: {wal_path}: truncated to {} records / {} bytes ({garbage} damaged bytes \
             dropped: {why})",
            replay.ops.len(),
            replay.valid_bytes
        ))
    } else {
        Err(format!(
            "torn tail: {wal_path}: {} whole records / {} valid bytes, then: {why} \
             ({garbage} bytes would be dropped; rerun with --fix to truncate)",
            replay.ops.len(),
            replay.valid_bytes
        ))
    }
}
