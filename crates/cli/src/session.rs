//! The `ddc` shell's interpreter: named cubes, command execution, and
//! script-format save/load.
//!
//! Snapshots are *replayable scripts*: `save` writes the cube's `create`
//! line (with the cube name abstracted to `@`) followed by one `pair`
//! line per populated cell, so a snapshot loads into any cube name and is
//! human-readable and diffable.

use std::collections::HashMap;
use std::fmt::Write as _;

use ddc_olap::{CubeBuilder, DimValue, Dimension, EngineKind, RangeSpec, SumCountCube};

use crate::command::{Aggregate, Command, DimSpec, RangeToken};

/// Result of executing one command.
#[derive(Clone, Debug, PartialEq)]
pub enum Output {
    /// Text to show the user (possibly multi-line).
    Text(String),
    /// Nothing to show.
    Silent,
    /// The session should end.
    Quit,
}

/// An interactive session holding named cubes.
#[derive(Default)]
pub struct Session {
    cubes: HashMap<String, Slot>,
}

struct Slot {
    /// The `create` command that produced the cube, with its name
    /// replaced by `@` (the save-script format).
    create_line: String,
    cube: SumCountCube,
}

const HELP: &str = "\
commands:
  create <cube> engine=<naive|prefix|relative|basic|dynamic|sparse|sharded[N]> \\
         dims=<name:int:lo:hi | name:cat:a|b|c>,…
  add    <cube> <coord…> <amount>      record one observation
  set    <cube> <coord…> <amount>      overwrite a cell's sum
  cell   <cube> <coord…>               read one cell
  sum|count|avg <cube> <range…>        range is *, value, or lo..hi
  pair   <cube> <coord…> <sum> <count> raw (sum,count) delta (snapshots)
  sql    <cube> SELECT SUM|COUNT|AVG [WHERE dim=v | dim BETWEEN a AND b [AND …]] [GROUP BY dim]
  explain <cube> <range…>              show the query plan and predicted costs
  ingest <cube> <csv> [delim=<c>] [header=yes|no]
  groupby <cube> <dim-name> <range…>   one aggregate row per bucket
  rolling <cube> <dim-name> <w> <range…>  trailing windows of width w
  stats  <cube>                        engine, shape, memory
  metrics <cube>                       per-shard queue statistics (sharded engines)
  save   <cube> <path>   /  load <cube> <path>
  help   /  quit";

impl Session {
    /// A fresh session with no cubes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and executes one line.
    pub fn execute_line(&mut self, line: &str) -> Result<Output, String> {
        // Raw `pair` lines are part of the snapshot format, handled here
        // so the public command language stays small.
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("pair ") {
            return self.execute_pair(rest);
        }
        let cmd = crate::command::parse(line).map_err(|e| e.to_string())?;
        self.execute(cmd, trimmed)
    }

    fn execute(&mut self, cmd: Command, raw_line: &str) -> Result<Output, String> {
        match cmd {
            Command::Nothing => Ok(Output::Silent),
            Command::Help => Ok(Output::Text(HELP.to_string())),
            Command::Quit => Ok(Output::Quit),
            Command::Create { name, engine, dims } => {
                if self.cubes.contains_key(&name) {
                    return Err(format!("cube '{name}' already exists"));
                }
                let kind = engine_kind(&engine)?;
                // Validate the cell count before the builder allocates:
                // user-typed domains like x:int:0:9223372036854775807 must
                // produce an error, not a panic or an absurd allocation.
                let mut sizes = Vec::with_capacity(dims.len());
                for d in &dims {
                    match d {
                        DimSpec::Int { name, lo, hi } => {
                            let width = hi
                                .checked_sub(*lo)
                                .and_then(|w| w.checked_add(1))
                                .and_then(|w| usize::try_from(w).ok())
                                .ok_or_else(|| format!("domain of '{name}' is too large"))?;
                            sizes.push(width);
                        }
                        DimSpec::Cat { labels, .. } => sizes.push(labels.len()),
                    }
                }
                ddc_array::Shape::try_new(&sizes)
                    .map_err(|e| format!("invalid dimensions: {e}"))?;
                let mut builder = CubeBuilder::new().engine(kind);
                for d in &dims {
                    builder = builder.dimension(match d {
                        DimSpec::Int { name, lo, hi } => Dimension::int_range(name, *lo, *hi),
                        DimSpec::Cat { name, labels } => {
                            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                            Dimension::categorical(name, &refs)
                        }
                    });
                }
                let cube: SumCountCube = builder.build();
                let create_line = raw_line.replacen(&format!("create {name}"), "create @", 1);
                self.cubes.insert(name.clone(), Slot { create_line, cube });
                Ok(Output::Text(format!("created cube '{name}'")))
            }
            Command::Add {
                cube,
                coords,
                amount,
            } => {
                let slot = self.slot_mut(&cube)?;
                let vals = to_values(&slot.cube, &coords)?;
                slot.cube
                    .add_observation(&vals, amount)
                    .map_err(|e| e.to_string())?;
                Ok(Output::Silent)
            }
            Command::Set {
                cube,
                coords,
                amount,
            } => {
                let slot = self.slot_mut(&cube)?;
                let vals = to_values(&slot.cube, &coords)?;
                let old = slot
                    .cube
                    .set(&vals, ddc_array::Pair::new(amount, i64::from(amount != 0)));
                let old = old.map_err(|e| e.to_string())?;
                Ok(Output::Text(format!("was sum={} count={}", old.a, old.b)))
            }
            Command::Cell { cube, coords } => {
                let slot = self.slot(&cube)?;
                let vals = to_values(&slot.cube, &coords)?;
                let v = slot.cube.cell(&vals).map_err(|e| e.to_string())?;
                Ok(Output::Text(format!("sum={} count={}", v.a, v.b)))
            }
            Command::Query { agg, cube, ranges } => {
                let slot = self.slot(&cube)?;
                let specs = to_specs(&slot.cube, &ranges)?;
                let text = match agg {
                    Aggregate::Sum => {
                        format!("{}", slot.cube.sum(&specs).map_err(|e| e.to_string())?)
                    }
                    Aggregate::Count => {
                        format!("{}", slot.cube.count(&specs).map_err(|e| e.to_string())?)
                    }
                    Aggregate::Avg => match slot.cube.average(&specs).map_err(|e| e.to_string())? {
                        Some(a) => format!("{a:.4}"),
                        None => "no observations".to_string(),
                    },
                };
                Ok(Output::Text(text))
            }
            Command::Stats { cube } => {
                let slot = self.slot(&cube)?;
                let dims: Vec<String> = slot
                    .cube
                    .dimensions()
                    .iter()
                    .map(|d| format!("{}({})", d.name(), d.size()))
                    .collect();
                Ok(Output::Text(format!(
                    "engine {} | dims {} | heap {} KiB",
                    slot.cube.engine_name(),
                    dims.join(" × "),
                    slot.cube.heap_bytes() / 1024
                )))
            }
            Command::Metrics { cube } => {
                let slot = self.slot(&cube)?;
                match slot.cube.metrics_text() {
                    Some(text) => Ok(Output::Text(text.trim_end().to_string())),
                    None => Ok(Output::Text(format!(
                        "engine {} keeps no extra metrics (try a sharded engine)",
                        slot.cube.engine_name()
                    ))),
                }
            }
            Command::Explain { cube, ranges } => {
                let slot = self.slot(&cube)?;
                let specs = to_specs(&slot.cube, &ranges)?;
                let plan = slot.cube.explain(&specs).map_err(|e| e.to_string())?;
                Ok(Output::Text(plan.to_string()))
            }
            Command::Sql { cube, query } => {
                let slot = self.slot(&cube)?;
                match slot.cube.query(&query)? {
                    ddc_olap::SqlResult::Scalar(v) => Ok(Output::Text(format!("{v}"))),
                    ddc_olap::SqlResult::Average(Some(a)) => Ok(Output::Text(format!("{a:.4}"))),
                    ddc_olap::SqlResult::Average(None) => {
                        Ok(Output::Text("no observations".to_string()))
                    }
                    ddc_olap::SqlResult::Rows(rows) => {
                        let mut out = String::new();
                        for (label, sum, count) in rows {
                            out.push_str(&format!("{label:<12} sum {sum:>10}  count {count:>7}\n"));
                        }
                        out.pop();
                        Ok(Output::Text(out))
                    }
                }
            }
            Command::Ingest {
                cube,
                path,
                delimiter,
                has_header,
            } => {
                let data =
                    std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
                let slot = self.slot_mut(&cube)?;
                let opts = ddc_olap::IngestOptions {
                    delimiter,
                    has_header,
                };
                let n = ddc_olap::load_records(&mut slot.cube, &data, &opts)
                    .map_err(|e| e.to_string())?;
                Ok(Output::Text(format!("ingested {n} records into '{cube}'")))
            }
            Command::GroupBy { cube, dim, ranges } => {
                let slot = self.slot(&cube)?;
                let axis = axis_of(&slot.cube, &dim)?;
                let specs = to_specs(&slot.cube, &ranges)?;
                let rows = slot
                    .cube
                    .group_by(axis, &specs)
                    .map_err(|e| e.to_string())?;
                Ok(Output::Text(render_rows(&rows)))
            }
            Command::Rolling {
                cube,
                dim,
                window,
                ranges,
            } => {
                let slot = self.slot(&cube)?;
                let axis = axis_of(&slot.cube, &dim)?;
                let specs = to_specs(&slot.cube, &ranges)?;
                let rows = slot
                    .cube
                    .rolling_sum(axis, window, &specs)
                    .map_err(|e| e.to_string())?;
                Ok(Output::Text(render_rows(&rows)))
            }
            Command::Save { cube, path } => {
                let script = self.snapshot_script(&cube)?;
                std::fs::write(&path, script).map_err(|e| format!("write {path}: {e}"))?;
                Ok(Output::Text(format!("saved '{cube}' to {path}")))
            }
            Command::Load { cube, path } => {
                let script =
                    std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
                self.replay_script(&cube, &script)?;
                Ok(Output::Text(format!("loaded '{cube}' from {path}")))
            }
        }
    }

    fn execute_pair(&mut self, rest: &str) -> Result<Output, String> {
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        if tokens.len() < 4 {
            return Err("pair needs: <cube> <coord…> <sum> <count>".to_string());
        }
        let cube = tokens[0];
        let sum: i64 = tokens[tokens.len() - 2]
            .parse()
            .map_err(|_| format!("bad sum '{}'", tokens[tokens.len() - 2]))?;
        let count: i64 = tokens[tokens.len() - 1]
            .parse()
            .map_err(|_| format!("bad count '{}'", tokens[tokens.len() - 1]))?;
        let coords: Vec<String> = tokens[1..tokens.len() - 2]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let slot = self.slot_mut(cube)?;
        let vals = to_values(&slot.cube, &coords)?;
        slot.cube
            .add(&vals, ddc_array::Pair::new(sum, count))
            .map_err(|e| e.to_string())?;
        Ok(Output::Silent)
    }

    /// Renders the replayable snapshot script of a cube.
    pub fn snapshot_script(&self, cube: &str) -> Result<String, String> {
        let slot = self.slot(cube)?;
        let mut out = String::new();
        out.push_str("# ddc snapshot (replayable script)\n");
        out.push_str(&slot.create_line);
        out.push('\n');
        // Enumerate populated cells via per-dimension GROUP BY recursion:
        // cheap and engine-agnostic thanks to range sums.
        let dims = slot.cube.dimensions().len();
        let mut coords: Vec<usize> = vec![0; dims];
        self.dump_cells(&slot.cube, 0, &mut coords, &mut out)?;
        Ok(out)
    }

    #[allow(clippy::only_used_in_recursion)]
    fn dump_cells(
        &self,
        cube: &SumCountCube,
        axis: usize,
        coords: &mut Vec<usize>,
        out: &mut String,
    ) -> Result<(), String> {
        // Prune empty subtrees with one COUNT query per prefix.
        let spec: Vec<RangeSpec<'_>> = (0..cube.dimensions().len())
            .map(|i| {
                if i < axis {
                    RangeSpec::Index(coords[i])
                } else {
                    RangeSpec::All
                }
            })
            .collect();
        let agg = cube.range_sum(&spec).map_err(|e| e.to_string())?;
        if agg.a == 0 && agg.b == 0 {
            return Ok(());
        }
        if axis == cube.dimensions().len() {
            let labels: Vec<String> = coords
                .iter()
                .enumerate()
                .map(|(i, &c)| cube.dimensions()[i].label(c))
                .collect();
            let _ = writeln!(out, "pair @ {} {} {}", labels.join(" "), agg.a, agg.b);
            return Ok(());
        }
        for c in 0..cube.dimensions()[axis].size() {
            coords[axis] = c;
            self.dump_cells(cube, axis + 1, coords, out)?;
        }
        coords.truncate(cube.dimensions().len());
        Ok(())
    }

    fn replay_script(&mut self, cube: &str, script: &str) -> Result<(), String> {
        if self.cubes.contains_key(cube) {
            return Err(format!("cube '{cube}' already exists"));
        }
        for line in script.lines() {
            let line = line.replace('@', cube);
            match self.execute_line(&line)? {
                Output::Quit => return Err("snapshot scripts may not quit".to_string()),
                _ => continue,
            }
        }
        if !self.cubes.contains_key(cube) {
            return Err("snapshot did not create the cube (bad file?)".to_string());
        }
        Ok(())
    }

    fn slot(&self, name: &str) -> Result<&Slot, String> {
        self.cubes
            .get(name)
            .ok_or_else(|| format!("no cube named '{name}'"))
    }

    fn slot_mut(&mut self, name: &str) -> Result<&mut Slot, String> {
        self.cubes
            .get_mut(name)
            .ok_or_else(|| format!("no cube named '{name}'"))
    }
}

fn axis_of(cube: &SumCountCube, dim: &str) -> Result<usize, String> {
    cube.dimensions()
        .iter()
        .position(|d| d.name() == dim)
        .ok_or_else(|| format!("no dimension named '{dim}'"))
}

fn render_rows(rows: &[ddc_olap::GroupRow<ddc_array::Pair<i64, i64>>]) -> String {
    let mut out = String::new();
    for row in rows {
        let avg = if row.value.b == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", row.value.a as f64 / row.value.b as f64)
        };
        out.push_str(&format!(
            "{:<12} sum {:>10}  count {:>7}  avg {:>10}\n",
            row.label, row.value.a, row.value.b, avg
        ));
    }
    out.pop();
    out
}

fn engine_kind(word: &str) -> Result<EngineKind, String> {
    Ok(match word {
        "naive" => EngineKind::Naive,
        "prefix" => EngineKind::PrefixSum,
        "relative" => EngineKind::RelativePrefix,
        "basic" => EngineKind::BasicDdc,
        "dynamic" => EngineKind::DynamicDdc,
        "sparse" => EngineKind::CustomDdc(ddc_core::DdcConfig::sparse()),
        other => match other.strip_prefix("sharded") {
            // `sharded` (default shard count) or `shardedN` (explicit).
            Some("") => EngineKind::Sharded {
                shards: ddc_core::ShardConfig::default().shards,
            },
            Some(n) => {
                let shards: usize = n
                    .parse()
                    .map_err(|_| format!("bad shard count '{n}' in '{other}'"))?;
                if shards == 0 {
                    return Err("shard count must be at least 1".to_string());
                }
                EngineKind::Sharded { shards }
            }
            None => return Err(format!("unknown engine '{other}'")),
        },
    })
}

/// Interprets coordinate tokens by the cube's dimension types: numeric
/// dimensions parse integers, categorical dimensions take the token as a
/// label.
fn to_values<'a>(cube: &SumCountCube, coords: &'a [String]) -> Result<Vec<DimValue<'a>>, String> {
    if coords.len() != cube.dimensions().len() {
        return Err(format!(
            "expected {} coordinates, got {}",
            cube.dimensions().len(),
            coords.len()
        ));
    }
    coords
        .iter()
        .zip(cube.dimensions())
        .map(|(tok, dim)| match dim.encoder() {
            ddc_olap::Encoder::Categorical { .. } => Ok(DimValue::Str(tok)),
            _ => tok
                .parse::<i64>()
                .map(DimValue::Int)
                .map_err(|_| format!("bad numeric coordinate '{tok}' for '{}'", dim.name())),
        })
        .collect()
}

fn to_specs<'a>(
    cube: &SumCountCube,
    ranges: &'a [RangeToken],
) -> Result<Vec<RangeSpec<'a>>, String> {
    if ranges.len() != cube.dimensions().len() {
        return Err(format!(
            "expected {} ranges, got {}",
            cube.dimensions().len(),
            ranges.len()
        ));
    }
    let one = |tok: &'a str, dim: &Dimension| -> Result<DimValue<'a>, String> {
        match dim.encoder() {
            ddc_olap::Encoder::Categorical { .. } => Ok(DimValue::Str(tok)),
            _ => tok
                .parse::<i64>()
                .map(DimValue::Int)
                .map_err(|_| format!("bad numeric bound '{tok}' for '{}'", dim.name())),
        }
    };
    ranges
        .iter()
        .zip(cube.dimensions())
        .map(|(tok, dim)| match tok {
            RangeToken::All => Ok(RangeSpec::All),
            RangeToken::Eq(v) => Ok(RangeSpec::Eq(one(v, dim)?)),
            RangeToken::Between(a, b) => Ok(RangeSpec::Between(one(a, dim)?, one(b, dim)?)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(session: &mut Session, line: &str) -> Output {
        session
            .execute_line(line)
            .unwrap_or_else(|e| panic!("{line}: {e}"))
    }

    #[test]
    fn end_to_end_paper_scenario() {
        let mut s = Session::new();
        run(
            &mut s,
            "create sales engine=dynamic dims=age:int:0:99,day:int:1:365",
        );
        run(&mut s, "add sales 37 220 120");
        run(&mut s, "add sales 37 220 80");
        run(&mut s, "add sales 45 350 300");
        assert_eq!(
            run(&mut s, "sum sales 37 220"),
            Output::Text("200".to_string())
        );
        assert_eq!(
            run(&mut s, "avg sales 27..45 341..365"),
            Output::Text("300.0000".to_string())
        );
        assert_eq!(
            run(&mut s, "count sales * *"),
            Output::Text("3".to_string())
        );
    }

    #[test]
    fn categorical_coordinates() {
        let mut s = Session::new();
        run(
            &mut s,
            "create m engine=sparse dims=region:cat:north|south,week:int:1:52",
        );
        run(&mut s, "add m north 10 500");
        run(&mut s, "add m south 10 100");
        assert_eq!(
            run(&mut s, "sum m north *"),
            Output::Text("500".to_string())
        );
        assert_eq!(
            run(&mut s, "sum m * 1..26"),
            Output::Text("600".to_string())
        );
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut s = Session::new();
        assert!(s.execute_line("sum nope *").is_err());
        run(&mut s, "create c engine=naive dims=x:int:0:9");
        assert!(s.execute_line("add c 99 5").is_err());
        assert!(s.execute_line("add c 1").is_err());
        assert!(s
            .execute_line("create c engine=naive dims=x:int:0:9")
            .is_err());
        assert!(s
            .execute_line("create d engine=warp dims=x:int:0:9")
            .is_err());
    }

    #[test]
    fn snapshot_script_roundtrip() {
        let mut s = Session::new();
        run(
            &mut s,
            "create src engine=dynamic dims=r:cat:a|b,x:int:0:15",
        );
        run(&mut s, "add src a 3 10");
        run(&mut s, "add src a 3 20");
        run(&mut s, "add src b 15 7");
        let script = s.snapshot_script("src").unwrap();
        assert!(script.contains("create @"));
        assert!(script.contains("pair @ a 3 30 2"));

        s.replay_script("dst", &script).unwrap();
        assert_eq!(run(&mut s, "sum dst * *"), Output::Text("37".to_string()));
        assert_eq!(
            run(&mut s, "cell dst a 3"),
            Output::Text("sum=30 count=2".to_string())
        );
    }

    #[test]
    fn save_load_via_filesystem() {
        let dir = std::env::temp_dir().join(format!("ddc-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cube.ddc");
        let path_str = path.to_str().unwrap();

        let mut s = Session::new();
        run(&mut s, "create c engine=dynamic dims=x:int:0:7");
        run(&mut s, "add c 5 42");
        run(&mut s, &format!("save c {path_str}"));
        run(&mut s, &format!("load c2 {path_str}"));
        assert_eq!(run(&mut s, "sum c2 *"), Output::Text("42".to_string()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn set_reports_previous() {
        let mut s = Session::new();
        run(&mut s, "create c engine=dynamic dims=x:int:0:7");
        run(&mut s, "add c 3 9");
        assert_eq!(
            run(&mut s, "set c 3 100"),
            Output::Text("was sum=9 count=1".to_string())
        );
        assert_eq!(run(&mut s, "sum c *"), Output::Text("100".to_string()));
    }

    #[test]
    fn ingest_groupby_rolling_pipeline() {
        let dir = std::env::temp_dir().join(format!("ddc-cli-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("sales.csv");
        std::fs::write(
            &csv,
            "region,day,amount\nnorth,1,100\nsouth,1,40\nnorth,2,60\nnorth,3,30\n",
        )
        .unwrap();

        let mut s = Session::new();
        run(
            &mut s,
            "create sales engine=dynamic dims=region:cat:north|south,day:int:1:31",
        );
        let out = run(&mut s, &format!("ingest sales {}", csv.display()));
        assert_eq!(
            out,
            Output::Text("ingested 4 records into 'sales'".to_string())
        );

        let Output::Text(g) = run(&mut s, "groupby sales region * *") else {
            panic!("expected text");
        };
        assert!(g.contains("north"), "{g}");
        assert!(g.contains("190"), "{g}");

        let Output::Text(rl) = run(&mut s, "rolling sales day 2 north 1..3") else {
            panic!("expected text");
        };
        // Windows ending day 2 (100+60) and day 3 (60+30).
        assert!(rl.contains("160"), "{rl}");
        assert!(rl.contains("90"), "{rl}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_prints_a_plan() {
        let mut s = Session::new();
        run(
            &mut s,
            "create c engine=dynamic dims=age:int:0:99,day:int:1:365",
        );
        let Output::Text(plan) = run(&mut s, "explain c 27..45 341..365") else {
            panic!("expected plan text");
        };
        assert!(plan.contains("prefix terms    : 4"), "{plan}");
        assert!(plan.contains("dynamic-ddc"), "{plan}");
        assert!(s.execute_line("explain c 27..45").is_err()); // arity
    }

    #[test]
    fn sql_queries_through_the_shell() {
        let mut s = Session::new();
        run(
            &mut s,
            "create sales engine=dynamic dims=age:int:0:99,region:cat:north|south",
        );
        run(&mut s, "add sales 30 north 100");
        run(&mut s, "add sales 45 south 250");
        run(&mut s, "add sales 27 north 130");
        assert_eq!(
            run(&mut s, "sql sales SELECT SUM WHERE age BETWEEN 27 AND 45"),
            Output::Text("480".to_string())
        );
        assert_eq!(
            run(&mut s, "sql sales SELECT AVG WHERE region = north"),
            Output::Text("115.0000".to_string())
        );
        let Output::Text(rows) = run(&mut s, "sql sales SELECT SUM GROUP BY region") else {
            panic!("expected rows");
        };
        assert!(rows.contains("north"), "{rows}");
        assert!(rows.contains("250"), "{rows}");
        assert!(s.execute_line("sql sales SELECT MAX").is_err());
    }

    #[test]
    fn ingest_option_errors() {
        let mut s = Session::new();
        assert!(s.execute_line("ingest c file.csv delim=ab").is_err());
        assert!(s.execute_line("ingest c file.csv header=maybe").is_err());
        run(&mut s, "create c engine=naive dims=x:int:0:9");
        assert!(s.execute_line("groupby c nope *").is_err());
        assert!(s.execute_line("rolling c x 0 *").is_err());
    }

    #[test]
    fn sharded_engine_in_the_shell() {
        let mut s = Session::new();
        run(
            &mut s,
            "create sales engine=sharded4 dims=age:int:0:99,day:int:1:365",
        );
        run(&mut s, "add sales 37 220 120");
        run(&mut s, "add sales 37 220 80");
        run(&mut s, "add sales 45 350 300");
        assert_eq!(
            run(&mut s, "sum sales 37 220"),
            Output::Text("200".to_string())
        );
        assert_eq!(
            run(&mut s, "count sales * *"),
            Output::Text("3".to_string())
        );

        let Output::Text(stats) = run(&mut s, "stats sales") else {
            panic!("expected stats text");
        };
        assert!(stats.contains("sharded-ddc"), "{stats}");

        let Output::Text(m) = run(&mut s, "metrics sales") else {
            panic!("expected metrics text");
        };
        assert!(m.contains("shard"), "{m}");
        assert!(
            m.lines().count() >= 5,
            "one header plus four shard rows: {m}"
        );

        // Default shard count and the non-sharded fallback message.
        run(&mut s, "create plain engine=sharded dims=x:int:0:9");
        run(&mut s, "create d engine=dynamic dims=x:int:0:9");
        let Output::Text(none) = run(&mut s, "metrics d") else {
            panic!("expected fallback text");
        };
        assert!(none.contains("no extra metrics"), "{none}");
        assert!(s
            .execute_line("create bad engine=sharded0 dims=x:int:0:9")
            .is_err());
        assert!(s
            .execute_line("create bad engine=shardedx dims=x:int:0:9")
            .is_err());
    }

    #[test]
    fn help_and_quit() {
        let mut s = Session::new();
        assert!(matches!(run(&mut s, "help"), Output::Text(t) if t.contains("create")));
        assert_eq!(run(&mut s, "quit"), Output::Quit);
        assert_eq!(run(&mut s, "# comment"), Output::Silent);
    }
}
