//! Command language of the `ddc` shell.
//!
//! A tiny line-oriented language, equally usable interactively and in
//! batch scripts (`ddc script.ddc`):
//!
//! ```text
//! create sales engine=dynamic dims=age:int:0:99,day:int:1:365
//! add sales 37 220 120
//! sum sales 27..45 341..365
//! avg sales * 341..365
//! cell sales 37 220
//! set sales 37 220 0
//! save sales /tmp/sales.ddc
//! load sales2 /tmp/sales.ddc
//! stats sales
//! help | quit
//! ```

use std::fmt;

/// A parsed shell command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `create <cube> engine=<kind> dims=<name:int:lo:hi | name:cat:a|b|c>,…`
    Create {
        /// Cube name.
        name: String,
        /// Engine keyword (`naive`, `prefix`, `relative`, `basic`, `dynamic`,
        /// `sparse`, or `sharded[N]` for an `N`-way sharded dynamic cube).
        engine: String,
        /// Dimension specs.
        dims: Vec<DimSpec>,
    },
    /// `add <cube> <coord…> <amount>` — record one observation.
    Add {
        /// Cube name.
        cube: String,
        /// One coordinate token per dimension.
        coords: Vec<String>,
        /// Observation value.
        amount: i64,
    },
    /// `set <cube> <coord…> <amount>` — overwrite a cell's sum.
    Set {
        /// Cube name.
        cube: String,
        /// One coordinate token per dimension.
        coords: Vec<String>,
        /// New value.
        amount: i64,
    },
    /// `cell <cube> <coord…>` — read one cell.
    Cell {
        /// Cube name.
        cube: String,
        /// One coordinate token per dimension.
        coords: Vec<String>,
    },
    /// `sum|count|avg <cube> <range…>` where a range is `*`, `v`, or `lo..hi`.
    Query {
        /// Aggregate to compute.
        agg: Aggregate,
        /// Cube name.
        cube: String,
        /// One range token per dimension.
        ranges: Vec<RangeToken>,
    },
    /// `stats <cube>` — engine, shape, memory.
    Stats {
        /// Cube name.
        cube: String,
    },
    /// `metrics <cube>` — per-shard queue statistics (sharded engines).
    Metrics {
        /// Cube name.
        cube: String,
    },
    /// `save <cube> <path>` / `load <cube> <path>`.
    Save {
        /// Cube name.
        cube: String,
        /// Destination path.
        path: String,
    },
    /// Loads a snapshot into a (new) cube name.
    Load {
        /// Cube name to create.
        cube: String,
        /// Source path.
        path: String,
    },
    /// `ingest <cube> <csv-path> [delim=<char>] [header=<yes|no>]`.
    Ingest {
        /// Cube name.
        cube: String,
        /// CSV path.
        path: String,
        /// Field delimiter.
        delimiter: char,
        /// Whether the first line is a header.
        has_header: bool,
    },
    /// `groupby <cube> <dim-name> <range…>` — one row per bucket.
    GroupBy {
        /// Cube name.
        cube: String,
        /// Dimension to group on (by name).
        dim: String,
        /// One range token per dimension.
        ranges: Vec<RangeToken>,
    },
    /// `rolling <cube> <dim-name> <window> <range…>` — trailing windows.
    Rolling {
        /// Cube name.
        cube: String,
        /// Dimension to roll along (by name).
        dim: String,
        /// Window width in buckets.
        window: usize,
        /// One range token per dimension.
        ranges: Vec<RangeToken>,
    },
    /// `explain <cube> <range…>` — show the query plan without running it.
    Explain {
        /// Cube name.
        cube: String,
        /// One range token per dimension.
        ranges: Vec<RangeToken>,
    },
    /// `sql <cube> SELECT …` — run a SQL-style aggregate query.
    Sql {
        /// Cube name.
        cube: String,
        /// The query text after the cube name.
        query: String,
    },
    /// `help`.
    Help,
    /// `quit` / `exit`.
    Quit,
    /// Blank line or comment.
    Nothing,
}

/// Aggregates the shell can compute.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// SUM of the measure.
    Sum,
    /// COUNT of observations.
    Count,
    /// AVERAGE (sum / count).
    Avg,
}

/// One dimension declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum DimSpec {
    /// `name:int:lo:hi`
    Int {
        /// Dimension name.
        name: String,
        /// Lowest value.
        lo: i64,
        /// Highest value.
        hi: i64,
    },
    /// `name:cat:a|b|c`
    Cat {
        /// Dimension name.
        name: String,
        /// Category labels.
        labels: Vec<String>,
    },
}

/// One per-dimension range token of a query.
#[derive(Clone, Debug, PartialEq)]
pub enum RangeToken {
    /// `*` — the whole dimension.
    All,
    /// A single value token.
    Eq(String),
    /// `lo..hi` (inclusive).
    Between(String, String),
}

/// A parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parses one input line.
pub fn parse(line: &str) -> Result<Command, ParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Command::Nothing);
    }
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().expect("non-empty line");
    let rest: Vec<&str> = tokens.collect();
    match verb {
        "help" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        "create" => parse_create(&rest),
        "add" | "set" => {
            if rest.len() < 3 {
                return err(format!("{verb} needs: <cube> <coord…> <amount>"));
            }
            let cube = rest[0].to_string();
            let amount: i64 = rest[rest.len() - 1]
                .parse()
                .map_err(|_| ParseError(format!("bad amount '{}'", rest[rest.len() - 1])))?;
            let coords = rest[1..rest.len() - 1]
                .iter()
                .map(|s| s.to_string())
                .collect();
            if verb == "add" {
                Ok(Command::Add {
                    cube,
                    coords,
                    amount,
                })
            } else {
                Ok(Command::Set {
                    cube,
                    coords,
                    amount,
                })
            }
        }
        "cell" => {
            if rest.len() < 2 {
                return err("cell needs: <cube> <coord…>");
            }
            Ok(Command::Cell {
                cube: rest[0].to_string(),
                coords: rest[1..].iter().map(|s| s.to_string()).collect(),
            })
        }
        "sum" | "count" | "avg" => {
            if rest.is_empty() {
                return err(format!("{verb} needs: <cube> <range…>"));
            }
            let agg = match verb {
                "sum" => Aggregate::Sum,
                "count" => Aggregate::Count,
                _ => Aggregate::Avg,
            };
            let ranges = rest[1..]
                .iter()
                .map(|t| parse_range(t))
                .collect::<Result<_, _>>()?;
            Ok(Command::Query {
                agg,
                cube: rest[0].to_string(),
                ranges,
            })
        }
        "stats" => {
            if rest.len() != 1 {
                return err("stats needs: <cube>");
            }
            Ok(Command::Stats {
                cube: rest[0].to_string(),
            })
        }
        "metrics" => {
            if rest.len() != 1 {
                return err("metrics needs: <cube>");
            }
            Ok(Command::Metrics {
                cube: rest[0].to_string(),
            })
        }
        "explain" => {
            if rest.is_empty() {
                return err("explain needs: <cube> <range…>");
            }
            let ranges = rest[1..]
                .iter()
                .map(|t| parse_range(t))
                .collect::<Result<_, _>>()?;
            Ok(Command::Explain {
                cube: rest[0].to_string(),
                ranges,
            })
        }
        "sql" => {
            if rest.len() < 2 {
                return err("sql needs: <cube> SELECT …");
            }
            Ok(Command::Sql {
                cube: rest[0].to_string(),
                query: rest[1..].join(" "),
            })
        }
        "ingest" => {
            if rest.len() < 2 {
                return err("ingest needs: <cube> <csv-path> [delim=<c>] [header=<yes|no>]");
            }
            let mut delimiter = ',';
            let mut has_header = true;
            for opt in &rest[2..] {
                if let Some(v) = opt.strip_prefix("delim=") {
                    let mut chars = v.chars();
                    match (chars.next(), chars.next()) {
                        (Some(c), None) => delimiter = c,
                        _ => return err(format!("delimiter must be one character, got '{v}'")),
                    }
                } else if let Some(v) = opt.strip_prefix("header=") {
                    has_header = match v {
                        "yes" => true,
                        "no" => false,
                        _ => return err(format!("header must be yes or no, got '{v}'")),
                    };
                } else {
                    return err(format!("unknown ingest option '{opt}'"));
                }
            }
            Ok(Command::Ingest {
                cube: rest[0].to_string(),
                path: rest[1].to_string(),
                delimiter,
                has_header,
            })
        }
        "groupby" => {
            if rest.len() < 2 {
                return err("groupby needs: <cube> <dim-name> <range…>");
            }
            let ranges = rest[2..]
                .iter()
                .map(|t| parse_range(t))
                .collect::<Result<_, _>>()?;
            Ok(Command::GroupBy {
                cube: rest[0].to_string(),
                dim: rest[1].to_string(),
                ranges,
            })
        }
        "rolling" => {
            if rest.len() < 3 {
                return err("rolling needs: <cube> <dim-name> <window> <range…>");
            }
            let window: usize = rest[2]
                .parse()
                .map_err(|_| ParseError(format!("bad window '{}'", rest[2])))?;
            if window == 0 {
                return err("window must be at least 1");
            }
            let ranges = rest[3..]
                .iter()
                .map(|t| parse_range(t))
                .collect::<Result<_, _>>()?;
            Ok(Command::Rolling {
                cube: rest[0].to_string(),
                dim: rest[1].to_string(),
                window,
                ranges,
            })
        }
        "save" | "load" => {
            if rest.len() != 2 {
                return err(format!("{verb} needs: <cube> <path>"));
            }
            let cube = rest[0].to_string();
            let path = rest[1].to_string();
            if verb == "save" {
                Ok(Command::Save { cube, path })
            } else {
                Ok(Command::Load { cube, path })
            }
        }
        other => err(format!("unknown command '{other}' (try 'help')")),
    }
}

fn parse_range(token: &str) -> Result<RangeToken, ParseError> {
    if token == "*" {
        return Ok(RangeToken::All);
    }
    if let Some((lo, hi)) = token.split_once("..") {
        if lo.is_empty() || hi.is_empty() {
            return err(format!("bad range '{token}' (want lo..hi)"));
        }
        return Ok(RangeToken::Between(lo.to_string(), hi.to_string()));
    }
    Ok(RangeToken::Eq(token.to_string()))
}

fn parse_create(rest: &[&str]) -> Result<Command, ParseError> {
    if rest.is_empty() {
        return err("create needs: <cube> engine=<kind> dims=<specs>");
    }
    let name = rest[0].to_string();
    let mut engine = "dynamic".to_string();
    let mut dims = Vec::new();
    for opt in &rest[1..] {
        if let Some(v) = opt.strip_prefix("engine=") {
            engine = v.to_string();
        } else if let Some(v) = opt.strip_prefix("dims=") {
            for spec in v.split(',') {
                dims.push(parse_dim(spec)?);
            }
        } else {
            return err(format!("unknown option '{opt}'"));
        }
    }
    if dims.is_empty() {
        return err("create needs at least one dimension (dims=…)");
    }
    Ok(Command::Create { name, engine, dims })
}

fn parse_dim(spec: &str) -> Result<DimSpec, ParseError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        [name, "int", lo, hi] => {
            let lo: i64 = lo
                .parse()
                .map_err(|_| ParseError(format!("bad bound '{lo}'")))?;
            let hi: i64 = hi
                .parse()
                .map_err(|_| ParseError(format!("bad bound '{hi}'")))?;
            if lo > hi {
                return err(format!("empty domain {lo}..{hi} for '{name}'"));
            }
            Ok(DimSpec::Int {
                name: name.to_string(),
                lo,
                hi,
            })
        }
        [name, "cat", labels] => {
            let labels: Vec<String> = labels.split('|').map(|l| l.to_string()).collect();
            if labels.iter().any(|l| l.is_empty()) {
                return err(format!("empty label in '{spec}'"));
            }
            Ok(DimSpec::Cat {
                name: name.to_string(),
                labels,
            })
        }
        _ => err(format!(
            "bad dimension spec '{spec}' (want name:int:lo:hi or name:cat:a|b)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create() {
        let c = parse("create sales engine=dynamic dims=age:int:0:99,region:cat:n|s").unwrap();
        assert_eq!(
            c,
            Command::Create {
                name: "sales".into(),
                engine: "dynamic".into(),
                dims: vec![
                    DimSpec::Int {
                        name: "age".into(),
                        lo: 0,
                        hi: 99
                    },
                    DimSpec::Cat {
                        name: "region".into(),
                        labels: vec!["n".into(), "s".into()]
                    },
                ],
            }
        );
    }

    #[test]
    fn parses_queries() {
        assert_eq!(
            parse("sum sales 27..45 *").unwrap(),
            Command::Query {
                agg: Aggregate::Sum,
                cube: "sales".into(),
                ranges: vec![
                    RangeToken::Between("27".into(), "45".into()),
                    RangeToken::All
                ],
            }
        );
        assert_eq!(
            parse("avg s x").unwrap(),
            Command::Query {
                agg: Aggregate::Avg,
                cube: "s".into(),
                ranges: vec![RangeToken::Eq("x".into())],
            }
        );
    }

    #[test]
    fn parses_mutations() {
        assert_eq!(
            parse("add sales 37 220 120").unwrap(),
            Command::Add {
                cube: "sales".into(),
                coords: vec!["37".into(), "220".into()],
                amount: 120
            }
        );
        assert_eq!(
            parse("set sales 37 220 0").unwrap(),
            Command::Set {
                cube: "sales".into(),
                coords: vec!["37".into(), "220".into()],
                amount: 0
            }
        );
    }

    #[test]
    fn comments_and_blanks_are_nothing() {
        assert_eq!(parse("").unwrap(), Command::Nothing);
        assert_eq!(parse("  # a comment").unwrap(), Command::Nothing);
    }

    #[test]
    fn error_messages_are_specific() {
        assert!(parse("frobnicate")
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(parse("add sales 3").unwrap_err().0.contains("needs"));
        assert!(parse("create c dims=x:int:9:1")
            .unwrap_err()
            .0
            .contains("empty domain"));
        assert!(parse("sum s 5..").unwrap_err().0.contains("bad range"));
    }

    #[test]
    fn save_load_stats() {
        assert_eq!(
            parse("save c /tmp/x").unwrap(),
            Command::Save {
                cube: "c".into(),
                path: "/tmp/x".into()
            }
        );
        assert_eq!(
            parse("load c2 /tmp/x").unwrap(),
            Command::Load {
                cube: "c2".into(),
                path: "/tmp/x".into()
            }
        );
        assert_eq!(
            parse("stats c").unwrap(),
            Command::Stats { cube: "c".into() }
        );
        assert_eq!(
            parse("metrics c").unwrap(),
            Command::Metrics { cube: "c".into() }
        );
        assert!(parse("metrics").unwrap_err().0.contains("needs"));
        assert_eq!(parse("quit").unwrap(), Command::Quit);
    }
}
