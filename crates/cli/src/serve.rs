//! `ddc serve` / `ddc loadgen` — the network front end on the command
//! line.
//!
//! ```text
//! ddc serve   [--addr HOST:PORT] [--side N] [--shards N] [--workers N]
//!             [--max-conns N] [--rate N] [--burst N]
//!             [--durable DIR [--dims D] [--mem-cap BYTES]]
//! ddc loadgen [--addr HOST:PORT] [--threads N] [--requests N]
//!             [--batch N] [--update-pct N] [--seed N] [--side N]
//!             [--shards N] [--json FILE]
//! ```
//!
//! `serve` binds a [`ShardedCube`] behind the zero-dependency TCP
//! server and runs until killed; the listening address is printed on
//! stdout so scripts (and the CI smoke job) can wait for it. With
//! `--durable DIR` it instead serves a WAL-backed growable cube
//! recovered from `DIR/snapshot.ddc` + `DIR/wal.log`: every acked
//! update is fsynced to the log first, a disk fault degrades the
//! backend to read-only (mutations 503, `/healthz` reports
//! `degraded`) instead of crashing, and a restart replays the log.
//! `--mem-cap BYTES` additionally pages the cube's leaf blocks
//! through a bounded buffer pool that spills cold pages to disk, so
//! the served cube can exceed RAM; the WAL barrier guarantees no
//! dirty page reaches the spill file before its log record is synced.
//! `loadgen` drives pipelined mixed traffic — against `--addr`, or
//! against an in-process server when omitted — and prints throughput
//! and batch-RTT quantiles; `--json` additionally writes the schema-v1
//! `BENCH_serve_latency.json` report the perf gate compares against
//! `bench/baselines/`.

use crate::check::parse_flag;
use ddc_array::Shape;
use ddc_core::sync::Arc;
use ddc_core::vfs::StdVfs;
use ddc_core::wal::{self, RetryPolicy};
use ddc_core::{DdcConfig, PagerConfig, ShardConfig, ShardedCube, SharedDurableCube, WalConfig};
use ddc_serve::loadgen::{self, LoadgenConfig};
use ddc_serve::{
    AdmissionConfig, DurableBackend, ServeBackend, Server, ServerConfig, ShardedBackend,
};

fn parse_str_flag(args: &[String], name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{name} needs a value")),
    }
}

/// Executes `ddc serve <args>`. Does not return on success: the server
/// runs until the process is killed.
pub fn run(args: &[String]) -> Result<String, String> {
    let addr = parse_str_flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let side = parse_flag(args, "--side")?.unwrap_or(256) as usize;
    let shards = parse_flag(args, "--shards")?.unwrap_or(4) as usize;
    let workers = parse_flag(args, "--workers")?.unwrap_or(4) as usize;
    let max_connections = parse_flag(args, "--max-conns")?.unwrap_or(256) as usize;
    let rate_per_sec = parse_flag(args, "--rate")?.unwrap_or(0);
    let burst = parse_flag(args, "--burst")?.unwrap_or(256);
    if side == 0 {
        return Err("--side must be at least 1".to_string());
    }
    let (backend, what): (Arc<dyn ServeBackend>, String) = match parse_str_flag(args, "--durable")?
    {
        Some(dir) => {
            let dims = parse_flag(args, "--dims")?.unwrap_or(2) as usize;
            if dims == 0 {
                return Err("--dims must be at least 1".to_string());
            }
            let mem_cap = parse_flag(args, "--mem-cap")?;
            let config = match mem_cap {
                Some(cap) => {
                    if cap == 0 {
                        return Err("--mem-cap must be at least 1 byte".to_string());
                    }
                    // Paged leaves need elision ≥ 1 so leaf blocks
                    // exist; cold pages spill to an unlinked temp file.
                    DdcConfig::dynamic()
                        .with_elision(1)
                        .with_paged_leaves(PagerConfig::disk(cap as usize))
                }
                None => DdcConfig::dynamic(),
            };
            std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            let wal_path = format!("{dir}/wal.log");
            let snap_path = format!("{dir}/snapshot.ddc");
            let (cube, report) = wal::recover_vfs::<i64, _>(
                &StdVfs,
                &wal_path,
                Some(&snap_path),
                dims,
                config,
                WalConfig::default(),
                RetryPolicy::default(),
            )
            .map_err(|e| format!("cannot recover durable cube from {dir}: {e}"))?;
            let what = format!(
                "durable {dims}-dimensional cube from {dir} (snapshot={}, {} records \
                     replayed{}{})",
                if report.snapshot_loaded { "yes" } else { "no" },
                report.replayed,
                match &report.truncated {
                    Some(why) => format!(", torn tail ignored: {why}"),
                    None => String::new(),
                },
                match mem_cap {
                    Some(cap) => format!(", paged leaves capped at {cap} bytes"),
                    None => String::new(),
                }
            );
            (
                Arc::new(DurableBackend::new(SharedDurableCube::from_cube(cube))),
                what,
            )
        }
        None => {
            let cube = ShardedCube::<i64>::new(
                Shape::new(&[side, side]),
                DdcConfig::default(),
                ShardConfig::with_shards(shards.max(1)),
            );
            (
                Arc::new(ShardedBackend::new(cube)),
                format!("{side}x{side} cube, {} shards", shards.max(1)),
            )
        }
    };
    let server = Server::start(
        backend,
        ServerConfig {
            addr,
            workers: workers.max(1),
            max_connections: max_connections.max(1),
            admission: AdmissionConfig {
                rate_per_sec,
                burst,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    // Scripts parse this line to learn the (possibly ephemeral) port.
    println!(
        "ddc serve: listening on {} ({what}, {workers} workers, rate {rate_per_sec}/s)",
        server.local_addr(),
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    loop {
        std::thread::park();
    }
}

/// Executes `ddc loadgen <args>`, returning the measured summary text.
pub fn run_loadgen(args: &[String]) -> Result<String, String> {
    let defaults = LoadgenConfig::default();
    let config = LoadgenConfig {
        addr: parse_str_flag(args, "--addr")?,
        threads: parse_flag(args, "--threads")?.map_or(defaults.threads, |v| v as usize),
        requests: parse_flag(args, "--requests")?.unwrap_or(defaults.requests),
        batch: parse_flag(args, "--batch")?.map_or(defaults.batch, |v| v as usize),
        update_pct: parse_flag(args, "--update-pct")?
            .unwrap_or(defaults.update_pct)
            .min(100),
        seed: parse_flag(args, "--seed")?.unwrap_or(defaults.seed),
        side: parse_flag(args, "--side")?.map_or(defaults.side, |v| v as usize),
        shards: parse_flag(args, "--shards")?.map_or(defaults.shards, |v| v as usize),
    };
    let summary = loadgen::run(&config)?;
    if let Some(path) = parse_str_flag(args, "--json")? {
        std::fs::write(&path, summary.report(&config).to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(format!(
        "loadgen: {} requests ({} ok, {} busy, {} err) at {:.0} req/s\n\
         batch rtt p50 {} ns, p99 {} ns, max {} ns \
         ({} threads x {} pipelined, {}% updates, seed {:#x})",
        summary.total,
        summary.ok,
        summary.busy,
        summary.errors,
        summary.req_per_s,
        summary.rtt_p50_ns,
        summary.rtt_p99_ns,
        summary.rtt_max_ns,
        config.threads,
        config.batch,
        config.update_pct,
        config.seed
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadgen_smoke_run_writes_a_schema_v1_report() {
        let dir = std::env::temp_dir().join(format!("ddc-loadgen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let json = dir.join("BENCH_serve_latency.json");
        let out = run_loadgen(&[
            "--threads".into(),
            "2".into(),
            "--requests".into(),
            "200".into(),
            "--batch".into(),
            "8".into(),
            "--side".into(),
            "16".into(),
            "--json".into(),
            json.display().to_string(),
        ])
        .expect("loadgen runs");
        assert!(out.contains("400 requests"), "{out}");
        let text = std::fs::read_to_string(&json).expect("report written");
        assert!(text.contains("serve.mixed.req_per_s"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_rejects_a_zero_sized_cube() {
        let err = run(&["--side".into(), "0".into()]).expect_err("zero side");
        assert!(err.contains("--side"), "{err}");
    }
}
