//! Storage backends a server can front.
//!
//! The wire layer never touches an engine directly: every request is
//! executed through [`ServeBackend`], which validates untrusted
//! coordinates *before* they reach engine APIs (whose bounds checks are
//! assertions, i.e. programming-error panics) and maps engine
//! backpressure into typed [`BackendError`]s the server turns into
//! HTTP statuses (`Busy` → 429, `Failed` → 503).

use ddc_array::{Region, Shape};
use ddc_core::wal::IoError;
use ddc_core::{ShardedCube, SharedDurableCube, TryUpdateError, VfsFile};

/// Why a backend refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// A coordinate was outside the cube, had the wrong rank, or the
    /// box corners were inverted. Maps to 400.
    OutOfBounds(String),
    /// Transient overload: the owning shard's write queue is full.
    /// Maps to 429 — the client should back off and retry.
    Busy(String),
    /// Permanent refusal: a shard exhausted its restart budget. Maps
    /// to 503.
    Failed(String),
    /// The durable store is in degraded read-only mode after a disk
    /// fault; queries keep serving, mutations map to 503 until an
    /// operator intervenes (`/healthz` reports `degraded`).
    ReadOnly(String),
    /// The durable log could not be appended (a transient, healthy
    /// failure — not degraded). Maps to 500.
    Io(String),
}

impl BackendError {
    /// The HTTP status the server answers with.
    pub fn status(&self) -> u16 {
        match self {
            BackendError::OutOfBounds(_) => 400,
            BackendError::Busy(_) => 429,
            BackendError::Failed(_) | BackendError::ReadOnly(_) => 503,
            BackendError::Io(_) => 500,
        }
    }

    /// One-line detail for the response body.
    pub fn detail(&self) -> &str {
        match self {
            BackendError::OutOfBounds(d)
            | BackendError::Busy(d)
            | BackendError::Failed(d)
            | BackendError::ReadOnly(d)
            | BackendError::Io(d) => d,
        }
    }
}

impl From<TryUpdateError> for BackendError {
    fn from(e: TryUpdateError) -> Self {
        match e {
            TryUpdateError::QueueFull { .. } => BackendError::Busy(e.to_string()),
            TryUpdateError::ShardFailed { .. } => BackendError::Failed(e.to_string()),
            TryUpdateError::ReadOnly => BackendError::ReadOnly(e.to_string()),
        }
    }
}

/// What a backend reports on `/healthz`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendHealth {
    /// Fully serving.
    Ok,
    /// Serving reads only; mutations are rejected. The string says why.
    Degraded(String),
}

/// Outcome of a batched ingest: how many leading updates were
/// acknowledged, and the error that stopped the batch (if any).
/// Acknowledged updates are durable per the backend's own contract —
/// they are never rolled back by a later rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Updates applied, in order, before the first rejection.
    pub applied: usize,
    /// The rejection that ended the batch, or `None` if all applied.
    pub error: Option<BackendError>,
}

/// The request-execution surface the server drives. Signed `i64`
/// coordinates are the wire type; each backend validates them against
/// its own coordinate space.
pub trait ServeBackend: Send + Sync + 'static {
    /// Dimensionality served (`d` in the paper).
    fn ndim(&self) -> usize;

    /// Applies one point delta. `Ok` is the acknowledgement: the
    /// update is owned by the backend and will not be lost.
    fn update(&self, point: &[i64], delta: i64) -> Result<(), BackendError>;

    /// Range sum over the closed box `[lo, hi]`.
    fn query(&self, lo: &[i64], hi: &[i64]) -> Result<i64, BackendError>;

    /// Prefix sum `SUM(origin : point)`.
    fn prefix(&self, point: &[i64]) -> Result<i64, BackendError>;

    /// Forces queued writes into the engine (used by tests and
    /// shutdown; serving reads are already read-through).
    fn flush(&self);

    /// Liveness/served-capability report for `/healthz`. Default: a
    /// backend with no degraded mode is always [`BackendHealth::Ok`].
    fn health(&self) -> BackendHealth {
        BackendHealth::Ok
    }

    /// Applies a batch in order, stopping at the first rejection.
    fn ingest(&self, updates: &[(Vec<i64>, i64)]) -> IngestOutcome {
        for (i, (point, delta)) in updates.iter().enumerate() {
            if let Err(e) = self.update(point, *delta) {
                return IngestOutcome {
                    applied: i,
                    error: Some(e),
                };
            }
        }
        IngestOutcome {
            applied: updates.len(),
            error: None,
        }
    }
}

/// [`ShardedCube`] backend: bounded coordinate space, per-shard
/// group-commit queues, real backpressure.
pub struct ShardedBackend {
    cube: ShardedCube<i64>,
}

impl ShardedBackend {
    /// Serves `cube` (callers keep their own handle via
    /// [`ShardedBackend::cube`] — useful for tests that flush and
    /// audit totals out of band).
    pub fn new(cube: ShardedCube<i64>) -> Self {
        Self { cube }
    }

    /// The underlying cube.
    pub fn cube(&self) -> &ShardedCube<i64> {
        &self.cube
    }

    fn shape(&self) -> &Shape {
        use ddc_array::RangeSumEngine as _;
        self.cube.shape()
    }

    /// Converts wire coordinates into a checked in-bounds point.
    fn checked_point(&self, point: &[i64]) -> Result<Vec<usize>, BackendError> {
        let shape = self.shape();
        if point.len() != shape.ndim() {
            return Err(BackendError::OutOfBounds(format!(
                "point rank {} does not match cube rank {}",
                point.len(),
                shape.ndim()
            )));
        }
        point
            .iter()
            .zip(shape.dims().iter())
            .enumerate()
            .map(|(axis, (&p, &n))| {
                if p < 0 || p as u64 >= n as u64 {
                    Err(BackendError::OutOfBounds(format!(
                        "coordinate {p} outside dimension {axis} of size {n}"
                    )))
                } else {
                    Ok(p as usize)
                }
            })
            .collect()
    }
}

impl ServeBackend for ShardedBackend {
    fn ndim(&self) -> usize {
        self.shape().ndim()
    }

    fn update(&self, point: &[i64], delta: i64) -> Result<(), BackendError> {
        let point = self.checked_point(point)?;
        self.cube.try_update(&point, delta).map_err(Into::into)
    }

    fn query(&self, lo: &[i64], hi: &[i64]) -> Result<i64, BackendError> {
        let (lo, hi) = (self.checked_point(lo)?, self.checked_point(hi)?);
        if lo.iter().zip(hi.iter()).any(|(l, h)| l > h) {
            return Err(BackendError::OutOfBounds(format!(
                "inverted box {lo:?}..{hi:?}"
            )));
        }
        Ok(self.cube.query(&Region::new(&lo, &hi)))
    }

    fn prefix(&self, point: &[i64]) -> Result<i64, BackendError> {
        let point = self.checked_point(point)?;
        Ok(self.cube.query_prefix(&point))
    }

    fn flush(&self) {
        self.cube.flush();
    }
}

/// [`SharedDurableCube`] backend: growable signed coordinate space,
/// WAL-acknowledged writes. `Busy` never occurs; a transient log
/// failure is `Io`, while ENOSPC/retry-exhaustion degradation surfaces
/// as `ReadOnly` (503) and flips `/healthz` to `degraded`.
pub struct DurableBackend<F: VfsFile + 'static> {
    cube: SharedDurableCube<i64, F>,
}

impl<F: VfsFile + 'static> DurableBackend<F> {
    /// Serves `cube` (cheaply cloneable; callers keep a handle).
    pub fn new(cube: SharedDurableCube<i64, F>) -> Self {
        Self { cube }
    }

    fn check_rank(&self, point: &[i64]) -> Result<(), BackendError> {
        if point.len() != self.cube.ndim() {
            return Err(BackendError::OutOfBounds(format!(
                "point rank {} does not match cube rank {}",
                point.len(),
                self.cube.ndim()
            )));
        }
        Ok(())
    }
}

impl<F: VfsFile + 'static> ServeBackend for DurableBackend<F> {
    fn ndim(&self) -> usize {
        self.cube.ndim()
    }

    fn update(&self, point: &[i64], delta: i64) -> Result<(), BackendError> {
        self.check_rank(point)?;
        self.cube.add(point, delta).map_err(|e| match e {
            IoError::ReadOnly { .. } | IoError::Exhausted { .. } => {
                BackendError::from(TryUpdateError::ReadOnly)
            }
            IoError::Transient { .. } => BackendError::Io(e.to_string()),
        })
    }

    fn query(&self, lo: &[i64], hi: &[i64]) -> Result<i64, BackendError> {
        self.check_rank(lo)?;
        self.check_rank(hi)?;
        if lo.iter().zip(hi.iter()).any(|(l, h)| l > h) {
            return Err(BackendError::OutOfBounds(format!(
                "inverted box {lo:?}..{hi:?}"
            )));
        }
        Ok(self.cube.range_sum(lo, hi))
    }

    fn prefix(&self, point: &[i64]) -> Result<i64, BackendError> {
        self.check_rank(point)?;
        // A growable cube's prefix starts at its (possibly negative)
        // low corner, clipped inside range_sum.
        let lo: Vec<i64> = point.iter().map(|_| i64::MIN / 2).collect();
        if point.iter().any(|&p| p < lo[0]) {
            return Err(BackendError::OutOfBounds(format!(
                "prefix corner {point:?} below representable range"
            )));
        }
        Ok(self.cube.range_sum(&lo, point))
    }

    fn flush(&self) {
        // Log-then-apply acknowledges synchronously; nothing queued.
    }

    fn health(&self) -> BackendHealth {
        match self.cube.degraded() {
            Some(reason) => BackendHealth::Degraded(reason),
            None => BackendHealth::Ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_core::{DdcConfig, ShardConfig};

    fn sharded(dims: &[usize]) -> ShardedBackend {
        ShardedBackend::new(ShardedCube::new(
            Shape::new(dims),
            DdcConfig::default(),
            ShardConfig::with_shards(2),
        ))
    }

    #[test]
    fn sharded_backend_round_trips_updates_and_queries() {
        let b = sharded(&[8, 8]);
        b.update(&[1, 2], 5).expect("in bounds");
        b.update(&[7, 7], 3).expect("in bounds");
        b.flush();
        assert_eq!(b.query(&[0, 0], &[7, 7]).expect("full box"), 8);
        assert_eq!(b.prefix(&[1, 2]).expect("prefix"), 5);
        assert_eq!(b.query(&[7, 7], &[7, 7]).expect("cell"), 3);
    }

    #[test]
    fn sharded_backend_rejects_untrusted_coordinates_without_panicking() {
        let b = sharded(&[4, 4]);
        for bad in [
            b.update(&[4, 0], 1),
            b.update(&[-1, 0], 1),
            b.update(&[0], 1),
            b.update(&[0, i64::MAX], 1),
        ] {
            let e = bad.expect_err("out of bounds");
            assert_eq!(e.status(), 400, "{e:?}");
        }
        assert_eq!(
            b.query(&[2, 2], &[1, 1]).expect_err("inverted").status(),
            400
        );
        assert_eq!(b.prefix(&[9, 9]).expect_err("oob").status(), 400);
    }

    #[test]
    fn ingest_stops_at_first_rejection_and_reports_applied_count() {
        let b = sharded(&[4, 4]);
        let out = b.ingest(&[
            (vec![0, 0], 1),
            (vec![1, 1], 2),
            (vec![9, 9], 3),
            (vec![2, 2], 4),
        ]);
        assert_eq!(out.applied, 2);
        assert_eq!(out.error.as_ref().map(|e| e.status()), Some(400));
        b.flush();
        assert_eq!(b.query(&[0, 0], &[3, 3]).expect("sum"), 3);
    }

    #[test]
    fn durable_backend_serves_growable_coordinates() {
        let b = DurableBackend::new(
            SharedDurableCube::<i64, Vec<u8>>::new(2, DdcConfig::default(), Vec::new())
                .expect("wal"),
        );
        b.update(&[-3, 10], 7).expect("growable");
        b.update(&[5, -2], 2).expect("growable");
        assert_eq!(b.query(&[-10, -10], &[20, 20]).expect("box"), 9);
        assert_eq!(b.prefix(&[-3, 10]).expect("prefix"), 7);
        assert_eq!(b.update(&[0], 1).expect_err("rank").status(), 400);
    }
}
