//! `ddc loadgen` — pipelined mixed update/query traffic against a
//! `ddc serve` endpoint, reporting throughput and batch-RTT quantiles
//! as a schema-v2 [`BenchReport`] (`BENCH_serve_latency.json`).
//!
//! Each client thread owns one connection and drives seeded traffic in
//! pipelined batches: write `batch` line-protocol commands, then read
//! exactly `batch` response lines, timing the round trip. Batch RTTs
//! land in one shared log-bucketed histogram; throughput is total
//! requests over wall time. With no `--addr` an in-process server is
//! started on an ephemeral port, so the bench is self-contained.

use crate::backend::ShardedBackend;
use crate::server::{Server, ServerConfig};
use ddc_array::Shape;
use ddc_bench::json::{BenchReport, MetricKind};
use ddc_core::obs::Histogram;
use ddc_core::sync::Arc;
use ddc_core::{DdcConfig, ShardConfig, ShardedCube};
use ddc_workload::DdcRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Connects with capped exponential backoff: 10 ms doubling to 250 ms
/// between attempts, giving up after ~5 s. A server that is restarting
/// (or still binding in a race with the load generator) answers
/// `ECONNREFUSED` transiently; hammering it once and dying makes every
/// orchestration script wrap us in its own retry loop instead.
fn connect_with_retry(addr: &str, what: &str) -> Result<TcpStream, String> {
    connect_with_budget(addr, what, Duration::from_secs(5))
}

fn connect_with_budget(addr: &str, what: &str, budget: Duration) -> Result<TcpStream, String> {
    let start = Instant::now();
    let mut delay = Duration::from_millis(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if start.elapsed() + delay > budget {
                    return Err(format!("{what} {addr}: {e} (gave up after {budget:?})"));
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(250));
            }
        }
    }
}

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target `host:port`; `None` starts an in-process server.
    pub addr: Option<String>,
    /// Client threads (one connection each).
    pub threads: usize,
    /// Requests sent per thread.
    pub requests: u64,
    /// Requests pipelined per write.
    pub batch: usize,
    /// Percent of requests that are updates (the rest split between
    /// prefix and range queries).
    pub update_pct: u64,
    /// Workload seed.
    pub seed: u64,
    /// Side of the square in-process cube (ignored with `--addr`).
    pub side: usize,
    /// Shards of the in-process cube (ignored with `--addr`).
    pub shards: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: None,
            threads: 4,
            requests: 50_000,
            batch: 64,
            update_pct: 50,
            seed: 0x10AD,
            side: 256,
            shards: 4,
        }
    }
}

/// What one run measured.
#[derive(Clone, Debug)]
pub struct LoadgenSummary {
    /// Requests acknowledged with a success line.
    pub ok: u64,
    /// Requests answered `busy` (backpressure).
    pub busy: u64,
    /// Requests answered `err`.
    pub errors: u64,
    /// Total requests sent.
    pub total: u64,
    /// Sustained mixed requests per second.
    pub req_per_s: f64,
    /// Batch round-trip p50, nanoseconds.
    pub rtt_p50_ns: u64,
    /// Batch round-trip p99, nanoseconds.
    pub rtt_p99_ns: u64,
    /// Batch round-trip max, nanoseconds.
    pub rtt_max_ns: u64,
}

impl LoadgenSummary {
    /// The perf-smoke report (`BENCH_serve_latency.json` payload).
    pub fn report(&self, config: &LoadgenConfig) -> BenchReport {
        let mut r = BenchReport::new("serve_latency");
        r.push(
            "serve.mixed.req_per_s",
            MetricKind::Throughput,
            self.req_per_s,
        );
        r.push(
            "serve.batch_rtt.p50_ns",
            MetricKind::LatencyNs,
            self.rtt_p50_ns as f64,
        );
        r.push(
            "serve.batch_rtt.p99_ns",
            MetricKind::LatencyNs,
            self.rtt_p99_ns as f64,
        );
        r.push(
            "serve.batch_rtt.max_ns",
            MetricKind::LatencyNs,
            self.rtt_max_ns as f64,
        );
        r.push("serve.requests.total", MetricKind::Count, self.total as f64);
        r.push("serve.requests.ok", MetricKind::Info, self.ok as f64);
        r.push("serve.requests.busy", MetricKind::Info, self.busy as f64);
        r.push("serve.requests.err", MetricKind::Info, self.errors as f64);
        r.push("config.threads", MetricKind::Count, config.threads as f64);
        r.push("config.batch", MetricKind::Count, config.batch as f64);
        r.push(
            "config.update_pct",
            MetricKind::Count,
            config.update_pct as f64,
        );
        r
    }
}

/// One thread's seeded pipelined session. Returns `(ok, busy, err)`.
fn drive(
    addr: &str,
    config: &LoadgenConfig,
    thread: usize,
    side: usize,
    rtt: &Histogram,
) -> Result<(u64, u64, u64), String> {
    let mut stream = connect_with_retry(addr, "loadgen connect")?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("loadgen nodelay: {e}"))?;
    let mut rng = DdcRng::seed_from_u64(config.seed ^ (thread as u64).wrapping_mul(0x9E37_79B9));
    let mut wire = String::with_capacity(config.batch * 24);
    let mut read_buf = vec![0u8; 64 * 1024];
    let (mut ok, mut busy, mut errors) = (0u64, 0u64, 0u64);
    let mut sent = 0u64;
    // `true` while the next unread byte starts a response line.
    let mut at_line_start = true;
    while sent < config.requests {
        let n = (config.batch as u64).min(config.requests - sent) as usize;
        wire.clear();
        for _ in 0..n {
            let x = rng.gen_range(0..side);
            let y = rng.gen_range(0..side);
            if rng.gen_range(0..100usize) < config.update_pct as usize {
                let delta = rng.gen_range(-100i64..=100);
                wire.push_str(&format!("u {x},{y} {delta}\n"));
            } else if rng.gen_range(0..2usize) == 0 {
                wire.push_str(&format!("p {x},{y}\n"));
            } else {
                let x2 = rng.gen_range(x..side);
                let y2 = rng.gen_range(y..side);
                wire.push_str(&format!("q {x},{y} {x2},{y2}\n"));
            }
        }
        let start = Instant::now();
        stream
            .write_all(wire.as_bytes())
            .map_err(|e| format!("loadgen write: {e}"))?;
        // Read exactly n response lines, classifying by first byte
        // (`busy …` / `err …` / anything else = success).
        let mut lines = 0usize;
        while lines < n {
            let got = stream
                .read(&mut read_buf)
                .map_err(|e| format!("loadgen read: {e}"))?;
            if got == 0 {
                return Err("loadgen: server closed mid-batch".to_string());
            }
            for &b in &read_buf[..got] {
                if at_line_start {
                    match b {
                        b'b' => busy += 1,
                        b'e' => errors += 1,
                        _ => ok += 1,
                    }
                    at_line_start = false;
                }
                if b == b'\n' {
                    lines += 1;
                    at_line_start = true;
                }
            }
        }
        rtt.record(start.elapsed().as_nanos() as u64);
        sent += n as u64;
    }
    Ok((ok, busy, errors))
}

/// Runs the load generator, returning the measured summary.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenSummary, String> {
    let local = match &config.addr {
        Some(_) => None,
        None => {
            let cube = ShardedCube::<i64>::new(
                Shape::new(&[config.side, config.side]),
                DdcConfig::default(),
                ShardConfig::with_shards(config.shards),
            );
            let server = Server::start(
                Arc::new(ShardedBackend::new(cube)),
                ServerConfig {
                    workers: config.threads.max(2),
                    max_connections: config.threads + 8,
                    ..ServerConfig::default()
                },
            )
            .map_err(|e| format!("loadgen: in-process server: {e}"))?;
            Some(server)
        }
    };
    let addr = match (&config.addr, &local) {
        (Some(a), _) => a.clone(),
        (None, Some(server)) => server.local_addr().to_string(),
        (None, None) => unreachable!("local server constructed above"),
    };
    // Probe the target first so a bad --addr fails clean (after the
    // retry budget — a just-restarted server gets time to bind).
    connect_with_retry(&addr, "loadgen: cannot reach")?;

    let rtt = Arc::new(Histogram::default());
    let started = Instant::now();
    let workers: Vec<_> = (0..config.threads.max(1))
        .map(|t| {
            let addr = addr.clone();
            let config = config.clone();
            let rtt = Arc::clone(&rtt);
            // Remote cubes are sized by the operator; stay in the
            // in-process default unless told otherwise.
            let side = config.side;
            std::thread::spawn(move || drive(&addr, &config, t, side, &rtt))
        })
        .collect();
    let (mut ok, mut busy, mut errors) = (0u64, 0u64, 0u64);
    let mut failure = None;
    for w in workers {
        match w.join() {
            Ok(Ok((o, b, e))) => {
                ok += o;
                busy += b;
                errors += e;
            }
            Ok(Err(e)) => failure = Some(e),
            Err(_) => failure = Some("loadgen: worker panicked".to_string()),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(server) = local {
        server.shutdown();
    }
    if let Some(e) = failure {
        return Err(e);
    }
    let total = config.requests * config.threads.max(1) as u64;
    let snap = rtt.snapshot();
    Ok(LoadgenSummary {
        ok,
        busy,
        errors,
        total,
        req_per_s: total as f64 / elapsed.max(1e-9),
        rtt_p50_ns: snap.quantile(0.5),
        rtt_p99_ns: snap.quantile(0.99),
        rtt_max_ns: snap.max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_retry_waits_for_a_late_binding_server() {
        // Learn a free port, release it, and bring the listener up
        // only after the client has already started retrying.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        let addr = probe.local_addr().expect("addr").to_string();
        drop(probe);
        let rebind = addr.clone();
        let listener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let l = std::net::TcpListener::bind(&rebind).expect("rebind");
            let _ = l.accept();
        });
        let started = Instant::now();
        let s = connect_with_retry(&addr, "test").expect("retries until the server binds");
        assert!(started.elapsed() >= Duration::from_millis(100));
        drop(s);
        listener.join().expect("listener thread");
    }

    #[test]
    fn connect_retry_reports_the_last_error_after_the_budget() {
        // A freshly released ephemeral port refuses connections; the
        // budget expires and the error names the target.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        let addr = probe.local_addr().expect("addr").to_string();
        drop(probe);
        let err =
            connect_with_budget(&addr, "test", Duration::from_millis(200)).expect_err("no server");
        assert!(err.contains(&addr), "{err}");
        assert!(err.contains("gave up"), "{err}");
    }

    #[test]
    fn small_run_against_in_process_server_is_clean() {
        let config = LoadgenConfig {
            threads: 2,
            requests: 400,
            batch: 16,
            side: 32,
            shards: 2,
            ..LoadgenConfig::default()
        };
        let summary = run(&config).expect("loadgen runs");
        assert_eq!(summary.total, 800);
        assert_eq!(summary.ok, 800, "no errors on a healthy server");
        assert_eq!(summary.busy + summary.errors, 0);
        assert!(summary.req_per_s > 0.0);
        let report = summary.report(&config);
        assert_eq!(report.bench, "serve_latency");
        let text = report.to_json();
        let parsed = ddc_bench::json::BenchReport::parse(&text).expect("schema v2");
        assert!(parsed
            .metrics
            .iter()
            .any(|m| m.name == "serve.mixed.req_per_s"));
    }
}
