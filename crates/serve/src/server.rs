//! The TCP front end: acceptor + worker pool over [`crate::backend`].
//!
//! Architecture (DESIGN §S42):
//!
//! * One acceptor thread owns the listening socket. Accepted
//!   connections are pushed onto a bounded hand-off queue guarded by a
//!   `Mutex`/`Condvar` pair from the `core::sync` facade; when the
//!   total of queued + in-flight connections reaches
//!   [`ServerConfig::max_connections`] the acceptor answers `503` and
//!   closes instead of queueing (load shedding at the door).
//! * [`ServerConfig::workers`] worker threads pop connections and run
//!   them to completion: read → feed [`RequestParser`] → execute each
//!   frame against the backend → batch all responses from one read
//!   into one write (pipelining never pays per-request syscalls).
//! * Reads carry a short timeout so idle connections observe shutdown
//!   promptly; a fatal [`ParseError`] answers with its mapped status
//!   and closes (after a framing error the stream cannot be trusted).
//!
//! Backpressure surfaces, in order of checking: connection limit
//! (503), per-tenant admission ([`Admission`], 429), and engine
//! rejection ([`BackendError::Busy`], 429) from the shard write
//! queues. An update is acknowledged (`ok` / 200) only after the
//! backend accepted it — acked writes are never lost.

use crate::admission::{Admission, AdmissionConfig};
use crate::backend::{BackendError, BackendHealth, ServeBackend};
use crate::http::{write_http_response, Frame, ParserConfig, RequestParser};
use crate::protocol::{self, ServeRequest};
use ddc_core::obs;
use ddc_core::sync::atomic::{AtomicUsize, Ordering};
use ddc_core::sync::thread::{spawn, JoinHandle};
use ddc_core::sync::{Arc, Condvar, Mutex, PoisonError};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing connections.
    pub workers: usize,
    /// Queued + in-flight connections accepted before shedding with
    /// 503.
    pub max_connections: usize,
    /// Wire-parser bounds.
    pub parser: ParserConfig,
    /// Per-tenant rate policy.
    pub admission: AdmissionConfig,
    /// Socket read timeout; bounds how long an idle connection takes
    /// to notice shutdown.
    pub read_timeout: Duration,
    /// Close a connection that has sent no bytes for this long. `None`
    /// disables the reaper (connections live until the peer hangs up).
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_connections: 256,
            parser: ParserConfig::default(),
            admission: AdmissionConfig::default(),
            read_timeout: Duration::from_millis(50),
            idle_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Shared state between the acceptor and the workers.
struct Shared {
    backend: Arc<dyn ServeBackend>,
    config: ServerConfig,
    admission: Admission,
    /// Hand-off queue of accepted connections.
    queue: Mutex<VecDeque<TcpStream>>,
    /// Signals workers that the queue or the shutdown flag changed.
    wake: Condvar,
    /// Queued + in-flight connections (the 503 limit).
    open: AtomicUsize,
    /// 1 once shutdown began.
    stopping: AtomicUsize,
    /// Monotonic epoch for admission timestamps.
    epoch: Instant,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire) != 0
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A running server. Dropping without [`Server::shutdown`] leaks the
/// threads for the process lifetime — tests and the CLI always shut
/// down explicitly.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the pool, and starts accepting.
    pub fn start(backend: Arc<dyn ServeBackend>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            backend,
            admission: Admission::new(config.admission),
            config,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            open: AtomicUsize::new(0),
            stopping: AtomicUsize::new(0),
            epoch: Instant::now(),
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains workers, and joins every thread.
    /// In-flight connections are closed at their next read timeout.
    pub fn shutdown(self) {
        self.shared.stopping.store(1, Ordering::Release);
        self.shared.wake.notify_all();
        // Unblock the acceptor with one last connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.acceptor.join();
        self.shared.wake.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> ddc_core::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let accepted = obs::counter("serve.conn.accepted");
    let shed = obs::counter("serve.conn.shed");
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.stopping() {
            break;
        }
        if shared.open.load(Ordering::Acquire) >= shared.config.max_connections {
            shed.inc();
            let mut out = Vec::new();
            write_http_response(&mut out, 503, "connection limit reached\n");
            let mut stream = stream;
            let _ = stream.write_all(&out);
            continue;
        }
        accepted.inc();
        shared.open.fetch_add(1, Ordering::AcqRel);
        lock(&shared.queue).push_back(stream);
        shared.wake.notify_one();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if shared.stopping() {
                    return;
                }
                queue = shared
                    .wake
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        handle_connection(stream, shared);
        shared.open.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Per-connection session state: the tenant bound by the `t` command.
struct Session {
    tenant: String,
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut parser = RequestParser::new(shared.config.parser);
    let mut session = Session {
        tenant: "default".to_string(),
    };
    let mut buf = vec![0u8; 16 * 1024];
    let mut out: Vec<u8> = Vec::with_capacity(4 * 1024);
    let mut last_activity = Instant::now();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.stopping() {
                    return;
                }
                // Idle reaper: a connection that has gone quiet past
                // the deadline is closed so it stops pinning a worker
                // and a slot under `max_connections`.
                if let Some(idle) = shared.config.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        obs::counter("serve.conn.idle_reaped").inc();
                        return;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        last_activity = Instant::now();
        parser.feed(&buf[..n]);
        out.clear();
        loop {
            match parser.poll() {
                Ok(Some(frame)) => respond(&frame, shared, &mut session, &mut out),
                Ok(None) => break,
                Err(e) => {
                    // Fatal framing error: answer and close.
                    obs::counter("serve.parse_errors").inc();
                    write_http_response(&mut out, e.status(), &format!("{e}\n"));
                    let _ = stream.write_all(&out);
                    return;
                }
            }
        }
        if !out.is_empty() && stream.write_all(&out).is_err() {
            return;
        }
        if shared.stopping() {
            return;
        }
    }
}

/// Executes one frame, appending the wire response to `out`.
fn respond(frame: &Frame, shared: &Arc<Shared>, session: &mut Session, out: &mut Vec<u8>) {
    obs::counter("serve.requests").inc();
    let request = match protocol::decode(frame) {
        Ok(r) => r,
        Err(e) => {
            obs::counter("serve.bad_requests").inc();
            return reply(frame, out, e.status(), &e.detail());
        }
    };
    // Session commands and cheap probes bypass admission.
    match &request {
        ServeRequest::Tenant(name) => {
            session.tenant = name.clone();
            return reply(frame, out, 200, "ok");
        }
        ServeRequest::Ping => return reply(frame, out, 200, "pong"),
        // Healthy body stays exactly "ok" (smoke tests grep for it);
        // a degraded durable backend keeps answering queries but
        // advertises 503 so load balancers can drain writes.
        ServeRequest::Health => match shared.backend.health() {
            BackendHealth::Ok => return reply(frame, out, 200, "ok"),
            BackendHealth::Degraded(reason) => {
                return reply(frame, out, 503, &format!("degraded: {reason}"))
            }
        },
        ServeRequest::Metrics => {
            let mut text = obs::prometheus_text();
            text.push('\n');
            return reply(frame, out, 200, &text);
        }
        _ => {}
    }
    let tenant = match frame {
        Frame::Http(req) => req.header("x-ddc-tenant").unwrap_or(&session.tenant),
        Frame::Line(_) => &session.tenant,
    };
    if !shared.admission.admit(tenant, shared.now_ns()) {
        obs::counter("serve.rejected.admission").inc();
        return reply(frame, out, 429, &format!("rate-limited tenant {tenant:?}"));
    }
    let backend = &shared.backend;
    let result = match &request {
        ServeRequest::Update { point, delta } => {
            backend.update(point, *delta).map(|()| "ok".to_string())
        }
        ServeRequest::Ingest(updates) => {
            let outcome = backend.ingest(updates);
            match outcome.error {
                None => Ok(format!("applied {}", outcome.applied)),
                Some(e) => {
                    if matches!(e, BackendError::Busy(_)) {
                        obs::counter("serve.rejected.backpressure").inc();
                    }
                    return reply(
                        frame,
                        out,
                        e.status(),
                        &format!(
                            "applied {} of {}: {}",
                            outcome.applied,
                            updates.len(),
                            e.detail()
                        ),
                    );
                }
            }
        }
        ServeRequest::Query { lo, hi } => backend.query(lo, hi).map(|v| v.to_string()),
        ServeRequest::Prefix(point) => backend.prefix(point).map(|v| v.to_string()),
        // Handled above.
        ServeRequest::Tenant(_)
        | ServeRequest::Ping
        | ServeRequest::Health
        | ServeRequest::Metrics => Ok(String::new()),
    };
    match result {
        Ok(body) => reply(frame, out, 200, &body),
        Err(e) => {
            if matches!(e, BackendError::Busy(_)) {
                obs::counter("serve.rejected.backpressure").inc();
            }
            reply(frame, out, e.status(), e.detail())
        }
    }
}

/// Serializes a response in the syntax the request arrived in. Line
/// responses are one line: `ok` / value / `pong`, `busy <detail>` for
/// 429, `err <detail>` otherwise.
fn reply(frame: &Frame, out: &mut Vec<u8>, status: u16, body: &str) {
    match frame {
        Frame::Http(_) => {
            let mut body = body.to_string();
            if !body.ends_with('\n') {
                body.push('\n');
            }
            write_http_response(out, status, &body);
        }
        Frame::Line(_) => {
            match status {
                200 => out.extend_from_slice(body.as_bytes()),
                429 => {
                    out.extend_from_slice(b"busy ");
                    out.extend_from_slice(body.as_bytes());
                }
                _ => {
                    out.extend_from_slice(b"err ");
                    out.extend_from_slice(body.as_bytes());
                }
            }
            out.push(b'\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ShardedBackend;
    use ddc_array::Shape;
    use ddc_core::{DdcConfig, ShardConfig, ShardedCube};
    use std::io::BufRead as _;

    fn start_default() -> Server {
        let cube = ShardedCube::<i64>::new(
            Shape::new(&[64, 64]),
            DdcConfig::default(),
            ShardConfig::with_shards(2),
        );
        Server::start(Arc::new(ShardedBackend::new(cube)), ServerConfig::default())
            .expect("bind ephemeral")
    }

    fn send(addr: SocketAddr, wire: &[u8], lines: usize) -> Vec<String> {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(wire).expect("write");
        let mut r = std::io::BufReader::new(s);
        (0..lines)
            .map(|_| {
                let mut line = String::new();
                r.read_line(&mut line).expect("read line");
                line.trim_end().to_string()
            })
            .collect()
    }

    #[test]
    fn line_protocol_round_trips_over_tcp() {
        let server = start_default();
        let addr = server.local_addr();
        let replies = send(addr, b"ping\nu 1,2 5\nu 1,3 7\np 1,2\nq 0,0 63,63\n", 5);
        assert_eq!(replies, ["pong", "ok", "ok", "5", "12"]);
        let errs = send(addr, b"q 9,9 1,1\nzap\n", 2);
        assert!(errs[0].starts_with("err "), "{errs:?}");
        assert!(errs[1].starts_with("err "), "{errs:?}");
        server.shutdown();
    }

    #[test]
    fn http_round_trip_and_metrics() {
        let server = start_default();
        let addr = server.local_addr();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(
            b"POST /ingest HTTP/1.1\r\nContent-Length: 12\r\n\r\n1,1 4\n2,2 6\nGET /query?lo=0,0&hi=63,63 HTTP/1.1\r\n\r\n",
        )
        .expect("write");
        let mut r = std::io::BufReader::new(s);
        let mut read_response = || {
            let mut status = String::new();
            r.read_line(&mut status).expect("status");
            let mut len = 0usize;
            loop {
                let mut line = String::new();
                r.read_line(&mut line).expect("header");
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().expect("length");
                }
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body).expect("body");
            (
                status.trim_end().to_string(),
                String::from_utf8(body).expect("utf8"),
            )
        };
        let (s1, b1) = read_response();
        assert_eq!(s1, "HTTP/1.1 200 OK");
        assert_eq!(b1, "applied 2\n");
        let (s2, b2) = read_response();
        assert_eq!(s2, "HTTP/1.1 200 OK");
        assert_eq!(b2, "10\n");
        drop(r);

        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n")
            .expect("write");
        // Half-close so the server sees EOF and hangs up after replying.
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut text = String::new();
        let _ = s.read_to_string(&mut text);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("ddc_serve_requests"), "{text}");
        server.shutdown();
    }

    #[test]
    fn admission_control_answers_429() {
        let cube = ShardedCube::<i64>::new(
            Shape::new(&[8, 8]),
            DdcConfig::default(),
            ShardConfig::with_shards(1),
        );
        let server = Server::start(
            Arc::new(ShardedBackend::new(cube)),
            ServerConfig {
                admission: AdmissionConfig {
                    rate_per_sec: 1,
                    burst: 2,
                    max_tenants: 8,
                },
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let wire = b"t heavy\nu 1,1 1\nu 1,1 1\nu 1,1 1\nu 1,1 1\nu 1,1 1\n";
        let replies = send(addr, wire, 6);
        assert_eq!(replies[0], "ok", "tenant bind is uncharged");
        let ok = replies[1..].iter().filter(|r| *r == "ok").count();
        let busy = replies[1..]
            .iter()
            .filter(|r| r.starts_with("busy "))
            .count();
        assert_eq!(ok, 3, "{replies:?}");
        assert_eq!(busy, 2, "{replies:?}");
        server.shutdown();
    }

    /// Backend stub pinned in degraded read-only mode, as a
    /// [`crate::backend::DurableBackend`] is after an unrecoverable
    /// disk fault.
    struct DegradedStub;

    impl ServeBackend for DegradedStub {
        fn ndim(&self) -> usize {
            2
        }
        fn update(&self, _point: &[i64], _delta: i64) -> Result<(), BackendError> {
            Err(BackendError::ReadOnly("read-only".to_string()))
        }
        fn query(&self, _lo: &[i64], _hi: &[i64]) -> Result<i64, BackendError> {
            Ok(42)
        }
        fn prefix(&self, _point: &[i64]) -> Result<i64, BackendError> {
            Ok(42)
        }
        fn flush(&self) {}
        fn health(&self) -> BackendHealth {
            BackendHealth::Degraded("wal append exhausted retries".to_string())
        }
    }

    #[test]
    fn healthz_maps_degraded_backend_to_503_while_queries_serve() {
        let server = Server::start(Arc::new(DegradedStub), ServerConfig::default()).expect("bind");
        let addr = server.local_addr();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("write");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut text = String::new();
        let _ = s.read_to_string(&mut text);
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(
            text.contains("degraded: wal append exhausted retries"),
            "{text}"
        );

        // Reads still serve (200), mutations answer 503.
        let replies = send(addr, b"q 0,0 1,1\nu 1,1 5\n", 2);
        assert_eq!(replies[0], "42");
        assert!(replies[1].starts_with("err "), "{replies:?}");
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_after_the_deadline() {
        let cube = ShardedCube::<i64>::new(
            Shape::new(&[8, 8]),
            DdcConfig::default(),
            ShardConfig::with_shards(1),
        );
        let server = Server::start(
            Arc::new(ShardedBackend::new(cube)),
            ServerConfig {
                read_timeout: Duration::from_millis(10),
                idle_timeout: Some(Duration::from_millis(80)),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        // An active connection first, proving the reaper only fires on
        // silence: each request resets the idle clock.
        let replies = send(addr, b"ping\n", 1);
        assert_eq!(replies, ["pong"]);
        // Now connect and say nothing; the server must hang up on us.
        let start = Instant::now();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut text = String::new();
        s.read_to_string(&mut text).expect("server closed cleanly");
        assert!(text.is_empty(), "{text:?}");
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(60),
            "reaped too early: {waited:?}"
        );
        server.shutdown();
    }

    #[test]
    fn malformed_http_closes_with_mapped_status() {
        let server = start_default();
        let mut s = TcpStream::connect(server.local_addr()).expect("connect");
        s.write_all(b"GET /broken\r\n\r\n").expect("write");
        let mut text = String::new();
        let _ = s.read_to_string(&mut text);
        assert!(text.starts_with("HTTP/1.1 400 Bad Request"), "{text}");
        server.shutdown();
    }
}
