//! Incremental, allocation-bounded wire parser: HTTP/1.1 requests and
//! newline-delimited line-protocol commands on the same connection.
//!
//! The server reads whatever the socket hands it — partial requests,
//! several pipelined requests in one segment, a header split down the
//! middle of its name — and feeds the raw bytes into a [`RequestParser`].
//! The parser buffers at most [`ParserConfig::max_head_bytes`] +
//! [`ParserConfig::max_body_bytes`] and yields complete [`Frame`]s as
//! they materialize:
//!
//! * A line whose first token is an ASCII-uppercase HTTP method (`GET`,
//!   `POST`, …) starts an **HTTP/1.1 request**: start line, up to
//!   [`ParserConfig::max_headers`] headers, then a `Content-Length` body.
//! * Any other non-empty line is a **line-protocol command**, handed up
//!   verbatim (terminator stripped) for [`crate::protocol`] to interpret.
//!   Line commands are lowercase by convention, so the two grammars
//!   cannot collide.
//!
//! Malformed input is a typed [`ParseError`], never a panic, and always
//! fatal for the connection (the server answers with the mapped status
//! and closes — after a framing error the byte stream cannot be trusted
//! again). Every bound is explicit in [`ParserConfig`], so a hostile
//! peer cannot make the parser allocate without limit.

use std::fmt;

/// Limits enforced by [`RequestParser`]. Every cap is per *message*,
/// and the internal buffer never holds more than one unconsumed head
/// plus one body.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ParserConfig {
    /// Longest accepted request head (start line + headers + blank
    /// line) or single protocol line, in bytes.
    pub max_head_bytes: usize,
    /// Most headers accepted on one request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length` body, in bytes.
    pub max_body_bytes: usize,
}

impl Default for ParserConfig {
    fn default() -> Self {
        Self {
            max_head_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a byte stream was rejected. Each variant maps to one HTTP status
/// in [`ParseError::status`]; after any of these the connection closes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line starting with an HTTP method token did not have the
    /// `METHOD SP target SP HTTP/1.x` shape.
    BadStartLine(String),
    /// The request head (or one protocol line) exceeded
    /// [`ParserConfig::max_head_bytes`].
    HeadTooLarge,
    /// More than [`ParserConfig::max_headers`] header lines.
    TooManyHeaders,
    /// A header line without a `name: value` shape, or a name with
    /// forbidden characters.
    BadHeader(String),
    /// `Content-Length` was not a decimal number, or was repeated with
    /// conflicting values.
    BadContentLength(String),
    /// The declared body exceeds [`ParserConfig::max_body_bytes`].
    BodyTooLarge(u64),
    /// A `Transfer-Encoding` the server does not implement.
    UnsupportedTransferEncoding(String),
    /// Bytes that are neither an HTTP request nor valid UTF-8 line
    /// protocol (embedded NUL or invalid UTF-8 in a command line).
    BadLine,
}

impl ParseError {
    /// The HTTP status code the server answers with before closing.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadStartLine(_)
            | ParseError::BadHeader(_)
            | ParseError::BadContentLength(_)
            | ParseError::BadLine => 400,
            ParseError::HeadTooLarge | ParseError::TooManyHeaders => 431,
            ParseError::BodyTooLarge(_) => 413,
            ParseError::UnsupportedTransferEncoding(_) => 501,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadStartLine(l) => write!(f, "malformed start line: {l:?}"),
            ParseError::HeadTooLarge => write!(f, "request head too large"),
            ParseError::TooManyHeaders => write!(f, "too many headers"),
            ParseError::BadHeader(l) => write!(f, "malformed header: {l:?}"),
            ParseError::BadContentLength(v) => write!(f, "bad content-length: {v:?}"),
            ParseError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
            ParseError::UnsupportedTransferEncoding(v) => {
                write!(f, "unsupported transfer-encoding: {v:?}")
            }
            ParseError::BadLine => write!(f, "line is not valid UTF-8 protocol text"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed HTTP/1.1 request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target exactly as sent (path + optional `?query`).
    pub target: String,
    /// `1.0` or `1.1` minor version digit.
    pub minor_version: u8,
    /// Header `(name, value)` pairs in arrival order. Names keep their
    /// wire spelling; use [`HttpRequest::header`] for lookups.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup (first match wins).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Splits the target into `(path, query)` at the first `?`.
    pub fn path_query(&self) -> (&str, &str) {
        match self.target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (self.target.as_str(), ""),
        }
    }
}

/// One complete incoming message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// An HTTP/1.1 request.
    Http(HttpRequest),
    /// A line-protocol command (terminator stripped, never empty).
    Line(String),
}

/// Test-support quirks for the seeded buggy-parser fixture in
/// `ddc-check` (mirrors `crates/check/src/buggy.rs`): a realistic
/// interop bug the request-mutation fuzzer is required to find.
#[doc(hidden)]
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParserQuirk {
    /// Recognize `Content-Length` only in its canonical spelling — any
    /// other casing is treated as an unknown header, so the body is
    /// never consumed and the stream desynchronizes.
    CaseSensitiveContentLength,
    /// Lose a `\r` that arrives as the final byte of a read: the
    /// classic split-terminator bug — `...\r` + `\n...` parses as if
    /// the line ended in a bare `\n` with the `\r` folded into the
    /// line content.
    DropSplitCarriageReturn,
}

/// What one incremental parsing state is waiting for.
#[derive(Debug)]
enum State {
    /// Scanning for the end of a protocol line or HTTP head.
    Head {
        /// How far the head terminator search has advanced (so feeding
        /// byte-at-a-time stays linear, not quadratic).
        scanned: usize,
    },
    /// Head parsed; collecting `need` more body bytes.
    Body { request: HttpRequest, need: usize },
}

/// The incremental parser. Feed raw socket bytes with
/// [`RequestParser::feed`], then drain completed frames with
/// [`RequestParser::poll`] until it returns `Ok(None)`.
#[derive(Debug)]
pub struct RequestParser {
    config: ParserConfig,
    buf: Vec<u8>,
    state: State,
    quirk: Option<ParserQuirk>,
    /// Set once a `ParseError` was returned: the stream is unusable.
    poisoned: bool,
}

/// `true` when `line`'s first token claims the HTTP grammar: 3–10
/// uppercase ASCII letters followed by a space. Line-protocol commands
/// are lowercase, so the grammars cannot collide.
fn claims_http(line: &[u8]) -> bool {
    let Some(sp) = line.iter().position(|&b| b == b' ') else {
        return false;
    };
    (3..=10).contains(&sp) && line[..sp].iter().all(|b| b.is_ascii_uppercase())
}

impl RequestParser {
    /// A fresh parser enforcing `config`'s bounds.
    pub fn new(config: ParserConfig) -> Self {
        Self {
            config,
            buf: Vec::new(),
            state: State::Head { scanned: 0 },
            quirk: None,
            poisoned: false,
        }
    }

    /// Fixture constructor for the differential fuzz harness: a parser
    /// with a seeded bug. Not part of the serving API.
    #[doc(hidden)]
    pub fn new_with_quirk(config: ParserConfig, quirk: ParserQuirk) -> Self {
        let mut p = Self::new(config);
        p.quirk = Some(quirk);
        p
    }

    /// Appends raw bytes from the socket. Cheap; all parsing happens in
    /// [`RequestParser::poll`].
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        let mut bytes = bytes;
        if self.quirk == Some(ParserQuirk::DropSplitCarriageReturn) {
            // The seeded bug: a read ending in '\r' loses that byte.
            if let [rest @ .., b'\r'] = bytes {
                bytes = rest;
            }
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (bounded by the config caps plus one
    /// socket read).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Yields the next complete frame, `Ok(None)` when more bytes are
    /// needed, or a fatal [`ParseError`]. After an error every further
    /// call returns the erroring state's behavior — callers close the
    /// connection.
    pub fn poll(&mut self) -> Result<Option<Frame>, ParseError> {
        if self.poisoned {
            return Ok(None);
        }
        let r = self.poll_inner();
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    fn poll_inner(&mut self) -> Result<Option<Frame>, ParseError> {
        loop {
            // Body state: wait for the declared byte count, then emit.
            if let State::Body { need, .. } = &self.state {
                if self.buf.len() < *need {
                    return Ok(None);
                }
                let State::Body { mut request, need } =
                    std::mem::replace(&mut self.state, State::Head { scanned: 0 })
                else {
                    unreachable!("checked Body above")
                };
                request.body = self.buf.drain(..need).collect();
                return Ok(Some(Frame::Http(request)));
            }

            // Head state. Skip blank separator lines between messages.
            while self.buf.first() == Some(&b'\n')
                || (self.buf.first() == Some(&b'\r') && self.buf.get(1) == Some(&b'\n'))
            {
                let skip = if self.buf[0] == b'\n' { 1 } else { 2 };
                self.buf.drain(..skip);
                self.state = State::Head { scanned: 0 };
            }
            if self.buf.is_empty() {
                return Ok(None);
            }
            let scanned = match self.state {
                State::Head { scanned } => scanned.min(self.buf.len()),
                State::Body { .. } => 0,
            };
            let Some(line_end) = find_byte(&self.buf, scanned, b'\n') else {
                self.state = State::Head {
                    scanned: self.buf.len(),
                };
                if self.buf.len() > self.config.max_head_bytes {
                    return Err(ParseError::HeadTooLarge);
                }
                return Ok(None);
            };
            let first_line = trim_cr(&self.buf[..line_end]);
            if first_line.len() > self.config.max_head_bytes {
                return Err(ParseError::HeadTooLarge);
            }
            if claims_http(first_line) {
                match self.try_http_head()? {
                    HeadProgress::NeedMore => {
                        if self.buf.len() > self.config.max_head_bytes {
                            return Err(ParseError::HeadTooLarge);
                        }
                        return Ok(None);
                    }
                    HeadProgress::Parsed { request, need } => {
                        self.state = State::Body { request, need };
                        continue;
                    }
                }
            }
            // A line-protocol command: one line, consumed whole.
            let line = std::str::from_utf8(first_line)
                .map_err(|_| ParseError::BadLine)?
                .to_string();
            if line.bytes().any(|b| b == 0) {
                return Err(ParseError::BadLine);
            }
            self.buf.drain(..=line_end);
            self.state = State::Head { scanned: 0 };
            return Ok(Some(Frame::Line(line)));
        }
    }

    /// Attempts to parse a full HTTP head from the front of the buffer.
    /// On success the head bytes (through the blank line) are consumed.
    fn try_http_head(&mut self) -> Result<HeadProgress, ParseError> {
        // Locate the blank line terminating the head. Accept both CRLF
        // and bare-LF line endings (tolerant-reader rule).
        let Some(head_end) = find_head_end(&self.buf, self.config.max_head_bytes)? else {
            return Ok(HeadProgress::NeedMore);
        };
        let mut lines = self.buf[..head_end]
            .split(|&b| b == b'\n')
            .map(trim_cr)
            .filter(|l| !l.is_empty());
        let start = lines.next().unwrap_or(b"");
        let start_text = String::from_utf8_lossy(start).into_owned();
        let mut parts = start_text.split(' ').filter(|p| !p.is_empty());
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
            _ => return Err(ParseError::BadStartLine(start_text.clone())),
        };
        let minor_version = match version {
            "HTTP/1.0" => 0,
            "HTTP/1.1" => 1,
            _ => return Err(ParseError::BadStartLine(start_text.clone())),
        };
        let mut headers: Vec<(String, String)> = Vec::new();
        let mut content_length: Option<u64> = None;
        for raw in lines {
            if headers.len() >= self.config.max_headers {
                return Err(ParseError::TooManyHeaders);
            }
            let text = std::str::from_utf8(raw)
                .map_err(|_| ParseError::BadHeader(String::from_utf8_lossy(raw).into_owned()))?;
            let Some((name, value)) = text.split_once(':') else {
                return Err(ParseError::BadHeader(text.to_string()));
            };
            if name.is_empty()
                || name
                    .bytes()
                    .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
            {
                return Err(ParseError::BadHeader(text.to_string()));
            }
            let value = value.trim_matches([' ', '\t']).to_string();
            let canonical = match self.quirk {
                // The seeded bug: only the canonical spelling counts.
                Some(ParserQuirk::CaseSensitiveContentLength) => name == "Content-Length",
                _ => name.eq_ignore_ascii_case("content-length"),
            };
            if canonical {
                let n: u64 = value
                    .parse()
                    .map_err(|_| ParseError::BadContentLength(value.clone()))?;
                if content_length.is_some_and(|prev| prev != n) {
                    return Err(ParseError::BadContentLength(value.clone()));
                }
                content_length = Some(n);
            }
            if name.eq_ignore_ascii_case("transfer-encoding")
                && !value.eq_ignore_ascii_case("identity")
            {
                return Err(ParseError::UnsupportedTransferEncoding(value));
            }
            headers.push((name.to_string(), value));
        }
        let need = content_length.unwrap_or(0);
        if need > self.config.max_body_bytes as u64 {
            return Err(ParseError::BodyTooLarge(need));
        }
        self.buf.drain(..head_end);
        // Consume the blank line (CRLF or LF) closing the head.
        let blank = if self.buf.first() == Some(&b'\r') {
            2
        } else {
            1
        };
        self.buf.drain(..blank.min(self.buf.len()));
        Ok(HeadProgress::Parsed {
            request: HttpRequest {
                method: method.to_string(),
                target: target.to_string(),
                minor_version,
                headers,
                body: Vec::new(),
            },
            need: need as usize,
        })
    }
}

enum HeadProgress {
    NeedMore,
    Parsed { request: HttpRequest, need: usize },
}

fn find_byte(haystack: &[u8], from: usize, needle: u8) -> Option<usize> {
    haystack[from.min(haystack.len())..]
        .iter()
        .position(|&b| b == needle)
        .map(|i| i + from.min(haystack.len()))
}

fn trim_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// Byte offset of the start of the blank line ending an HTTP head
/// (i.e. the end of the last header line's `\n`), or `None` if the head
/// is still incomplete. Errors when no terminator appears within `cap`.
fn find_head_end(buf: &[u8], cap: usize) -> Result<Option<usize>, ParseError> {
    let mut i = 0;
    while let Some(nl) = find_byte(buf, i, b'\n') {
        let next = &buf[nl + 1..];
        if next.first() == Some(&b'\n')
            || (next.first() == Some(&b'\r') && next.get(1) == Some(&b'\n'))
        {
            return Ok(Some(nl + 1));
        }
        if next.is_empty() {
            break;
        }
        i = nl + 1;
    }
    if buf.len() > cap {
        return Err(ParseError::HeadTooLarge);
    }
    Ok(None)
}

// ---------------------------------------------------------------------
// Response writing
// ---------------------------------------------------------------------

/// Reason phrases for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes one HTTP/1.1 response with a text body into `out`.
pub fn write_http_response(out: &mut Vec<u8>, status: u16, body: &str) {
    use std::io::Write as _;
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
        reason(status),
        body.len()
    );
    out.extend_from_slice(body.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(parser: &mut RequestParser, bytes: &[u8]) -> Vec<Frame> {
        parser.feed(bytes);
        let mut frames = Vec::new();
        while let Some(f) = parser.poll().expect("parse") {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn line_and_http_frames_interleave_on_one_stream() {
        let mut p = RequestParser::new(ParserConfig::default());
        let frames = parse_all(
            &mut p,
            b"ping\nGET /metrics HTTP/1.1\r\nHost: x\r\n\r\nu 1,2 5\n",
        );
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], Frame::Line("ping".to_string()));
        match &frames[1] {
            Frame::Http(r) => {
                assert_eq!(r.method, "GET");
                assert_eq!(r.target, "/metrics");
                assert_eq!(r.header("host"), Some("x"));
                assert!(r.body.is_empty());
            }
            other => panic!("expected http frame, got {other:?}"),
        }
        assert_eq!(frames[2], Frame::Line("u 1,2 5".to_string()));
    }

    #[test]
    fn body_is_collected_across_arbitrary_splits() {
        let wire = b"POST /ingest HTTP/1.1\r\ncontent-length: 11\r\n\r\n0,0 5\n1,1 2";
        for split in 0..wire.len() {
            let mut p = RequestParser::new(ParserConfig::default());
            p.feed(&wire[..split]);
            let mut frames = Vec::new();
            while let Some(f) = p.poll().expect("first half") {
                frames.push(f);
            }
            p.feed(&wire[split..]);
            while let Some(f) = p.poll().expect("second half") {
                frames.push(f);
            }
            assert_eq!(frames.len(), 1, "split at {split}");
            match &frames[0] {
                Frame::Http(r) => assert_eq!(r.body, b"0,0 5\n1,1 2", "split at {split}"),
                other => panic!("expected http, got {other:?}"),
            }
        }
    }

    #[test]
    fn byte_at_a_time_feeding_parses_identically() {
        let wire = b"p 3,4\nPOST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut p = RequestParser::new(ParserConfig::default());
        let mut frames = Vec::new();
        for &b in wire.iter() {
            p.feed(&[b]);
            while let Some(f) = p.poll().expect("byte at a time") {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], Frame::Line("p 3,4".to_string()));
        match &frames[1] {
            Frame::Http(r) => assert_eq!(r.body, b"ok"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let mut p = RequestParser::new(ParserConfig::default());
        let frames = parse_all(
            &mut p,
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nq 0,0 1,1\n",
        );
        let targets: Vec<String> = frames
            .iter()
            .map(|f| match f {
                Frame::Http(r) => r.target.clone(),
                Frame::Line(l) => l.clone(),
            })
            .collect();
        assert_eq!(targets, ["/a", "/b", "q 0,0 1,1"]);
    }

    #[test]
    fn malformed_start_line_is_a_fatal_error() {
        let mut p = RequestParser::new(ParserConfig::default());
        p.feed(b"GET /only-two-parts\r\n\r\n");
        let err = p.poll().expect_err("bad start line");
        assert!(matches!(err, ParseError::BadStartLine(_)));
        assert_eq!(err.status(), 400);
        // Poisoned: nothing more comes out.
        p.feed(b"ping\n");
        assert_eq!(p.poll().expect("poisoned parser yields nothing"), None);
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let cfg = ParserConfig {
            max_head_bytes: 64,
            max_headers: 4,
            max_body_bytes: 16,
        };
        let mut p = RequestParser::new(cfg);
        p.feed(&[b'a'; 100]);
        assert_eq!(p.poll().expect_err("head cap").status(), 431);

        let mut p = RequestParser::new(cfg);
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n");
        assert!(matches!(
            p.poll().expect_err("body cap"),
            ParseError::BodyTooLarge(999)
        ));

        let mut p = RequestParser::new(cfg);
        p.feed(b"GET / HTTP/1.1\r\na:1\r\nb:2\r\nc:3\r\nd:4\r\ne:5\r\n\r\n");
        assert_eq!(p.poll().expect_err("header count").status(), 431);
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let mut p = RequestParser::new(ParserConfig::default());
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 3\r\ncontent-length: 4\r\n\r\n");
        assert!(matches!(
            p.poll().expect_err("conflict"),
            ParseError::BadContentLength(_)
        ));
        // Repeated but agreeing lengths are tolerated.
        let mut p = RequestParser::new(ParserConfig::default());
        let frames = parse_all(
            &mut p,
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\nCONTENT-LENGTH: 2\r\n\r\nhi",
        );
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let mut p = RequestParser::new(ParserConfig::default());
        let frames = parse_all(&mut p, b"POST /x HTTP/1.1\nContent-Length: 1\n\nZ");
        match &frames[0] {
            Frame::Http(r) => {
                assert_eq!(r.body, b"Z");
                assert_eq!(r.header("Content-Length"), Some("1"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected_as_unimplemented() {
        let mut p = RequestParser::new(ParserConfig::default());
        p.feed(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_eq!(p.poll().expect_err("chunked").status(), 501);
    }

    #[test]
    fn abrupt_truncation_simply_waits() {
        let mut p = RequestParser::new(ParserConfig::default());
        p.feed(b"GET /a HTTP/1.1\r\nHost:");
        assert_eq!(p.poll().expect("incomplete head"), None);
        assert!(p.buffered() > 0);
    }

    #[test]
    fn quirk_fixtures_diverge_from_the_real_parser() {
        // Case-sensitive Content-Length: lowercase header loses the body.
        let wire = b"POST / HTTP/1.1\r\ncontent-length: 4\r\n\r\nbodyping\n";
        let mut real = RequestParser::new(ParserConfig::default());
        let mut buggy = RequestParser::new_with_quirk(
            ParserConfig::default(),
            ParserQuirk::CaseSensitiveContentLength,
        );
        let rf = parse_all(&mut real, wire);
        let bf = parse_all(&mut buggy, wire);
        assert_ne!(rf, bf);

        // A '\r' lost at a feed boundary inside a counted body shifts
        // every following byte: the stream desynchronizes.
        let mut real = RequestParser::new(ParserConfig::default());
        let mut buggy = RequestParser::new_with_quirk(
            ParserConfig::default(),
            ParserQuirk::DropSplitCarriageReturn,
        );
        for p in [&mut real, &mut buggy] {
            p.feed(b"POST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\na\r");
            p.feed(b"cping\n");
        }
        let rf: Vec<Frame> = std::iter::from_fn(|| real.poll().expect("real")).collect();
        let bf: Vec<Frame> = std::iter::from_fn(|| buggy.poll().expect("buggy")).collect();
        assert_ne!(rf, bf);
        match &rf[0] {
            Frame::Http(r) => assert_eq!(r.body, b"a\rc"),
            other => panic!("{other:?}"),
        }
        assert_eq!(rf[1], Frame::Line("ping".to_string()));
    }

    #[test]
    fn response_writer_emits_exact_http() {
        let mut out = Vec::new();
        write_http_response(&mut out, 200, "42\n");
        assert_eq!(
            out,
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: 3\r\n\r\n42\n"
        );
    }
}
