//! # ddc-serve
//!
//! Zero-dependency network serving layer for the Dynamic Data Cube:
//! `std::net` TCP, an in-repo incremental HTTP/1.1 + line-protocol
//! parser, a worker pool on the `core::sync` facade, per-tenant
//! admission control, and a load generator for the serve-latency
//! bench. This is ROADMAP item #1 — the paper's range-sum engines
//! behind a wire so "millions of users" stops being hypothetical.
//!
//! Layering (each module only reaches down):
//!
//! * [`http`] — bytes → [`http::Frame`]s (incremental, allocation-
//!   bounded, pipelining-safe) and response serialization.
//! * [`protocol`] — frames → typed [`protocol::ServeRequest`]s; the
//!   protocol grammar lives here.
//! * [`backend`] — requests → engine calls with untrusted-input
//!   validation and typed backpressure ([`backend::BackendError`]).
//! * [`admission`] — per-tenant token-bucket rate policy.
//! * [`server`] — acceptor + worker pool tying the above to sockets.
//! * [`loadgen`] — pipelined mixed-traffic client emitting the
//!   `BENCH_serve_latency.json` perf-smoke report.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod admission;
pub mod backend;
pub mod http;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionConfig};
pub use backend::{
    BackendError, BackendHealth, DurableBackend, IngestOutcome, ServeBackend, ShardedBackend,
};
pub use http::{Frame, HttpRequest, ParseError, ParserConfig, RequestParser};
pub use protocol::{RequestError, ServeRequest};
pub use server::{Server, ServerConfig};
