//! Per-tenant admission control: a token bucket per tenant name.
//!
//! Each request costs one token. Buckets refill at
//! [`AdmissionConfig::rate_per_sec`] with a burst allowance of
//! [`AdmissionConfig::burst`]; an empty bucket means the tenant is over
//! its rate and the server answers 429 (`busy` on the line protocol).
//! Time is passed in by the caller as monotonic nanoseconds, so the
//! policy is purely arithmetic and deterministically testable.
//!
//! The tenant map is bounded: past [`AdmissionConfig::max_tenants`]
//! distinct names, further tenants share one overflow bucket — a
//! hostile client cycling tenant names cannot grow server memory.

use ddc_core::sync::Mutex;
use std::collections::HashMap;

/// Millitokens per token: buckets do integer arithmetic at 1/1000
/// granularity so slow refill rates still make progress.
const MILLI: u64 = 1_000;

/// Rate-limit policy. `rate_per_sec == 0` disables admission control.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Sustained requests per second allowed per tenant (0 = off).
    pub rate_per_sec: u64,
    /// Extra requests a tenant may burst above the sustained rate.
    pub burst: u64,
    /// Distinct tenant buckets tracked before falling back to one
    /// shared overflow bucket.
    pub max_tenants: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 0,
            burst: 256,
            max_tenants: 1024,
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct Bucket {
    /// Available millitokens.
    tokens: u64,
    /// Monotonic nanoseconds of the last refill.
    last_ns: u64,
}

/// The shared limiter. One instance per server; every worker thread
/// consults it before executing a request.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl Admission {
    /// A limiter enforcing `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured policy.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Charges one request to `tenant` at monotonic time `now_ns`.
    /// Returns `false` when the tenant is over its rate (the caller
    /// answers 429).
    pub fn admit(&self, tenant: &str, now_ns: u64) -> bool {
        if self.config.rate_per_sec == 0 {
            return true;
        }
        let cap_milli = self
            .config
            .rate_per_sec
            .saturating_add(self.config.burst)
            .saturating_mul(MILLI);
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(ddc_core::sync::PoisonError::into_inner);
        let key: &str = if buckets.len() >= self.config.max_tenants && !buckets.contains_key(tenant)
        {
            "\u{0}overflow"
        } else {
            tenant
        };
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: cap_milli,
            last_ns: now_ns,
        });
        let elapsed = now_ns.saturating_sub(bucket.last_ns);
        bucket.last_ns = now_ns;
        let refill = (elapsed as u128 * self.config.rate_per_sec as u128 * MILLI as u128
            / 1_000_000_000)
            .min(cap_milli as u128) as u64;
        bucket.tokens = bucket.tokens.saturating_add(refill).min(cap_milli);
        if bucket.tokens >= MILLI {
            bucket.tokens -= MILLI;
            true
        } else {
            false
        }
    }

    /// Number of distinct tenant buckets currently tracked.
    pub fn tracked_tenants(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(ddc_core::sync::PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    fn limiter(rate: u64, burst: u64) -> Admission {
        Admission::new(AdmissionConfig {
            rate_per_sec: rate,
            burst,
            max_tenants: 4,
        })
    }

    #[test]
    fn zero_rate_admits_everything() {
        let a = Admission::new(AdmissionConfig::default());
        for i in 0..10_000 {
            assert!(a.admit("anyone", i));
        }
        assert_eq!(a.tracked_tenants(), 0);
    }

    #[test]
    fn burst_then_sustained_rate() {
        let a = limiter(10, 5);
        // Full bucket: 15 requests pass, the 16th is rejected.
        let admitted = (0..20).filter(|_| a.admit("t", 0)).count();
        assert_eq!(admitted, 15);
        // One second later exactly `rate` more tokens exist.
        let refilled = (0..20).filter(|_| a.admit("t", SEC)).count();
        assert_eq!(refilled, 10);
        // A quarter second refills a quarter of the rate.
        let quarter = (0..20).filter(|_| a.admit("t", SEC + SEC / 4)).count();
        assert_eq!(quarter, 2);
    }

    #[test]
    fn tenants_are_isolated() {
        let a = limiter(1, 0);
        assert!(a.admit("a", 0));
        assert!(!a.admit("a", 0));
        assert!(a.admit("b", 0), "tenant b has its own bucket");
    }

    #[test]
    fn tenant_map_is_bounded_by_overflow_bucket() {
        let a = limiter(1, 0);
        for name in ["a", "b", "c", "d", "e", "f", "g"] {
            a.admit(name, 0);
        }
        // 4 named buckets + 1 shared overflow bucket.
        assert!(a.tracked_tenants() <= 5);
        // Overflow tenants share fate: e consumed the overflow token,
        // so z is rejected too.
        assert!(!a.admit("z", 0));
    }

    #[test]
    fn clock_going_backwards_is_tolerated() {
        let a = limiter(5, 0);
        assert!(a.admit("t", SEC));
        assert!(a.admit("t", 0), "stale timestamp must not panic or refund");
    }
}
