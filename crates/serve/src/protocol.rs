//! The typed request language served over both wire syntaxes.
//!
//! ## Line protocol (newline-delimited, lowercase commands)
//!
//! ```text
//! request   = command LF | command CRLF
//! command   = "u " point " " int          ; point update (delta)
//!           | "q " point " " point        ; range sum over [lo, hi]
//!           | "p " point                  ; prefix sum at point
//!           | "t " tenant                 ; bind this connection to a tenant
//!           | "ping"                      ; liveness probe
//! point     = int *("," int)              ; one coordinate per dimension
//! tenant    = 1*32(ALPHA / DIGIT / "-" / "_")
//! ```
//!
//! Responses are one line each, in request order: `ok` (update), the
//! decimal sum (query/prefix), `pong`, `busy <detail>` (backpressure,
//! the line-protocol spelling of HTTP 429), or `err <detail>`.
//!
//! ## HTTP endpoints
//!
//! ```text
//! POST /ingest             body: one "point SP delta" line per update
//! GET  /query?lo=P&hi=P    range sum (P = comma-separated ints)
//! GET  /prefix?at=P        prefix sum
//! GET  /metrics            Prometheus text (core::obs::prometheus_text)
//! GET  /healthz            liveness probe
//! ```
//!
//! The tenant is bound per request with an `X-Ddc-Tenant` header (or
//! per connection with the `t` command; header wins for HTTP).

use crate::http::{Frame, HttpRequest};

/// A typed request decoded from a [`Frame`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeRequest {
    /// Point update `point += delta`.
    Update {
        /// Cube coordinates.
        point: Vec<i64>,
        /// Signed delta.
        delta: i64,
    },
    /// Batched updates (the HTTP ingest body).
    Ingest(Vec<(Vec<i64>, i64)>),
    /// Range sum over the box `[lo, hi]` (inclusive corners).
    Query {
        /// Low corner.
        lo: Vec<i64>,
        /// High corner.
        hi: Vec<i64>,
    },
    /// Prefix sum at `point`.
    Prefix(Vec<i64>),
    /// Bind the connection to a tenant (line protocol only).
    Tenant(String),
    /// Liveness probe.
    Ping,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Health,
}

/// Why a frame failed to decode into a [`ServeRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// Unknown line command or HTTP route. `.0` is the offending token.
    Unknown(String),
    /// A coordinate/delta token failed to parse as a decimal integer.
    BadNumber(String),
    /// Wrong number of arguments / query parameters.
    BadShape(String),
    /// Tenant names are 1–32 chars of `[A-Za-z0-9_-]`.
    BadTenant(String),
    /// HTTP method not allowed on this route.
    MethodNotAllowed(String),
}

impl RequestError {
    /// HTTP status for the error response.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Unknown(_) => 404,
            RequestError::MethodNotAllowed(_) => 405,
            _ => 400,
        }
    }

    /// One-line detail used in both response syntaxes.
    pub fn detail(&self) -> String {
        match self {
            RequestError::Unknown(what) => format!("unknown request {what:?}"),
            RequestError::BadNumber(tok) => format!("bad integer {tok:?}"),
            RequestError::BadShape(msg) => msg.clone(),
            RequestError::BadTenant(t) => format!("bad tenant name {t:?}"),
            RequestError::MethodNotAllowed(m) => format!("method {m} not allowed"),
        }
    }
}

fn parse_point(text: &str) -> Result<Vec<i64>, RequestError> {
    if text.is_empty() {
        return Err(RequestError::BadShape("empty point".to_string()));
    }
    text.split(',')
        .map(|tok| {
            let tok = tok.trim();
            if tok.is_empty() || tok.bytes().any(|b| !b.is_ascii_digit() && b != b'-') {
                return Err(RequestError::BadNumber(tok.to_string()));
            }
            tok.parse::<i64>()
                .map_err(|_| RequestError::BadNumber(tok.to_string()))
        })
        .collect()
}

fn parse_int(tok: &str) -> Result<i64, RequestError> {
    if tok.is_empty() || tok.bytes().any(|b| !b.is_ascii_digit() && b != b'-') {
        return Err(RequestError::BadNumber(tok.to_string()));
    }
    tok.parse::<i64>()
        .map_err(|_| RequestError::BadNumber(tok.to_string()))
}

/// `true` for a well-formed tenant name.
pub fn valid_tenant(name: &str) -> bool {
    (1..=32).contains(&name.len())
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// Decodes one line-protocol command.
pub fn decode_line(line: &str) -> Result<ServeRequest, RequestError> {
    let line = line.trim_matches([' ', '\t']);
    let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
    match cmd {
        "ping" if rest.is_empty() => Ok(ServeRequest::Ping),
        "u" => {
            let (point, delta) = rest
                .rsplit_once(' ')
                .ok_or_else(|| RequestError::BadShape("usage: u POINT DELTA".to_string()))?;
            Ok(ServeRequest::Update {
                point: parse_point(point.trim())?,
                delta: parse_int(delta.trim())?,
            })
        }
        "q" => {
            let (lo, hi) = rest
                .split_once(' ')
                .ok_or_else(|| RequestError::BadShape("usage: q LO HI".to_string()))?;
            let (lo, hi) = (parse_point(lo.trim())?, parse_point(hi.trim())?);
            if lo.len() != hi.len() {
                return Err(RequestError::BadShape(format!(
                    "corner ranks differ: {} vs {}",
                    lo.len(),
                    hi.len()
                )));
            }
            Ok(ServeRequest::Query { lo, hi })
        }
        "p" => Ok(ServeRequest::Prefix(parse_point(rest.trim())?)),
        "t" => {
            let name = rest.trim();
            if !valid_tenant(name) {
                return Err(RequestError::BadTenant(name.to_string()));
            }
            Ok(ServeRequest::Tenant(name.to_string()))
        }
        other => Err(RequestError::Unknown(other.to_string())),
    }
}

/// Parses an ingest body: one `point SP delta` line per update, blank
/// lines skipped. The whole body must parse for any of it to apply.
pub fn decode_ingest(body: &[u8]) -> Result<Vec<(Vec<i64>, i64)>, RequestError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| RequestError::BadShape("ingest body is not UTF-8".to_string()))?;
    let mut updates = Vec::new();
    for raw in text.lines() {
        let line = raw.trim_matches([' ', '\t', '\r']);
        if line.is_empty() {
            continue;
        }
        let (point, delta) = line.rsplit_once(' ').ok_or_else(|| {
            RequestError::BadShape(format!("ingest line {line:?}: expected POINT DELTA"))
        })?;
        updates.push((parse_point(point.trim())?, parse_int(delta.trim())?));
    }
    Ok(updates)
}

/// Finds `key=value` in a query string (first match).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Decodes one HTTP request into a typed request.
pub fn decode_http(req: &HttpRequest) -> Result<ServeRequest, RequestError> {
    let (path, query) = req.path_query();
    match (req.method.as_str(), path) {
        ("POST", "/ingest") => Ok(ServeRequest::Ingest(decode_ingest(&req.body)?)),
        ("GET", "/query") => {
            let lo = parse_point(
                query_param(query, "lo")
                    .ok_or_else(|| RequestError::BadShape("missing lo=".to_string()))?,
            )?;
            let hi = parse_point(
                query_param(query, "hi")
                    .ok_or_else(|| RequestError::BadShape("missing hi=".to_string()))?,
            )?;
            if lo.len() != hi.len() {
                return Err(RequestError::BadShape(format!(
                    "corner ranks differ: {} vs {}",
                    lo.len(),
                    hi.len()
                )));
            }
            Ok(ServeRequest::Query { lo, hi })
        }
        ("GET", "/prefix") => Ok(ServeRequest::Prefix(parse_point(
            query_param(query, "at")
                .ok_or_else(|| RequestError::BadShape("missing at=".to_string()))?,
        )?)),
        ("GET", "/metrics") => Ok(ServeRequest::Metrics),
        ("GET", "/healthz") => Ok(ServeRequest::Health),
        ("GET", "/ingest")
        | ("POST", "/query")
        | ("POST", "/prefix")
        | ("POST", "/metrics")
        | ("POST", "/healthz") => Err(RequestError::MethodNotAllowed(req.method.clone())),
        _ => Err(RequestError::Unknown(format!("{} {}", req.method, path))),
    }
}

/// Decodes any frame.
pub fn decode(frame: &Frame) -> Result<ServeRequest, RequestError> {
    match frame {
        Frame::Line(line) => decode_line(line),
        Frame::Http(req) => decode_http(req),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_commands_round_trip() {
        assert_eq!(
            decode_line("u 3,5 -7").expect("update"),
            ServeRequest::Update {
                point: vec![3, 5],
                delta: -7
            }
        );
        assert_eq!(
            decode_line("q 0,0 31,15").expect("query"),
            ServeRequest::Query {
                lo: vec![0, 0],
                hi: vec![31, 15]
            }
        );
        assert_eq!(
            decode_line("p 9,9").expect("prefix"),
            ServeRequest::Prefix(vec![9, 9])
        );
        assert_eq!(decode_line("ping").expect("ping"), ServeRequest::Ping);
        assert_eq!(
            decode_line("t team-a").expect("tenant"),
            ServeRequest::Tenant("team-a".to_string())
        );
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(matches!(
            decode_line("u 1,2"),
            Err(RequestError::BadShape(_))
        ));
        assert!(matches!(
            decode_line("u 1,x 3"),
            Err(RequestError::BadNumber(_))
        ));
        assert!(matches!(
            decode_line("q 1,2 3"),
            Err(RequestError::BadShape(_))
        ));
        assert!(matches!(decode_line("zap"), Err(RequestError::Unknown(_))));
        assert!(matches!(
            decode_line("t bad tenant!"),
            Err(RequestError::BadTenant(_))
        ));
        assert_eq!(decode_line("zap").map_err(|e| e.status()), Err(404));
    }

    #[test]
    fn ingest_body_parses_all_or_nothing() {
        let ok = decode_ingest(b"0,0 5\n1,1 -2\n\n3,3 1\n").expect("parses");
        assert_eq!(ok.len(), 3);
        assert_eq!(ok[1], (vec![1, 1], -2));
        assert!(decode_ingest(b"0,0 5\n1,1 x\n").is_err());
        assert!(decode_ingest(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn http_routes_decode() {
        let req = |method: &str, target: &str, body: &[u8]| HttpRequest {
            method: method.to_string(),
            target: target.to_string(),
            minor_version: 1,
            headers: Vec::new(),
            body: body.to_vec(),
        };
        assert_eq!(
            decode_http(&req("GET", "/query?lo=1,2&hi=3,4", b"")).expect("query"),
            ServeRequest::Query {
                lo: vec![1, 2],
                hi: vec![3, 4]
            }
        );
        assert_eq!(
            decode_http(&req("GET", "/prefix?at=7,8", b"")).expect("prefix"),
            ServeRequest::Prefix(vec![7, 8])
        );
        assert_eq!(
            decode_http(&req("POST", "/ingest", b"1,1 4\n")).expect("ingest"),
            ServeRequest::Ingest(vec![(vec![1, 1], 4)])
        );
        assert_eq!(
            decode_http(&req("GET", "/metrics", b"")).expect("metrics"),
            ServeRequest::Metrics
        );
        assert_eq!(
            decode_http(&req("GET", "/nope", b"")).map_err(|e| e.status()),
            Err(404)
        );
        assert_eq!(
            decode_http(&req("POST", "/query", b"")).map_err(|e| e.status()),
            Err(405)
        );
        assert_eq!(
            decode_http(&req("GET", "/query?lo=1,2", b"")).map_err(|e| e.status()),
            Err(400)
        );
    }
}
