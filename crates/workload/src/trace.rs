//! Operation traces: record, serialize, and replay update/query streams.
//!
//! A trace pins an exact workload to a file so experiments are replayable
//! across engines and machines — the harness equivalent of the paper's
//! "think Internet commerce" update streams (§1). The format is
//! line-oriented text:
//!
//! ```text
//! # comment
//! shape 64 64
//! U 3 4 10          # add 10 to cell (3, 4)
//! Q 0 0 5 5         # range sum over [0..=5] × [0..=5]
//! ```

use crate::rng::DdcRng;
use ddc_array::{RangeSumEngine, Region, Shape};

/// One traced operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Point update: add `delta` at `point`.
    Update {
        /// Target cell.
        point: Vec<usize>,
        /// Added value.
        delta: i64,
    },
    /// Range-sum query over `[lo, hi]`.
    Query {
        /// Inclusive lower corner.
        lo: Vec<usize>,
        /// Inclusive upper corner.
        hi: Vec<usize>,
    },
}

/// A replayable workload over a fixed cube shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Cube shape the operations target.
    pub dims: Vec<usize>,
    /// Operations in order.
    pub ops: Vec<TraceOp>,
}

/// Result of replaying a trace against one engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayResult {
    /// Wrapping sum of every query answer — an engine-order-independent
    /// checksum; all correct engines produce the same value.
    pub checksum: i64,
    /// Number of updates applied.
    pub updates: usize,
    /// Number of queries answered.
    pub queries: usize,
}

impl Trace {
    /// Generates a mixed workload: `ops` operations, a `update_fraction`
    /// of which are uniform point updates, the rest uniform range queries.
    pub fn generate(shape: &Shape, ops: usize, update_fraction: f64, rng: &mut DdcRng) -> Self {
        assert!((0.0..=1.0).contains(&update_fraction));
        let dims = shape.dims().to_vec();
        let ops = (0..ops)
            .map(|_| {
                if rng.gen_bool(update_fraction) {
                    TraceOp::Update {
                        point: dims.iter().map(|&n| rng.gen_range(0..n)).collect(),
                        delta: rng.gen_range(-100..=100),
                    }
                } else {
                    let (lo, hi): (Vec<usize>, Vec<usize>) = dims
                        .iter()
                        .map(|&n| {
                            let a = rng.gen_range(0..n);
                            let b = rng.gen_range(0..n);
                            (a.min(b), a.max(b))
                        })
                        .unzip();
                    TraceOp::Query { lo, hi }
                }
            })
            .collect();
        Self { dims, ops }
    }

    /// Serializes to the line format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# ddc trace\n");
        out.push_str("shape");
        for &n in &self.dims {
            out.push_str(&format!(" {n}"));
        }
        out.push('\n');
        for op in &self.ops {
            match op {
                TraceOp::Update { point, delta } => {
                    out.push('U');
                    for &c in point {
                        out.push_str(&format!(" {c}"));
                    }
                    out.push_str(&format!(" {delta}\n"));
                }
                TraceOp::Query { lo, hi } => {
                    out.push('Q');
                    for &c in lo.iter().chain(hi.iter()) {
                        out.push_str(&format!(" {c}"));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parses the line format.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut dims: Option<Vec<usize>> = None;
        let mut ops = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let tag = it.next().expect("non-empty");
            let nums: Result<Vec<i64>, _> = it.map(str::parse::<i64>).collect();
            let nums = nums.map_err(|e| format!("line {}: {e}", no + 1))?;
            match tag {
                "shape" => {
                    if nums.is_empty() || nums.iter().any(|&n| n <= 0) {
                        return Err(format!("line {}: bad shape", no + 1));
                    }
                    let parsed: Vec<usize> = nums.iter().map(|&n| n as usize).collect();
                    Shape::try_new(&parsed)
                        .map_err(|e| format!("line {}: bad shape: {e}", no + 1))?;
                    dims = Some(parsed);
                }
                "U" => {
                    let d = dims.as_ref().ok_or("U before shape")?.len();
                    if nums.len() != d + 1 {
                        return Err(format!("line {}: U wants {d} coords + delta", no + 1));
                    }
                    let point = nums[..d].iter().map(|&c| c as usize).collect();
                    ops.push(TraceOp::Update {
                        point,
                        delta: nums[d],
                    });
                }
                "Q" => {
                    let d = dims.as_ref().ok_or("Q before shape")?.len();
                    if nums.len() != 2 * d {
                        return Err(format!("line {}: Q wants 2·{d} coords", no + 1));
                    }
                    let lo: Vec<usize> = nums[..d].iter().map(|&c| c as usize).collect();
                    let hi: Vec<usize> = nums[d..].iter().map(|&c| c as usize).collect();
                    if lo.iter().zip(&hi).any(|(l, h)| l > h) {
                        return Err(format!("line {}: inverted query bounds", no + 1));
                    }
                    ops.push(TraceOp::Query { lo, hi });
                }
                other => return Err(format!("line {}: unknown tag '{other}'", no + 1)),
            }
        }
        Ok(Self {
            dims: dims.ok_or("missing shape line")?,
            ops,
        })
    }

    /// The cube shape.
    pub fn shape(&self) -> Shape {
        Shape::new(&self.dims)
    }

    /// Replays against an engine, returning the query checksum.
    pub fn replay(&self, engine: &mut dyn RangeSumEngine<i64>) -> ReplayResult {
        assert_eq!(
            engine.shape().dims(),
            &self.dims[..],
            "engine shape mismatch"
        );
        let mut checksum = 0i64;
        let mut updates = 0;
        let mut queries = 0;
        for op in &self.ops {
            match op {
                TraceOp::Update { point, delta } => {
                    engine.apply_delta(point, *delta);
                    updates += 1;
                }
                TraceOp::Query { lo, hi } => {
                    checksum = checksum.wrapping_add(engine.range_sum(&Region::new(lo, hi)));
                    queries += 1;
                }
            }
        }
        ReplayResult {
            checksum,
            updates,
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::rng;

    #[test]
    fn text_roundtrip() {
        let t = Trace::generate(&Shape::new(&[16, 8]), 50, 0.6, &mut rng(4));
        let text = t.to_text();
        let parsed = Trace::parse(&text).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(Trace::parse("U 1 2 3")
            .unwrap_err()
            .contains("before shape"));
        assert!(Trace::parse("shape 4\nU 1").unwrap_err().contains("wants"));
        assert!(Trace::parse("shape 4\nQ 3 1")
            .unwrap_err()
            .contains("inverted"));
        assert!(Trace::parse("shape 0").unwrap_err().contains("bad shape"));
        assert!(Trace::parse("shape 4\nX 1")
            .unwrap_err()
            .contains("unknown tag"));
        assert!(Trace::parse("# only comments")
            .unwrap_err()
            .contains("missing shape"));
    }

    #[test]
    fn handwritten_trace() {
        let t = Trace::parse("shape 4 4\nU 1 1 5\nU 0 3 2\nQ 0 0 3 3\nQ 1 1 1 1\n").unwrap();
        assert_eq!(t.ops.len(), 4);
        assert_eq!(
            t.ops[0],
            TraceOp::Update {
                point: vec![1, 1],
                delta: 5
            }
        );
    }

    #[test]
    fn replay_checksum_is_engine_independent() {
        use ddc_array::NdArray;
        let t = Trace::parse("shape 4 4\nU 1 1 5\nQ 0 0 3 3\nU 1 1 -2\nQ 1 1 2 2\n").unwrap();
        // Hand-computed: query1 sees 5; query2 sees 3 → checksum 8.
        struct Brute {
            a: NdArray<i64>,
            counter: ddc_array::OpCounter,
        }
        impl RangeSumEngine<i64> for Brute {
            fn name(&self) -> &'static str {
                "brute"
            }
            fn shape(&self) -> &Shape {
                self.a.shape()
            }
            fn prefix_sum(&self, p: &[usize]) -> i64 {
                self.a.prefix_sum(p)
            }
            fn apply_delta(&mut self, p: &[usize], delta: i64) {
                self.a.add_assign(p, delta);
            }
            fn counter(&self) -> &ddc_array::OpCounter {
                &self.counter
            }
            fn heap_bytes(&self) -> usize {
                0
            }
        }
        let mut e = Brute {
            a: NdArray::zeroed(Shape::new(&[4, 4])),
            counter: ddc_array::OpCounter::new(),
        };
        let r = t.replay(&mut e);
        assert_eq!(
            r,
            ReplayResult {
                checksum: 8,
                updates: 2,
                queries: 2
            }
        );
    }
}
