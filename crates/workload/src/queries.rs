//! Range-query workload generators.

use crate::rng::DdcRng;
use ddc_array::{Region, Shape};

/// Uniformly random hyper-rectangles within `shape`.
pub fn uniform_regions(shape: &Shape, count: usize, rng: &mut DdcRng) -> Vec<Region> {
    (0..count)
        .map(|_| {
            let mut lo = Vec::with_capacity(shape.ndim());
            let mut hi = Vec::with_capacity(shape.ndim());
            for &n in shape.dims() {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            Region::new(&lo, &hi)
        })
        .collect()
}

/// Fixed-size sliding windows (`extent` cells per dimension) at random
/// anchors — the "sales between ages 27 and 45 over 25 days" query shape.
pub fn window_regions(shape: &Shape, extent: usize, count: usize, rng: &mut DdcRng) -> Vec<Region> {
    assert!(shape.dims().iter().all(|&n| n >= extent && extent >= 1));
    (0..count)
        .map(|_| {
            let lo: Vec<usize> = shape
                .dims()
                .iter()
                .map(|&n| rng.gen_range(0..=(n - extent)))
                .collect();
            let hi: Vec<usize> = lo.iter().map(|&l| l + extent - 1).collect();
            Region::new(&lo, &hi)
        })
        .collect()
}

/// Random prefix regions (anchored at the origin) — the primitive every
/// engine answers natively.
pub fn prefix_regions(shape: &Shape, count: usize, rng: &mut DdcRng) -> Vec<Region> {
    (0..count)
        .map(|_| {
            let hi: Vec<usize> = shape.dims().iter().map(|&n| rng.gen_range(0..n)).collect();
            Region::prefix(&hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::rng;

    #[test]
    fn uniform_regions_in_bounds() {
        let s = Shape::new(&[17, 9]);
        for r in uniform_regions(&s, 100, &mut rng(1)) {
            r.check_within(&s);
        }
    }

    #[test]
    fn windows_have_exact_extent() {
        let s = Shape::new(&[32, 32]);
        for r in window_regions(&s, 5, 50, &mut rng(2)) {
            r.check_within(&s);
            assert_eq!(r.extent(0), 5);
            assert_eq!(r.extent(1), 5);
        }
    }

    #[test]
    fn prefixes_start_at_origin() {
        let s = Shape::new(&[8, 8, 8]);
        for r in prefix_regions(&s, 30, &mut rng(3)) {
            assert_eq!(r.lo(), &[0, 0, 0]);
            r.check_within(&s);
        }
    }
}
