//! Synthetic data generators for the paper's workload families.
//!
//! Section 5 motivates three data shapes: dense business cubes (the §1
//! SALES examples), *clustered* data ("methane gas production is largely
//! concentrated around agricultural and industrial centers"), and
//! *sparse, unbounded* data (star catalogs growing in every direction).
//! This module produces all three deterministically from a seed.

use crate::rng::DdcRng;
use ddc_array::{NdArray, Shape};

/// Deterministic RNG for reproducible experiments.
pub fn rng(seed: u64) -> DdcRng {
    DdcRng::seed_from_u64(seed)
}

/// A dense cube with every cell drawn uniformly from `lo..=hi`.
pub fn uniform_array(shape: &Shape, lo: i64, hi: i64, rng: &mut DdcRng) -> NdArray<i64> {
    NdArray::from_fn(shape.clone(), |_| rng.gen_range(lo..=hi))
}

/// A cube where each cell is populated with probability `density` (drawn
/// from `1..=max_value`), zero otherwise — the §5 sparse regime.
pub fn sparse_array(shape: &Shape, density: f64, max_value: i64, rng: &mut DdcRng) -> NdArray<i64> {
    assert!((0.0..=1.0).contains(&density));
    NdArray::from_fn(shape.clone(), |_| {
        if rng.gen_bool(density) {
            rng.gen_range(1..=max_value)
        } else {
            0
        }
    })
}

/// One Gaussian cluster center with its spread.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Center coordinates (signed: clusters may sit anywhere).
    pub center: Vec<i64>,
    /// Standard deviation of point offsets per dimension.
    pub spread: f64,
}

/// Generates `n_clusters` random cluster centers inside `[-extent, extent]^d`.
pub fn random_clusters(
    d: usize,
    n_clusters: usize,
    extent: i64,
    spread: f64,
    rng: &mut DdcRng,
) -> Vec<Cluster> {
    (0..n_clusters)
        .map(|_| Cluster {
            center: (0..d).map(|_| rng.gen_range(-extent..=extent)).collect(),
            spread,
        })
        .collect()
}

/// Draws `n_points` measurements around the given clusters — the §5
/// EOSDIS-style geographically clustered workload. Returns signed
/// coordinates (suitable for `GrowableCube`) with values in `1..=max_value`.
pub fn clustered_points(
    clusters: &[Cluster],
    n_points: usize,
    max_value: i64,
    rng: &mut DdcRng,
) -> Vec<(Vec<i64>, i64)> {
    assert!(!clusters.is_empty());
    (0..n_points)
        .map(|_| {
            let c = &clusters[rng.gen_range(0..clusters.len())];
            let p: Vec<i64> = c
                .center
                .iter()
                .map(|&m| m + gaussian(rng, c.spread).round() as i64)
                .collect();
            (p, rng.gen_range(1..=max_value))
        })
        .collect()
}

/// Standard normal sample scaled by `sigma` (Box–Muller; avoids external
/// distribution crates).
fn gaussian(rng: &mut DdcRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Append-style time-series points: each record lands at the next time
/// coordinate (dimension 0 strictly increasing) with the other
/// coordinates drawn uniformly from `[-extent, extent]`. This is the
/// append-only growth pattern the paper contrasts with any-direction
/// growth (§5: "rather than in a single dimension as with append-only
/// databases").
pub fn append_series(
    d: usize,
    n_points: usize,
    extent: i64,
    max_value: i64,
    rng: &mut DdcRng,
) -> Vec<(Vec<i64>, i64)> {
    assert!(d >= 1);
    (0..n_points)
        .map(|t| {
            let mut p = Vec::with_capacity(d);
            p.push(t as i64);
            for _ in 1..d {
                p.push(rng.gen_range(-extent..=extent));
            }
            (p, rng.gen_range(1..=max_value))
        })
        .collect()
}

/// Point sources coming on-line over time (§5: "new cattle ranches or
/// factories"): starts from `initial` clusters and adds a new cluster
/// every `every` points, each in a previously untouched direction
/// (alternating quadrant signs, doubling distance).
pub fn emerging_sources(
    d: usize,
    n_points: usize,
    initial: usize,
    every: usize,
    spread: f64,
    rng: &mut DdcRng,
) -> Vec<(Vec<i64>, i64)> {
    assert!(initial >= 1 && every >= 1);
    let mut clusters = random_clusters(d, initial, 100, spread, rng);
    let mut out = Vec::with_capacity(n_points);
    for i in 0..n_points {
        if i > 0 && i % every == 0 {
            // A new source appears farther out, in a rotating direction.
            let wave = i / every;
            let dist = 200i64 << wave.min(20);
            let center: Vec<i64> = (0..d)
                .map(|axis| if (wave >> axis) & 1 == 1 { -dist } else { dist })
                .collect();
            clusters.push(Cluster { center, spread });
        }
        let c = &clusters[rng.gen_range(0..clusters.len())];
        let p: Vec<i64> = c
            .center
            .iter()
            .map(|&m| m + gaussian(rng, c.spread).round() as i64)
            .collect();
        out.push((p, rng.gen_range(1..=100)));
    }
    out
}

/// Zipf-distributed index in `0..n` with exponent `theta` — hot-spot
/// update targets (a small set of cells receives most updates).
pub fn zipf_index(n: usize, theta: f64, rng: &mut DdcRng) -> usize {
    debug_assert!(n > 0);
    // Inverse-CDF by rejection-free approximation (Gray et al. 1994 style
    // would precompute; n here is small enough for direct power draw).
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let x = (n as f64).powf(1.0 - u.powf(1.0 / (1.0 + theta)));
    (x as usize).min(n - 1)
}

/// A stream of point updates: `(cell, delta)` pairs.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    /// The updates in application order.
    pub updates: Vec<(Vec<usize>, i64)>,
}

/// Uniformly random updates over `shape`.
pub fn uniform_updates(shape: &Shape, count: usize, rng: &mut DdcRng) -> UpdateStream {
    let updates = (0..count)
        .map(|_| {
            let p: Vec<usize> = shape.dims().iter().map(|&n| rng.gen_range(0..n)).collect();
            (p, rng.gen_range(-100..=100))
        })
        .collect();
    UpdateStream { updates }
}

/// Zipf-skewed updates: coordinates concentrate near the origin, the
/// worst-case corner for the prefix-sum cascade (Figure 5).
pub fn skewed_updates(shape: &Shape, count: usize, theta: f64, rng: &mut DdcRng) -> UpdateStream {
    let updates = (0..count)
        .map(|_| {
            let p: Vec<usize> = shape
                .dims()
                .iter()
                .map(|&n| zipf_index(n, theta, rng))
                .collect();
            (p, rng.gen_range(-100..=100))
        })
        .collect();
    UpdateStream { updates }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let s = Shape::new(&[8, 8]);
        let a = uniform_array(&s, -5, 5, &mut rng(42));
        let b = uniform_array(&s, -5, 5, &mut rng(42));
        assert_eq!(a, b);
        let c = uniform_array(&s, -5, 5, &mut rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let a = uniform_array(&Shape::new(&[16, 16]), 1, 3, &mut rng(1));
        assert!(a.as_slice().iter().all(|&v| (1..=3).contains(&v)));
    }

    #[test]
    fn sparse_density_is_respected() {
        let a = sparse_array(&Shape::new(&[64, 64]), 0.1, 100, &mut rng(7));
        let pop = a.populated_cells();
        // 4096 cells at 10% → expect ~410; allow generous tolerance.
        assert!((200..650).contains(&pop), "populated {pop}");
    }

    #[test]
    fn clustered_points_concentrate() {
        let clusters = random_clusters(2, 3, 1000, 10.0, &mut rng(5));
        let pts = clustered_points(&clusters, 500, 50, &mut rng(6));
        assert_eq!(pts.len(), 500);
        // Every point lies within 8σ of some center.
        for (p, v) in &pts {
            assert!(*v >= 1 && *v <= 50);
            let near = clusters.iter().any(|c| {
                c.center
                    .iter()
                    .zip(p.iter())
                    .all(|(&m, &x)| (x - m).abs() as f64 <= 8.0 * c.spread)
            });
            assert!(near, "{p:?} not near any cluster");
        }
    }

    #[test]
    fn append_series_is_monotone_in_time() {
        let pts = append_series(3, 100, 50, 10, &mut rng(8));
        assert_eq!(pts.len(), 100);
        for (t, (p, v)) in pts.iter().enumerate() {
            assert_eq!(p[0], t as i64);
            assert!(p[1].abs() <= 50 && p[2].abs() <= 50);
            assert!((1..=10).contains(v));
        }
    }

    #[test]
    fn emerging_sources_spread_outward() {
        let pts = emerging_sources(2, 400, 2, 100, 5.0, &mut rng(9));
        assert_eq!(pts.len(), 400);
        // Later points reach strictly farther from the origin than the
        // initial clusters can.
        let early_max = pts[..100]
            .iter()
            .map(|(p, _)| p[0].abs().max(p[1].abs()))
            .max()
            .unwrap();
        let late_max = pts[300..]
            .iter()
            .map(|(p, _)| p[0].abs().max(p[1].abs()))
            .max()
            .unwrap();
        assert!(late_max > early_max, "{late_max} !> {early_max}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut r = rng(11);
        let n = 1000;
        let draws: Vec<usize> = (0..5000).map(|_| zipf_index(n, 1.0, &mut r)).collect();
        assert!(draws.iter().all(|&i| i < n));
        let low = draws.iter().filter(|&&i| i < 10).count();
        let high = draws.iter().filter(|&&i| i >= 500).count();
        assert!(low > high, "low {low} vs high {high}");
    }

    #[test]
    fn update_streams_are_in_bounds() {
        let s = Shape::new(&[10, 20, 30]);
        for stream in [
            uniform_updates(&s, 200, &mut rng(3)),
            skewed_updates(&s, 200, 0.8, &mut rng(4)),
        ] {
            assert_eq!(stream.updates.len(), 200);
            for (p, _) in &stream.updates {
                assert!(s.contains(p), "{p:?}");
            }
        }
    }
}
