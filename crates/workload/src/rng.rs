//! A small deterministic pseudo-random generator.
//!
//! The workspace is hermetic (no external crates), so instead of `rand`
//! we ship a seeded xorshift-family generator. It is emphatically *not*
//! cryptographic; it exists to make experiments and property tests
//! reproducible from a single `u64` seed.

use std::ops::{Range, RangeInclusive};

/// Deterministic PRNG: splitmix64-seeded xorshift64*.
///
/// The splitmix64 finalizer turns any seed (including 0) into a
/// well-mixed non-zero state, and xorshift64* provides a cheap stream
/// with good equidistribution for workload-generation purposes.
#[derive(Clone, Debug)]
pub struct DdcRng {
    state: u64,
}

impl DdcRng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 finalizer; maps 0 somewhere useful and decorrelates
        // consecutive seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 } // xorshift state must be non-zero
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range; see [`SampleRange`] for supported types.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Uniform `u64` in `[0, span)` by Lemire's widening multiply.
    /// The slight modulo bias is ≤ span/2^64 — irrelevant for workloads.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Ranges [`DdcRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from `self`.
    fn sample(self, rng: &mut DdcRng) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut DdcRng) -> usize {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample(self, rng: &mut DdcRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample(self, rng: &mut DdcRng) -> i64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl SampleRange<i64> for RangeInclusive<i64> {
    fn sample(self, rng: &mut DdcRng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(rng.below(span.wrapping_add(1).max(1)) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut DdcRng) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = DdcRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DdcRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = DdcRng::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = DdcRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn covers_whole_range() {
        let mut r = DdcRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = DdcRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2600..3400).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = DdcRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
