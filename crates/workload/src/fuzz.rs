//! Differential-check traces: the op model behind the `ddc-check` fuzzer.
//!
//! A [`CheckTrace`] is richer than the plain benchmark [`crate::Trace`]:
//! coordinates are *signed* logical positions inside a covered box that
//! can **grow in any direction** mid-trace (the paper's §5 star-catalog
//! story), and the op set includes persistence round-trips and shard
//! group-commit barriers. The format stays line-oriented text so a
//! shrunk repro is diffable and replayable by hand:
//!
//! ```text
//! # ddc check trace
//! shape 4 4          # initial covered box extent
//! origin 0 -2        # logical low corner of the box (optional, default 0)
//! U 1 2 5            # add 5 at cell (1, 2)
//! S 1 2 9            # set cell (1, 2) to 9 (answer compared)
//! Q 0 0 3 3          # range sum over [0..=3] × [0..=3] (answer compared)
//! C 1 2              # read one cell (answer compared)
//! G 0 2 low          # grow axis 0 by 2 cells at the low end
//! R                  # save/load round-trip (engines that persist)
//! F                  # flush / shard group commit barrier
//! ```
//!
//! The module also hosts the **trace shrinker**: delta debugging over the
//! op list followed by per-op coordinate/value minimization, driven by an
//! arbitrary "still failing?" predicate so the caller (the differential
//! runner in `ddc-check`) decides what failure means.

use crate::rng::DdcRng;
use ddc_array::Shape;

/// One operation of a differential-check trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOp {
    /// Add `delta` at the signed logical `point`.
    Update {
        /// Target cell.
        point: Vec<i64>,
        /// Added value.
        delta: i64,
    },
    /// Set the cell to `value`; the returned previous value is compared.
    Set {
        /// Target cell.
        point: Vec<i64>,
        /// New value.
        value: i64,
    },
    /// Range sum over the closed logical box `[lo, hi]`; compared.
    Query {
        /// Inclusive lower corner.
        lo: Vec<i64>,
        /// Inclusive upper corner.
        hi: Vec<i64>,
    },
    /// Read one cell; compared.
    Cell {
        /// Target cell.
        point: Vec<i64>,
    },
    /// Grow the covered box by `amount` cells along `axis`, at the low
    /// end when `low` (subsequent ops may use the enlarged box).
    Grow {
        /// Axis to enlarge.
        axis: usize,
        /// Number of cells added.
        amount: usize,
        /// Grow toward negative coordinates when true.
        low: bool,
    },
    /// Save/load round-trip for engines that persist; a round-trip error
    /// or any post-round-trip divergence is a failure.
    SaveLoad,
    /// Flush barrier: engines with write queues must group-commit.
    Flush,
    /// Simulated process kill for engines with a durability story: drop
    /// all volatile state and recover from snapshot + WAL. Acknowledged
    /// ops must survive; a recovery error or post-crash divergence is a
    /// failure. Engines without durability treat it as a no-op.
    Crash,
}

/// The covered logical box at some point of a trace: low corner plus
/// extent per axis. Grows as [`CheckOp::Grow`] ops are applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoxState {
    /// Signed logical coordinate of the box's low corner.
    pub origin: Vec<i64>,
    /// Extent per axis.
    pub dims: Vec<usize>,
}

impl BoxState {
    /// The box as of the start of `trace`.
    pub fn initial(trace: &CheckTrace) -> Self {
        Self {
            origin: trace.origin.clone(),
            dims: trace.dims.clone(),
        }
    }

    /// Dimensionality.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Applies one growth step.
    pub fn grow(&mut self, axis: usize, amount: usize, low: bool) {
        if low {
            self.origin[axis] -= amount as i64;
        }
        self.dims[axis] += amount;
    }

    /// True if the signed `point` lies inside the box.
    pub fn contains(&self, point: &[i64]) -> bool {
        point.len() == self.ndim()
            && point
                .iter()
                .zip(self.origin.iter().zip(self.dims.iter()))
                .all(|(&p, (&o, &n))| p >= o && p < o + n as i64)
    }

    /// Total cells currently covered.
    pub fn cells(&self) -> usize {
        self.dims.iter().product()
    }
}

/// A replayable differential-check workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckTrace {
    /// Logical low corner of the initial covered box.
    pub origin: Vec<i64>,
    /// Initial extent per axis.
    pub dims: Vec<usize>,
    /// Operations in order.
    pub ops: Vec<CheckOp>,
}

/// Knobs for [`CheckTrace::generate`].
#[derive(Copy, Clone, Debug)]
pub struct CheckTraceConfig {
    /// Number of operations to generate.
    pub ops: usize,
    /// Growth stops once the covered box reaches this many cells (keeps
    /// the `O(n^d)`-update baselines affordable inside the fuzz loop).
    pub max_cells: usize,
}

impl Default for CheckTraceConfig {
    fn default() -> Self {
        Self {
            ops: 200,
            max_cells: 2048,
        }
    }
}

impl CheckTrace {
    /// Generates a mixed trace over a random small box of `d` dimensions:
    /// updates, sets, range queries, cell reads, growth in random
    /// directions, save/load round-trips, and flush barriers.
    pub fn generate(d: usize, config: CheckTraceConfig, rng: &mut DdcRng) -> Self {
        assert!(d >= 1, "need at least one dimension");
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(2usize..=6)).collect();
        let origin: Vec<i64> = (0..d).map(|_| rng.gen_range(-4i64..=4)).collect();
        let mut state = BoxState {
            origin: origin.clone(),
            dims: dims.clone(),
        };
        let mut ops = Vec::with_capacity(config.ops);
        for _ in 0..config.ops {
            ops.push(Self::gen_op(&mut state, config.max_cells, rng));
        }
        Self { origin, dims, ops }
    }

    fn gen_point(state: &BoxState, rng: &mut DdcRng) -> Vec<i64> {
        state
            .origin
            .iter()
            .zip(state.dims.iter())
            .map(|(&o, &n)| o + rng.gen_range(0i64..n as i64))
            .collect()
    }

    fn gen_op(state: &mut BoxState, max_cells: usize, rng: &mut DdcRng) -> CheckOp {
        let roll = rng.gen_range(0usize..100);
        match roll {
            // 40% point updates.
            0..=39 => CheckOp::Update {
                point: Self::gen_point(state, rng),
                delta: rng.gen_range(-100i64..=100),
            },
            // 8% sets (exercise the read-then-delta path).
            40..=47 => CheckOp::Set {
                point: Self::gen_point(state, rng),
                value: rng.gen_range(-100i64..=100),
            },
            // 22% range queries.
            48..=69 => {
                let a = Self::gen_point(state, rng);
                let b = Self::gen_point(state, rng);
                let lo: Vec<i64> = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).collect();
                let hi: Vec<i64> = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).collect();
                CheckOp::Query { lo, hi }
            }
            // 10% single-cell reads.
            70..=79 => CheckOp::Cell {
                point: Self::gen_point(state, rng),
            },
            // 6% growth in a random direction (capped).
            80..=85 => {
                let axis = rng.gen_range(0usize..state.ndim());
                let amount = rng.gen_range(1usize..=2);
                let low = rng.gen_bool(0.5);
                let grown = state.cells() / state.dims[axis] * (state.dims[axis] + amount);
                if grown > max_cells {
                    // Too big already: degrade to a harmless read.
                    CheckOp::Cell {
                        point: Self::gen_point(state, rng),
                    }
                } else {
                    state.grow(axis, amount, low);
                    CheckOp::Grow { axis, amount, low }
                }
            }
            // 4% persistence round-trips.
            86..=89 => CheckOp::SaveLoad,
            // 3% simulated kills + recovery.
            90..=92 => CheckOp::Crash,
            // 7% flush barriers.
            _ => CheckOp::Flush,
        }
    }

    /// Checks structural well-formedness: every coordinate has the right
    /// arity and lies inside the covered box *as of its position in the
    /// trace*, query bounds are ordered, growth steps are sane. The
    /// shrinker uses this to discard candidate traces that removal of a
    /// `Grow` op made nonsensical.
    pub fn validate(&self) -> Result<(), String> {
        Shape::try_new(&self.dims).map_err(|e| format!("bad initial shape: {e}"))?;
        if self.origin.len() != self.dims.len() {
            return Err(format!(
                "origin arity {} does not match shape arity {}",
                self.origin.len(),
                self.dims.len()
            ));
        }
        fn in_box(state: &BoxState, i: usize, p: &[i64], what: &str) -> Result<(), String> {
            if state.contains(p) {
                Ok(())
            } else {
                Err(format!(
                    "op {i}: {what} {p:?} outside covered box {state:?}"
                ))
            }
        }
        let mut state = BoxState::initial(self);
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                CheckOp::Update { point, .. } => in_box(&state, i, point, "update point")?,
                CheckOp::Set { point, .. } => in_box(&state, i, point, "set point")?,
                CheckOp::Cell { point } => in_box(&state, i, point, "cell point")?,
                CheckOp::Query { lo, hi } => {
                    in_box(&state, i, lo, "query lo")?;
                    in_box(&state, i, hi, "query hi")?;
                    if lo.iter().zip(hi).any(|(l, h)| l > h) {
                        return Err(format!("op {i}: inverted query bounds {lo:?}..{hi:?}"));
                    }
                }
                CheckOp::Grow { axis, amount, low } => {
                    if *axis >= state.ndim() {
                        return Err(format!("op {i}: grow axis {axis} out of range"));
                    }
                    if *amount == 0 {
                        return Err(format!("op {i}: zero-sized growth"));
                    }
                    let mut dims = state.dims.clone();
                    dims[*axis] += amount;
                    Shape::try_new(&dims).map_err(|e| format!("op {i}: growth overflow: {e}"))?;
                    state.grow(*axis, *amount, *low);
                }
                CheckOp::SaveLoad | CheckOp::Flush | CheckOp::Crash => {}
            }
        }
        Ok(())
    }

    /// The box state after the whole trace (useful for reporting).
    pub fn final_box(&self) -> BoxState {
        let mut state = BoxState::initial(self);
        for op in &self.ops {
            if let CheckOp::Grow { axis, amount, low } = op {
                state.grow(*axis, *amount, *low);
            }
        }
        state
    }

    /// Serializes to the line format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# ddc check trace\n");
        out.push_str("shape");
        for &n in &self.dims {
            out.push_str(&format!(" {n}"));
        }
        out.push('\n');
        if self.origin.iter().any(|&o| o != 0) {
            out.push_str("origin");
            for &o in &self.origin {
                out.push_str(&format!(" {o}"));
            }
            out.push('\n');
        }
        let coords = |out: &mut String, p: &[i64]| {
            for &c in p {
                out.push_str(&format!(" {c}"));
            }
        };
        for op in &self.ops {
            match op {
                CheckOp::Update { point, delta } => {
                    out.push('U');
                    coords(&mut out, point);
                    out.push_str(&format!(" {delta}\n"));
                }
                CheckOp::Set { point, value } => {
                    out.push('S');
                    coords(&mut out, point);
                    out.push_str(&format!(" {value}\n"));
                }
                CheckOp::Query { lo, hi } => {
                    out.push('Q');
                    coords(&mut out, lo);
                    coords(&mut out, hi);
                    out.push('\n');
                }
                CheckOp::Cell { point } => {
                    out.push('C');
                    coords(&mut out, point);
                    out.push('\n');
                }
                CheckOp::Grow { axis, amount, low } => {
                    out.push_str(&format!(
                        "G {axis} {amount} {}\n",
                        if *low { "low" } else { "high" }
                    ));
                }
                CheckOp::SaveLoad => out.push_str("R\n"),
                CheckOp::Flush => out.push_str("F\n"),
                CheckOp::Crash => out.push_str("K\n"),
            }
        }
        out
    }

    /// Parses the line format and validates the result.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut dims: Option<Vec<usize>> = None;
        let mut origin: Option<Vec<i64>> = None;
        let mut ops = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let line = match line.find('#') {
                Some(0) => continue,
                Some(pos) => line[..pos].trim_end(),
                None => line,
            };
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let tag = it.next().expect("non-empty");
            let nums: Result<Vec<i64>, _> = it.map(str::parse::<i64>).collect();
            let nums = match tag {
                "G" => {
                    // `G axis amount low|high` — last token is a word.
                    let toks: Vec<&str> = line.split_whitespace().skip(1).collect();
                    if toks.len() != 3 {
                        return Err(format!("line {}: G wants axis amount low|high", no + 1));
                    }
                    let axis: usize = toks[0]
                        .parse()
                        .map_err(|_| format!("line {}: bad axis '{}'", no + 1, toks[0]))?;
                    let amount: usize = toks[1]
                        .parse()
                        .map_err(|_| format!("line {}: bad amount '{}'", no + 1, toks[1]))?;
                    let low = match toks[2] {
                        "low" => true,
                        "high" => false,
                        other => {
                            return Err(format!("line {}: bad direction '{other}'", no + 1));
                        }
                    };
                    ops.push(CheckOp::Grow { axis, amount, low });
                    continue;
                }
                _ => nums.map_err(|e| format!("line {}: {e}", no + 1))?,
            };
            let d = || -> Result<usize, String> {
                dims.as_ref()
                    .map(Vec::len)
                    .ok_or_else(|| format!("line {}: op before shape", no + 1))
            };
            match tag {
                "shape" => {
                    if nums.is_empty() || nums.iter().any(|&n| n <= 0) {
                        return Err(format!("line {}: bad shape", no + 1));
                    }
                    dims = Some(nums.iter().map(|&n| n as usize).collect());
                }
                "origin" => {
                    if nums.len() != d()? {
                        return Err(format!("line {}: origin arity mismatch", no + 1));
                    }
                    if !ops.is_empty() {
                        return Err(format!("line {}: origin after first op", no + 1));
                    }
                    origin = Some(nums);
                }
                "U" | "S" => {
                    let d = d()?;
                    if nums.len() != d + 1 {
                        return Err(format!("line {}: {tag} wants {d} coords + value", no + 1));
                    }
                    let point = nums[..d].to_vec();
                    ops.push(if tag == "U" {
                        CheckOp::Update {
                            point,
                            delta: nums[d],
                        }
                    } else {
                        CheckOp::Set {
                            point,
                            value: nums[d],
                        }
                    });
                }
                "Q" => {
                    let d = d()?;
                    if nums.len() != 2 * d {
                        return Err(format!("line {}: Q wants 2·{d} coords", no + 1));
                    }
                    ops.push(CheckOp::Query {
                        lo: nums[..d].to_vec(),
                        hi: nums[d..].to_vec(),
                    });
                }
                "C" => {
                    let d = d()?;
                    if nums.len() != d {
                        return Err(format!("line {}: C wants {d} coords", no + 1));
                    }
                    ops.push(CheckOp::Cell {
                        point: nums.to_vec(),
                    });
                }
                "R" => {
                    if !nums.is_empty() {
                        return Err(format!("line {}: R takes no arguments", no + 1));
                    }
                    ops.push(CheckOp::SaveLoad);
                }
                "F" => {
                    if !nums.is_empty() {
                        return Err(format!("line {}: F takes no arguments", no + 1));
                    }
                    ops.push(CheckOp::Flush);
                }
                "K" => {
                    if !nums.is_empty() {
                        return Err(format!("line {}: K takes no arguments", no + 1));
                    }
                    ops.push(CheckOp::Crash);
                }
                other => return Err(format!("line {}: unknown tag '{other}'", no + 1)),
            }
        }
        let dims = dims.ok_or("missing shape line")?;
        let trace = Self {
            origin: origin.unwrap_or_else(|| vec![0; dims.len()]),
            dims,
            ops,
        };
        trace.validate()?;
        Ok(trace)
    }

    fn without_range(&self, start: usize, len: usize) -> Self {
        let mut ops = Vec::with_capacity(self.ops.len().saturating_sub(len));
        ops.extend_from_slice(&self.ops[..start]);
        ops.extend_from_slice(&self.ops[start + len..]);
        Self {
            origin: self.origin.clone(),
            dims: self.dims.clone(),
            ops,
        }
    }
}

/// Shrinks a failing trace to a (locally) minimal repro.
///
/// Two phases, both driven by `still_fails` (which must be `true` for the
/// input trace):
///
/// 1. **Delta debugging over ops** — repeatedly remove chunks of ops,
///    halving the chunk size down to single ops, keeping any candidate
///    that still validates and still fails.
/// 2. **Coordinate/value minimization** — per surviving op, pull
///    coordinates toward the box's low corner, deltas toward ±1, set
///    values toward 0, and query boxes toward single cells.
///
/// Deterministic: no randomness, so the same failure always shrinks to
/// the same repro.
pub fn shrink_trace(trace: &CheckTrace, still_fails: impl Fn(&CheckTrace) -> bool) -> CheckTrace {
    debug_assert!(still_fails(trace), "shrink input must fail");
    let mut best = trace.clone();
    // Alternate removal and minimization: pulling a coordinate back into
    // the initial box often makes a previously load-bearing Grow op
    // removable, so one pass of each is not a fixpoint.
    for _ in 0..5 {
        let before = best.clone();
        remove_ops(&mut best, &still_fails);
        minimize_values(&mut best, &still_fails);
        if best == before {
            break;
        }
    }
    best
}

/// Phase 1: chunked op removal (simplified ddmin).
fn remove_ops(best: &mut CheckTrace, still_fails: &impl Fn(&CheckTrace) -> bool) {
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < best.ops.len() {
            let len = chunk.min(best.ops.len() - i);
            let candidate = best.without_range(i, len);
            if candidate.validate().is_ok() && still_fails(&candidate) {
                *best = candidate; // same index now names the next chunk
            } else {
                i += len;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
}

/// Phase 2: per-op value minimization to a fixpoint (bounded passes).
fn minimize_values(best: &mut CheckTrace, still_fails: &impl Fn(&CheckTrace) -> bool) {
    for _ in 0..4 {
        let mut changed = false;
        for i in 0..best.ops.len() {
            for candidate_op in simpler_variants(best, i) {
                let mut candidate = best.clone();
                candidate.ops[i] = candidate_op;
                if candidate != *best && candidate.validate().is_ok() && still_fails(&candidate) {
                    *best = candidate;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Candidate simplifications of op `i`, most aggressive first.
fn simpler_variants(trace: &CheckTrace, i: usize) -> Vec<CheckOp> {
    // The initial origin is the "simplest" coordinate: it is inside the
    // box at every point in the trace (growth only extends the box), so
    // pulling coordinates toward it never creates a dependency on an
    // earlier Grow op — and often removes one, letting the next removal
    // pass delete the Grow.
    let floor = trace.origin.clone();
    let toward_floor = |p: &[i64]| -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        // All the way down, then halfway per axis.
        if p != floor.as_slice() {
            out.push(floor.clone());
        }
        let half: Vec<i64> = p
            .iter()
            .zip(&floor)
            .map(|(&c, &f)| f + (c - f) / 2)
            .collect();
        if half != p {
            out.push(half);
        }
        out
    };
    match &trace.ops[i] {
        CheckOp::Update { point, delta } => {
            let mut v: Vec<CheckOp> = toward_floor(point)
                .into_iter()
                .map(|p| CheckOp::Update {
                    point: p,
                    delta: *delta,
                })
                .collect();
            for d in [1i64, -1, delta / 2] {
                if d != 0 && d != *delta {
                    v.push(CheckOp::Update {
                        point: point.clone(),
                        delta: d,
                    });
                }
            }
            v
        }
        CheckOp::Set { point, value } => {
            let mut v: Vec<CheckOp> = toward_floor(point)
                .into_iter()
                .map(|p| CheckOp::Set {
                    point: p,
                    value: *value,
                })
                .collect();
            for val in [0i64, 1, value / 2] {
                if val != *value {
                    v.push(CheckOp::Set {
                        point: point.clone(),
                        value: val,
                    });
                }
            }
            v
        }
        CheckOp::Query { lo, hi } => {
            let mut v = Vec::new();
            if lo != hi {
                // Collapse to a point query at either corner.
                v.push(CheckOp::Query {
                    lo: lo.clone(),
                    hi: lo.clone(),
                });
                v.push(CheckOp::Query {
                    lo: hi.clone(),
                    hi: hi.clone(),
                });
            }
            if lo == hi {
                // A point query moves as a unit, like a Cell probe.
                for p in toward_floor(lo) {
                    v.push(CheckOp::Query {
                        lo: p.clone(),
                        hi: p,
                    });
                }
            }
            for l in toward_floor(lo) {
                if l.iter().zip(hi).all(|(a, b)| a <= b) {
                    v.push(CheckOp::Query {
                        lo: l,
                        hi: hi.clone(),
                    });
                }
            }
            v
        }
        CheckOp::Cell { point } => toward_floor(point)
            .into_iter()
            .map(|p| CheckOp::Cell { point: p })
            .collect(),
        CheckOp::Grow { axis, amount, low } if *amount > 1 => vec![CheckOp::Grow {
            axis: *axis,
            amount: 1,
            low: *low,
        }],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::rng;

    #[test]
    fn generated_traces_validate_and_roundtrip() {
        for seed in 0..8 {
            let mut r = rng(seed);
            let d = (seed as usize % 3) + 1;
            let t = CheckTrace::generate(d, CheckTraceConfig::default(), &mut r);
            t.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let text = t.to_text();
            let parsed = CheckTrace::parse(&text).unwrap();
            assert_eq!(parsed, t, "seed {seed}");
        }
    }

    #[test]
    fn growth_extends_the_valid_box() {
        let t =
            CheckTrace::parse("shape 2 2\norigin 0 0\nG 0 2 low\nU -2 0 5\nQ -2 0 1 1\n").unwrap();
        assert_eq!(t.ops.len(), 3);
        assert_eq!(t.final_box().origin, vec![-2, 0]);
        assert_eq!(t.final_box().dims, vec![4, 2]);
    }

    #[test]
    fn validate_rejects_out_of_box_and_misordered_ops() {
        // Point outside the initial box.
        assert!(CheckTrace::parse("shape 2 2\nU 5 0 1\n").is_err());
        // Valid only *after* growth — removal of G must invalidate.
        let t = CheckTrace::parse("shape 2 2\nG 0 1 high\nU 2 0 1\n").unwrap();
        let broken = t.without_range(0, 1);
        assert!(broken.validate().is_err());
        // Inverted query bounds.
        assert!(CheckTrace::parse("shape 4\nQ 3 1\n").is_err());
        // Grow axis out of range.
        assert!(CheckTrace::parse("shape 4\nG 7 1 low\n").is_err());
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(CheckTrace::parse("U 1 1 1")
            .unwrap_err()
            .contains("before shape"));
        assert!(CheckTrace::parse("shape 4\nR 9")
            .unwrap_err()
            .contains("no arguments"));
        assert!(CheckTrace::parse("shape 4\nG 0 1 sideways")
            .unwrap_err()
            .contains("bad direction"));
        assert!(CheckTrace::parse("shape 4\nX 1")
            .unwrap_err()
            .contains("unknown tag"));
        assert!(CheckTrace::parse("# nothing")
            .unwrap_err()
            .contains("missing shape"));
    }

    #[test]
    fn shrinker_reduces_to_minimal_failing_core() {
        // Synthetic failure: "fails" iff the trace still contains an
        // update with delta 42 followed (anywhere later) by a query.
        let mut r = rng(7);
        let mut t = CheckTrace::generate(
            2,
            CheckTraceConfig {
                ops: 120,
                max_cells: 512,
            },
            &mut r,
        );
        let origin = t.origin.clone();
        t.ops.insert(
            60,
            CheckOp::Update {
                point: origin.clone(),
                delta: 42,
            },
        );
        let fails = |c: &CheckTrace| {
            let upd = c
                .ops
                .iter()
                .position(|o| matches!(o, CheckOp::Update { delta: 42, .. }));
            match upd {
                Some(i) => c.ops[i..]
                    .iter()
                    .any(|o| matches!(o, CheckOp::Query { .. })),
                None => false,
            }
        };
        assert!(fails(&t));
        let small = shrink_trace(&t, fails);
        assert!(fails(&small));
        assert!(
            small.ops.len() <= 2,
            "expected a 2-op repro, got {}: {}",
            small.ops.len(),
            small.to_text()
        );
        small.validate().unwrap();
    }

    #[test]
    fn shrinker_respects_growth_dependencies() {
        // The failing op sits outside the initial box, so the shrinker
        // must keep the Grow op that makes it reachable.
        let t = CheckTrace::parse("shape 2 2\nU 0 0 1\nG 0 1 high\nU 2 0 42\nC 1 1\nQ 0 0 2 1\n")
            .unwrap();
        // The bug is pinned to the grown cell: moving the update back into
        // the initial box must not count as a repro.
        let fails = |c: &CheckTrace| {
            c.ops
                .iter()
                .any(|o| matches!(o, CheckOp::Update { delta: 42, point } if point == &[2, 0]))
        };
        let small = shrink_trace(&t, fails);
        small.validate().unwrap();
        assert!(fails(&small));
        assert!(
            small.ops.iter().any(|o| matches!(o, CheckOp::Grow { .. })),
            "growth dependency dropped: {}",
            small.to_text()
        );
        assert_eq!(small.ops.len(), 2, "{}", small.to_text());
    }
}
