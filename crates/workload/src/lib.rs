//! # ddc-workload
//!
//! Deterministic synthetic workloads for the paper's experiments: dense /
//! sparse / clustered data (§5's EOSDIS and star-catalog narratives),
//! uniform and Zipf-skewed update streams, and range-query generators.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod data;
mod fuzz;
mod queries;
mod rng;
mod trace;

pub use data::{
    append_series, clustered_points, emerging_sources, random_clusters, rng, skewed_updates,
    sparse_array, uniform_array, uniform_updates, zipf_index, Cluster, UpdateStream,
};
pub use fuzz::{shrink_trace, BoxState, CheckOp, CheckTrace, CheckTraceConfig};
pub use queries::{prefix_regions, uniform_regions, window_regions};
pub use rng::{DdcRng, SampleRange};
pub use trace::{ReplayResult, Trace, TraceOp};
